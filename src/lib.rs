//! Root package of the GS1280 reproduction workspace.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`; the library surface is re-exported from
//! [`alphasim`], the facade crate. Depend on `alphasim` directly in real use.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use alphasim::*;
