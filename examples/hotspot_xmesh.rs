//! Hot-spot detection with Xmesh and the striping cure (paper §6,
//! Figs. 26–27): all CPUs read one CPU's memory; Xmesh spots the glowing
//! node; striping spreads the load over the module pair.
//!
//! ```text
//! cargo run --release --example hotspot_xmesh
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::network;
use alphasim::xmesh;

fn main() {
    let (snap, report) = network::fig27(150);
    println!("{}", xmesh::render_metric(&snap, xmesh::Metric::Zbox));
    println!("{}", xmesh::render_metric(&snap, xmesh::Metric::IpLinks));
    println!(
        "hot spots: {:?}  (background Zbox {:.1}%)",
        report.hot_nodes,
        report.background_zbox * 100.0
    );

    println!("\nFig. 26 — does striping help this pattern?");
    let fig = network::fig26(&[1, 4, 8, 16, 30], 120);
    let plain = &fig.series[0];
    let striped = &fig.series[1];
    println!("{:>14} {:>22} {:>22}", "", "non-striped", "striped");
    for (p, s) in plain.points.iter().zip(&striped.points) {
        println!(
            "{:>14} {:>12.0} MB/s {:>6.0}ns {:>12.0} MB/s {:>6.0}ns",
            "", p.x, p.y, s.x, s.y
        );
    }
    let gain = striped.points.iter().map(|p| p.x).fold(0.0, f64::max)
        / plain.points.iter().map(|p| p.x).fold(0.0, f64::max);
    println!(
        "\nstriping improves hot-spot bandwidth {:.0}% (paper: up to 80%)",
        (gain - 1.0) * 100.0
    );
}
