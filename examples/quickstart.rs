//! Quick start: build the paper's machines and ask them the paper's
//! headline questions.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::latency;
use alphasim::system::{Gs1280, Gs320};
use alphasim::topology::NodeId;

fn main() {
    // The paper's 16-CPU GS1280: a 4x4 torus of Alpha 21364s.
    let gs1280 = Gs1280::builder().cpus(16).build();
    let gs320 = Gs320::new(16);

    println!("== local memory ==");
    println!(
        "GS1280 local open-page load-to-use: {:.0} ns (paper: 83)",
        gs1280.local_latency(true).as_ns()
    );
    println!(
        "GS320  local load-to-use:           {:.0} ns (paper: ~330)",
        gs320.local_latency(true).as_ns()
    );

    println!("\n== the Fig. 13 latency map (read-clean from CPU 0, ns) ==");
    for row in gs1280.latency_grid(NodeId::new(0)) {
        for v in row {
            print!("{v:>6.0}");
        }
        println!();
    }

    let (clean, dirty) = latency::fig12_ratios();
    println!("\n== 16-CPU remote latency advantage over the GS320 ==");
    println!("read-clean average: {clean:.1}x (paper: ~4x)");
    println!("read-dirty average: {dirty:.1}x (paper: ~6.6x)");

    println!("\n== STREAM Triad (counted GB/s) ==");
    for n in [1usize, 4, 16] {
        println!(
            "{n:>3} CPUs: GS1280 {:>6.1}   GS320 {:>5.2}",
            gs1280.stream_triad_gbps(n),
            gs320.stream_triad_gbps(n.min(16))
        );
    }
}
