//! Walk the memory hierarchy the way lmbench does (paper Figs. 4–5):
//! dependent loads over growing datasets and strides, on all three
//! machines.
//!
//! ```text
//! cargo run --release --example latency_walk
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::memory::{fig05_strides, LatencyMachine};

fn main() {
    let machines = [
        LatencyMachine::gs1280(),
        LatencyMachine::es45(),
        LatencyMachine::gs320(),
    ];
    println!("Fig. 4 — dependent-load latency (ns), stride 64 B:");
    print!("{:>12}", "size");
    for m in &machines {
        print!("{:>18}", m.name);
    }
    println!();
    for p in 12..=26 {
        let size = 1u64 << p;
        print!("{:>12}", human(size));
        for m in &machines {
            print!("{:>18.1}", m.dependent_load_ns(size, 64, 30_000));
        }
        println!();
    }
    println!("\nNote the three bands of the paper's Fig. 4: the on-chip L2");
    println!("wins below 1.75 MB, the 16 MB off-chip caches win 1.75-16 MB,");
    println!("and the integrated RDRAM controllers win beyond 16 MB (3.8x).");

    println!("\nFig. 5 — GS1280 latency vs stride at 8 MB:");
    let m = LatencyMachine::gs1280();
    for stride in fig05_strides() {
        println!(
            "  stride {:>6} B: {:>6.1} ns",
            stride,
            m.dependent_load_ns(8 << 20, stride, 30_000)
        );
    }
    println!("(open-page ~83 ns at small strides, closed-page ~130 ns at large)");
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}m", bytes >> 20)
    } else {
        format!("{}k", bytes >> 10)
    }
}
