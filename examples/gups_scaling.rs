//! The GUPS experiment (paper §5.3, Figs. 23–24): random table updates
//! stressing inter-processor bandwidth, where the GS1280's torus is over
//! 10x ahead of the GS320's hierarchical switch.
//!
//! ```text
//! cargo run --release --example gups_scaling
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::apps;
use alphasim::kernel::DetRng;
use alphasim::workloads::{Gups, GupsConfig};

fn main() {
    // First, the kernel itself: real XOR updates with the benchmark's
    // self-check (replaying the stream restores the table).
    let mut gups = Gups::new(GupsConfig::new(1 << 16, 32));
    let mut rng = DetRng::seeded(2003);
    gups.run(&mut rng, 250_000);
    let mut rng = DetRng::seeded(2003);
    gups.run(&mut rng, 250_000);
    gups.verify_restored().expect("GUPS self-check");
    println!("GUPS kernel self-check passed (500k updates)");

    // Then the throughput experiment on the simulated machines.
    println!(
        "\n{:>6} {:>18} {:>18}",
        "CPUs", "GS1280 Mup/s", "GS320 Mup/s"
    );
    for cpus in [4usize, 8, 16, 32] {
        let g = apps::gups_mups_gs1280(cpus, 150);
        let q = apps::gups_mups_gs320(cpus, 150);
        println!("{cpus:>6} {g:>18.1} {q:>18.1}");
    }
    let g64 = apps::gups_mups_gs1280(64, 150);
    println!("{:>6} {g64:>18.1} {:>18}", 64, "-");

    let fig24 = apps::fig24(150);
    let s = &fig24.series[0];
    println!(
        "\n32P GS1280 utilization: Zbox {:.0}%  N/S links {:.0}%  E/W links {:.0}%",
        s.points[0].y, s.points[1].y, s.points[2].y
    );
    println!("(the paper's Fig. 24: E/W links run hotter than N/S on the 8x4 torus)");
}
