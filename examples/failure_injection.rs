//! Failure injection: cut torus links and RDRAM channels, and watch the
//! machine degrade gracefully — the fault-tolerance story behind the
//! 21364's adaptive routing and redundant memory channel (paper §2).
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::ablation;
use alphasim::mem::ZboxConfig;
use alphasim::topology::graph::DistanceMatrix;
use alphasim::topology::{Degraded, NodeId, Topology, Torus2D};

fn main() {
    println!("== adaptive routing detours around cut links ==");
    let torus = Torus2D::new(4, 4);
    let healthy = DistanceMatrix::compute(&torus);
    let degraded = Degraded::new(torus.clone(), &[(NodeId::new(0), NodeId::new(1))]);
    let wounded = DistanceMatrix::compute(&degraded);
    println!(
        "cut 0<->1: still connected = {}, avg hops {:.2} -> {:.2}, 0->1 now {} hops",
        wounded.is_connected(),
        healthy.average_distance(),
        wounded.average_distance(),
        wounded.distance(NodeId::new(0), NodeId::new(1)),
    );
    println!("(fabric name: {})", degraded.name());

    println!("\n== load test on the wounded 16-CPU machine ==");
    for (n, bw) in ablation::link_failure_resilience(16, &[0, 1, 2], 120) {
        println!("  {n} failed links: {bw:>6.1} GB/s delivered");
    }

    println!("\n== the redundant 5th RDRAM channel (paper §2) ==");
    let ev7 = ZboxConfig::ev7();
    let gs320 = ZboxConfig::gs320_qbb();
    for failed in 0..=2u32 {
        println!(
            "  {failed} channel(s) failed: EV7 Zbox {:>5.2} GB/s (redundant), GS320 {:>5.2} GB/s",
            ev7.degraded_bandwidth_gbps(failed),
            gs320.degraded_bandwidth_gbps(failed)
        );
    }
}
