//! The shuffle-interconnect study (paper §4.1, Table 1, Fig. 18): re-aiming
//! the redundant North–South cables of the torus at the farthest nodes.
//!
//! ```text
//! cargo run --release --example shuffle_study
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::network;
use alphasim::topology::table1::{table1, TABLE1_PAPER};

fn main() {
    println!("Table 1 — analytic shuffle gains (computed vs paper):");
    println!(
        "{:>8} {:>18} {:>18} {:>18}",
        "shape", "avg latency", "worst latency", "bisection"
    );
    for (g, paper) in table1().iter().zip(TABLE1_PAPER.iter()) {
        println!(
            "{:>5}x{:<2} {:>9.3}/{:<8.3} {:>9.3}/{:<8.3} {:>9.3}/{:<8.3}",
            g.cols,
            g.rows,
            g.avg_latency_gain,
            paper.0,
            g.worst_latency_gain,
            paper.1,
            g.bisection_gain,
            paper.2
        );
    }

    println!("\nFig. 18 — 8-CPU load test (latency ns @ delivered MB/s):");
    let fig = network::fig18(&[1, 4, 8, 16, 30], 120);
    for s in &fig.series {
        println!("  {}:", s.label);
        for p in &s.points {
            println!("    {:>9.0} MB/s  {:>7.0} ns", p.x, p.y);
        }
    }
    let torus_peak = fig.series[0].points.iter().map(|p| p.x).fold(0.0, f64::max);
    let shuffle_peak = fig.series[1].points.iter().map(|p| p.x).fold(0.0, f64::max);
    println!(
        "\nshuffle delivers {:.0}% more peak bandwidth than the torus \
         (paper: 5-25% depending on load)",
        (shuffle_peak / torus_peak - 1.0) * 100.0
    );
}
