//! Data-sharing microbenchmarks on the trace-driven coherent machine:
//! why the paper credits the GS1280's "efficient Read-Dirty implementation"
//! for its parallel-workload wins (§3.4).
//!
//! ```text
//! cargo run --release --example data_sharing
//! ```

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::cache::Addr;
use alphasim::system::{CoherentMachine, Gs1280, Gs320};
use alphasim::topology::NodeId;
use alphasim::workloads::sharing;

fn main() {
    let mem = 1u64 << 22;
    let machine = || CoherentMachine::new(Gs1280::builder().cpus(16).mem_per_cpu(mem).build());
    let addr = |cpu: u64, off: u64| Addr::new(cpu * mem + off);

    println!("== ping-pong: two CPUs alternately write one line ==");
    for (label, a, b) in [
        ("module partners (0 <-> 4)", 0usize, 4usize),
        ("same row       (0 <-> 1)", 0, 1),
        ("opposite corner (0 <-> 10)", 0, 10),
    ] {
        let mut m = machine();
        let r = sharing::ping_pong(&mut m, a, b, addr(0, 0), 200);
        println!(
            "  {label}: {:>6.0} ns/transfer, {:>4.0}% read-dirty",
            r.mean_latency.as_ns(),
            r.dirty_fraction * 100.0
        );
    }

    println!("\n== migratory: a lock-protected datum visits every CPU ==");
    let mut m = machine();
    let r = sharing::migratory(&mut m, addr(5, 64), 160);
    println!(
        "  {:>6.0} ns/access, {:>4.0}% read-dirty, {:.2} invalidations/access",
        r.mean_latency.as_ns(),
        r.dirty_fraction * 100.0,
        r.invalidations_per_access
    );

    println!("\n== producer/consumers: 1 writer, 15 readers, 8 lines ==");
    let mut m = machine();
    let r = sharing::producer_consumers(&mut m, 3, addr(3, 0), 8, 10);
    println!(
        "  {:>6.0} ns/access, dirty {:.0}%, clean remote {} accesses",
        r.mean_latency.as_ns(),
        r.dirty_fraction * 100.0,
        r.stats.remote_clean
    );

    println!("\n== why it matters: the same dirty transfer on the GS320 ==");
    let gs320 = Gs320::new(16);
    let gs320_dirty = gs320.read_dirty(NodeId::new(12), NodeId::new(8), NodeId::new(3));
    let mut m = machine();
    m.access(3, addr(8, 1024), true);
    let gs1280_dirty = m.access(12, addr(8, 1024), false).latency;
    println!(
        "  GS1280: {:>5.0} ns   GS320: {:>5.0} ns   ({:.1}x, paper: 6.6x average)",
        gs1280_dirty.as_ns(),
        gs320_dirty.as_ns(),
        gs320_dirty.as_ns() / gs1280_dirty.as_ns()
    );
}
