//! Measurement primitives: running statistics, histograms, utilization
//! meters, and time-series samplers.
//!
//! These back the simulated EV7 performance counters that the paper's Xmesh
//! tool reads (Figs. 10–11, 20, 22, 24, 27).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Mean, median, and p99 of a stream of durations.
///
/// The mean streams (running sum); the quantiles are the nearest-rank-below
/// rule `sorted[(n - 1) * p / 100]`, which needs the sample order, so
/// samples are kept and sorted once when the accumulator is consumed by
/// [`finish`](Self::finish) or [`finish_full`](Self::finish_full). This is
/// the one shared implementation behind every latency summary — the
/// fault-campaign resilience sweep, the telemetry experiment, and the
/// per-window latency series of the timeline artifact all report exactly
/// these numbers.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::stats::MeanP50P99;
/// use alphasim_kernel::SimDuration;
///
/// let mut q = MeanP50P99::new();
/// for ns in [10.0, 20.0, 30.0] {
///     q.record(SimDuration::from_ns(ns));
/// }
/// let (mean, p50, p99) = q.finish_full();
/// assert_eq!(mean, SimDuration::from_ns(20.0));
/// assert_eq!(p50, SimDuration::from_ns(20.0)); // rank (3-1)*50/100 = 1
/// assert_eq!(p99, SimDuration::from_ns(20.0)); // rank (3-1)*99/100 = 1
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeanP50P99 {
    samples: Vec<SimDuration>,
}

/// The accumulator's historical name, kept so existing call sites and
/// docs keep reading naturally where only `(mean, p99)` is consumed.
pub type MeanP99 = MeanP50P99;

impl MeanP50P99 {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty accumulator with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        MeanP50P99 {
            samples: Vec::with_capacity(cap),
        }
    }

    /// Add one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Consume the accumulator, returning `(mean, p99)` — both
    /// [`SimDuration::ZERO`] when empty. The historical two-value summary;
    /// byte-compatible with every committed artifact.
    pub fn finish(self) -> (SimDuration, SimDuration) {
        let (mean, _, p99) = self.finish_full();
        (mean, p99)
    }

    /// Consume the accumulator, returning `(mean, p50, p99)` — all
    /// [`SimDuration::ZERO`] when empty. The quantiles share the
    /// nearest-rank-below rule, so the p99 is bit-identical to what
    /// [`finish`](Self::finish) has always reported.
    pub fn finish_full(mut self) -> (SimDuration, SimDuration, SimDuration) {
        self.samples.sort_unstable();
        let mean = if self.samples.is_empty() {
            SimDuration::ZERO
        } else {
            self.samples.iter().copied().sum::<SimDuration>() / self.samples.len() as u64
        };
        let rank = |p: usize| {
            self.samples
                .get(self.samples.len().saturating_sub(1) * p / 100)
                .copied()
                .unwrap_or(SimDuration::ZERO)
        };
        (mean, rank(50), rank(99))
    }
}

/// Running mean / min / max / variance over a stream of samples
/// (Welford's algorithm; no sample storage).
///
/// # Examples
///
/// ```
/// use alphasim_kernel::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if none).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A latency histogram with fixed-width bins plus an overflow bin.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::stats::Histogram;
/// let mut h = Histogram::new(10.0, 10); // bins of 10 ns, 10 bins
/// h.record(25.0);
/// assert_eq!(h.bin_count(2), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    stats: RunningStats,
}

impl Histogram {
    /// A histogram of `bins` bins each `bin_width` wide, starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width <= 0` or `bins == 0`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            stats: RunningStats::new(),
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.stats.record(x);
        let idx = (x / self.bin_width).floor();
        if idx >= 0.0 && (idx as usize) < self.bins.len() {
            self.bins[idx as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Count of samples beyond the last bin (or negative).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.stats.count()
    }

    /// Summary statistics over all recorded samples.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// Approximate p-th percentile (`0 < p < 100`) from bin midpoints.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * self.bin_width;
            }
        }
        self.stats.max()
    }
}

/// Tracks busy time of a resource (a link, a Zbox) to report utilization:
/// the fraction of wall-clock simulation time the resource spent serving.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::stats::UtilizationMeter;
/// use alphasim_kernel::{SimTime, SimDuration};
/// let mut m = UtilizationMeter::new();
/// m.add_busy(SimDuration::from_ns(25.0));
/// assert_eq!(m.utilization(SimTime::from_ps(100_000)), 0.25);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationMeter {
    busy: SimDuration,
    bytes: u64,
}

impl UtilizationMeter {
    /// A meter with no accumulated busy time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account `d` of busy (serving) time.
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Account `n` bytes transferred (for bandwidth reporting).
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Busy fraction of the interval `[0, now]`, clamped to `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_ps() as f64 / now.as_ps() as f64).min(1.0)
    }

    /// Achieved bandwidth in GB/s over `[0, now]`.
    pub fn bandwidth_gbps(&self, now: SimTime) -> f64 {
        let secs = now.as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e9 / secs
        }
    }

    /// Reset both accumulators (used at sampling boundaries).
    pub fn reset(&mut self) {
        self.busy = SimDuration::ZERO;
        self.bytes = 0;
    }
}

/// One sampled point of a utilization/bandwidth time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample timestamp (end of the sampling interval).
    pub at: SimTime,
    /// Sampled value (meaning depends on the series; often percent).
    pub value: f64,
}

/// A named series of periodic samples, as displayed by Xmesh.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::stats::TimeSeries;
/// use alphasim_kernel::SimTime;
/// let mut ts = TimeSeries::new("zbox0");
/// ts.push(SimTime::from_ps(1), 10.0);
/// assert_eq!(ts.len(), 1);
/// assert_eq!(ts.mean(), 10.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// An empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push(Sample { at, value });
    }

    /// The recorded samples, in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the sampled values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sampled value (0 if empty).
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|s| s.value).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_p99_empty_is_zero() {
        let q = MeanP99::new();
        assert!(q.is_empty());
        assert_eq!(q.finish(), (SimDuration::ZERO, SimDuration::ZERO));
    }

    #[test]
    fn mean_p99_matches_sort_based_reference() {
        // The nearest-rank-below rule the resilience sweep has always used:
        // sorted[(n - 1) * 99 / 100].
        let mut q = MeanP99::with_capacity(200);
        let mut reference: Vec<SimDuration> = Vec::new();
        let mut x = 7u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = SimDuration::from_ps(x % 1_000_000);
            q.record(d);
            reference.push(d);
        }
        assert_eq!(q.count(), 200);
        reference.sort_unstable();
        let want_mean = reference.iter().copied().sum::<SimDuration>() / reference.len() as u64;
        let want_p99 = reference[(reference.len() - 1) * 99 / 100];
        assert_eq!(q.finish(), (want_mean, want_p99));
    }

    #[test]
    fn p50_uses_the_same_rank_rule_and_leaves_p99_untouched() {
        // The satellite's contract: adding the median must not move the
        // two historically committed numbers by a single bit.
        let mut q = MeanP50P99::with_capacity(101);
        let mut reference: Vec<SimDuration> = Vec::new();
        let mut x = 99u64;
        for _ in 0..101 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = SimDuration::from_ps(x % 5_000_000);
            q.record(d);
            reference.push(d);
        }
        let legacy = q.clone().finish();
        let (mean, p50, p99) = q.finish_full();
        assert_eq!((mean, p99), legacy, "finish() must be unchanged");
        reference.sort_unstable();
        assert_eq!(p50, reference[(reference.len() - 1) * 50 / 100]);
        assert!(p50 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn finish_full_empty_is_all_zero() {
        assert_eq!(
            MeanP50P99::new().finish_full(),
            (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO)
        );
    }

    #[test]
    fn running_stats_mean_and_variance() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_merge_equals_concat() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..20] {
            a.record(x);
        }
        for &x in &xs[20..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(3.0);
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(10.0, 5);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(49.0);
        h.record(51.0); // overflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((p50 - 49.5).abs() <= 1.0);
    }

    #[test]
    fn utilization_meter_fraction_and_bandwidth() {
        let mut m = UtilizationMeter::new();
        m.add_busy(SimDuration::from_ns(30.0));
        m.add_bytes(64);
        let now = SimTime::from_ps(60_000); // 60 ns
        assert!((m.utilization(now) - 0.5).abs() < 1e-12);
        // 64 bytes in 60ns = 1.0667 GB/s
        assert!((m.bandwidth_gbps(now) - 64.0 / 60.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.utilization(now), 0.0);
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn utilization_clamped_to_one() {
        let mut m = UtilizationMeter::new();
        m.add_busy(SimDuration::from_ns(100.0));
        assert_eq!(m.utilization(SimTime::from_ps(50_000)), 1.0);
        assert_eq!(m.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_series_accumulates() {
        let mut ts = TimeSeries::new("link");
        assert!(ts.is_empty());
        ts.push(SimTime::from_ps(1), 1.0);
        ts.push(SimTime::from_ps(2), 3.0);
        assert_eq!(ts.name(), "link");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.peak(), 3.0);
        assert_eq!(ts.samples()[1].value, 3.0);
    }
}
