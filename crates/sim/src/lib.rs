//! Discrete-event simulation kernel for the GS1280 reproduction.
//!
//! This crate provides the machinery every other `alphasim-*` crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond timestamps, so that
//!   component latencies compose without floating-point drift;
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   ordering among simultaneous events;
//! * [`DetRng`] — a seedable random-number source so every experiment is
//!   reproducible bit-for-bit;
//! * [`stats`] — counters, running statistics, histograms, utilization meters
//!   and time-series samplers used by the performance-counter ("Xmesh") layer;
//! * [`par`] — an ordered [`par::parallel_map`] used to fan independent
//!   simulations out across OS threads without changing their results;
//! * [`shard`] — region-sharded event queues ([`ShardedEventQueue`]) and a
//!   conservative-lookahead epoch scheduler for parallelism *inside* one
//!   run, byte-identical at any shard count;
//! * [`FaultPlan`] — a seeded, time-sorted schedule of link/node/channel
//!   failures (and repairs, degradations, transients) for live
//!   fault-injection runs;
//! * [`chaos`] — seeded fault-schedule fuzzing: random legal plan
//!   generation from a [`chaos::ChaosConfig`] distribution, legality
//!   validation, and QuickCheck-style shrink transformations.
//!
//! # Examples
//!
//! ```
//! use alphasim_kernel::{EventQueue, SimTime, SimDuration};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_ns(5.0), "late");
//! q.schedule(SimTime::ZERO + SimDuration::from_ns(1.0), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "early");
//! assert_eq!(t.as_ns(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod chaos;
mod event;
pub mod fault;
pub mod par;
mod rng;
pub mod shard;
pub mod stats;
mod time;

pub use event::{peak_event_depth, take_peak_event_depth, EventQueue};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use rng::DetRng;
pub use shard::{take_shard_peak_depths, ShardedEventQueue};
pub use time::{Frequency, SimDuration, SimTime};
