//! Deterministic fault schedules for live fault injection.
//!
//! The GS1280's robustness story — the torus routes around wounded cables,
//! the RDRAM subsystem spares a failed channel — only shows up when things
//! fail *while the machine is running*. A [`FaultPlan`] is a seeded,
//! reproducible schedule of such failures: link-down/link-up, node drains
//! and RDRAM channel losses, each stamped with the simulation time at which
//! it strikes. Consumers (the network simulator, the system-level fault
//! campaign) feed the plan into their event queues, so two runs with the
//! same plan are bit-identical.
//!
//! Node and link identifiers are plain `usize` indices here — the kernel
//! crate sits below the topology crate, so it cannot name `NodeId`; the
//! network layer converts at the boundary.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::SimTime;

/// One kind of injected fault.
///
/// The derived [`Ord`] is load-bearing: [`FaultPlan::push`] breaks
/// same-timestamp ties by `(kind, site)` — variant declaration order first,
/// then the variant's node/link indices — so plans built from colliding
/// timestamps replay bit-identically regardless of push order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The undirected link between nodes `a` and `b` fails (both directions).
    LinkDown {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
    },
    /// A previously failed link is repaired.
    LinkUp {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
    },
    /// The undirected link between `a` and `b` degrades — it keeps carrying
    /// traffic but every flit takes [`DEGRADE_FACTOR`]× longer on the wire.
    /// Routing does not react; only latency stretches. [`FaultKind::LinkUp`]
    /// heals it.
    LinkDegrade {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
    },
    /// A transient: the next flit sent on the directed link `from -> to` is
    /// corrupted in flight. The receiver's CRC catches it and the link layer
    /// retransmits, so the message survives with one extra transfer + wire
    /// flight of latency.
    FlitCorrupt {
        /// The sending end of the directed link.
        from: usize,
        /// The receiving end.
        to: usize,
    },
    /// `node`'s CPU stops sourcing new traffic (its router keeps forwarding,
    /// as a wounded EV7's does).
    NodeDrain {
        /// The drained node.
        node: usize,
    },
    /// A previously drained node resumes sourcing traffic.
    NodeUndrain {
        /// The healed node.
        node: usize,
    },
    /// `node`'s router browns out: its outbound links stall for `ps`
    /// picoseconds, then drain their backlogs. Nothing is dropped or
    /// rerouted.
    RouterPause {
        /// The paused node.
        node: usize,
        /// Pause length in picoseconds (kept as a plain integer so the
        /// variant stays `Copy` + `Ord`).
        ps: u64,
    },
    /// One RDRAM channel of `node`'s memory controller fails (the redundant
    /// 5th channel absorbs the first such failure, paper §2).
    ChannelDown {
        /// The node whose Zbox loses a channel.
        node: usize,
    },
    /// A previously failed RDRAM channel at `node` is restored.
    ChannelUp {
        /// The node whose Zbox regains a channel.
        node: usize,
    },
}

/// Latency stretch applied to a link wounded by [`FaultKind::LinkDegrade`]:
/// wire flight and serialization take this many times longer until the link
/// is repaired.
pub const DEGRADE_FACTOR: u64 = 4;

impl FaultKind {
    /// Short human-readable description, used by watchdog reports and logs.
    pub fn describe(&self) -> String {
        match self {
            FaultKind::LinkDown { a, b } => format!("link {a}<->{b} down"),
            FaultKind::LinkUp { a, b } => format!("link {a}<->{b} repaired"),
            FaultKind::LinkDegrade { a, b } => {
                format!("link {a}<->{b} degraded ({DEGRADE_FACTOR}x slower)")
            }
            FaultKind::FlitCorrupt { from, to } => {
                format!("transient flit corruption on link {from}->{to} (CRC retransmit)")
            }
            FaultKind::NodeDrain { node } => format!("node {node} drained"),
            FaultKind::NodeUndrain { node } => format!("node {node} undrained"),
            FaultKind::RouterPause { node, ps } => {
                format!("router {node} paused for {ps} ps")
            }
            FaultKind::ChannelDown { node } => format!("RDRAM channel lost at node {node}"),
            FaultKind::ChannelUp { node } => format!("RDRAM channel restored at node {node}"),
        }
    }

    /// Whether this kind heals damage rather than inflicting it.
    pub fn is_repair(&self) -> bool {
        matches!(
            self,
            FaultKind::LinkUp { .. } | FaultKind::NodeUndrain { .. } | FaultKind::ChannelUp { .. }
        )
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What fails (or recovers).
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, kept sorted by strike time (stable
/// for simultaneous events, so injection order is reproducible).
///
/// # Examples
///
/// ```
/// use alphasim_kernel::fault::{FaultKind, FaultPlan};
/// use alphasim_kernel::{SimDuration, SimTime};
///
/// let mut plan = FaultPlan::new();
/// plan.push(
///     SimTime::ZERO + SimDuration::from_ns(500.0),
///     FaultKind::LinkDown { a: 0, b: 1 },
/// );
/// plan.push(
///     SimTime::ZERO + SimDuration::from_ns(2_000.0),
///     FaultKind::LinkUp { a: 0, b: 1 },
/// );
/// assert_eq!(plan.events().len(), 2);
/// assert!(plan.events()[0].at < plan.events()[1].at);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (nothing ever fails).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `kind` to strike at `at`, keeping the plan sorted by
    /// `(time, kind, site)` — ties in strike time are broken by the fault
    /// kind's total order (variant rank, then node/link indices), *not* by
    /// push order, so a plan's replay order is a pure function of its
    /// contents.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        let idx = self
            .events
            .partition_point(|e| (e.at, e.kind) <= (at, kind));
        self.events.insert(idx, FaultEvent { at, kind });
        self
    }

    /// A plan built from `events`, normalized to `(time, kind, site)` order.
    pub fn from_events(events: impl IntoIterator<Item = FaultEvent>) -> Self {
        let mut plan = FaultPlan::new();
        for e in events {
            plan.push(e.at, e.kind);
        }
        plan
    }

    /// The scheduled faults in strike order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// A seeded plan failing `count` distinct links drawn from `candidates`,
    /// with strike times spread evenly across `window` (first fault at the
    /// window start plus one spacing). The draw is a deterministic partial
    /// Fisher–Yates over the candidate list, so the same seed always wounds
    /// the same links at the same times.
    ///
    /// # Panics
    ///
    /// Panics if `count > candidates.len()`.
    pub fn random_link_failures(
        seed: u64,
        candidates: &[(usize, usize)],
        count: usize,
        window: (SimTime, SimTime),
    ) -> Self {
        assert!(
            count <= candidates.len(),
            "cannot fail {count} of {} candidate links",
            candidates.len()
        );
        let mut pool = candidates.to_vec();
        let mut rng = DetRng::seeded(seed);
        let mut plan = FaultPlan::new();
        let span = window.1.since(window.0);
        let spacing = span / (count as u64 + 1).max(1);
        for i in 0..count {
            let pick = i + rng.index(pool.len() - i);
            pool.swap(i, pick);
            let (a, b) = pool[i];
            let at = window.0 + spacing.saturating_mul(i as u64 + 1);
            plan.push(at, FaultKind::LinkDown { a, b });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn t(ns: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn push_orders_by_time_then_kind_then_site() {
        // Same-timestamp faults sort by (kind, site) regardless of push
        // order: LinkUp (variant rank 1) precedes NodeDrain (rank 4), and
        // within a kind the smaller site wins.
        let mut plan = FaultPlan::new();
        plan.push(t(30.0), FaultKind::NodeDrain { node: 2 });
        plan.push(t(10.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(t(30.0), FaultKind::LinkUp { a: 0, b: 1 });
        plan.push(t(30.0), FaultKind::NodeDrain { node: 1 });
        let kinds: Vec<FaultKind> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::LinkDown { a: 0, b: 1 },
                FaultKind::LinkUp { a: 0, b: 1 },
                FaultKind::NodeDrain { node: 1 },
                FaultKind::NodeDrain { node: 2 },
            ]
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn colliding_timestamps_normalize_identically_from_any_push_order() {
        let faults = [
            FaultKind::ChannelDown { node: 7 },
            FaultKind::LinkDown { a: 2, b: 3 },
            FaultKind::RouterPause { node: 1, ps: 500 },
            FaultKind::NodeDrain { node: 0 },
            FaultKind::FlitCorrupt { from: 4, to: 5 },
        ];
        let mut fwd = FaultPlan::new();
        for k in faults {
            fwd.push(t(100.0), k);
        }
        let mut rev = FaultPlan::new();
        for k in faults.iter().rev() {
            rev.push(t(100.0), *k);
        }
        assert_eq!(fwd, rev, "tie order must not depend on push order");
        let rebuilt = FaultPlan::from_events(rev.events().iter().copied());
        assert_eq!(fwd, rebuilt);
    }

    #[test]
    fn random_failures_are_deterministic_and_distinct() {
        let candidates: Vec<(usize, usize)> = (0..16).map(|i| (i, (i + 1) % 16)).collect();
        let window = (t(0.0), t(1_000.0));
        let a = FaultPlan::random_link_failures(7, &candidates, 5, window);
        let b = FaultPlan::random_link_failures(7, &candidates, 5, window);
        assert_eq!(a, b, "same seed, same plan");
        let mut links: Vec<(usize, usize)> = a
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::LinkDown { a, b } => (a, b),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        assert_eq!(links.len(), 5, "links must be distinct");
        for w in a.events().windows(2) {
            assert!(w[0].at < w[1].at, "strike times must be spread out");
        }
        let c = FaultPlan::random_link_failures(8, &candidates, 5, window);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn describe_names_every_kind() {
        let kinds = [
            FaultKind::LinkDown { a: 1, b: 2 },
            FaultKind::LinkUp { a: 1, b: 2 },
            FaultKind::LinkDegrade { a: 1, b: 2 },
            FaultKind::FlitCorrupt { from: 1, to: 2 },
            FaultKind::NodeDrain { node: 3 },
            FaultKind::NodeUndrain { node: 3 },
            FaultKind::RouterPause { node: 3, ps: 1_000 },
            FaultKind::ChannelDown { node: 4 },
            FaultKind::ChannelUp { node: 4 },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for kind in kinds {
            assert!(!kind.describe().is_empty());
            assert!(seen.insert(kind.describe()), "descriptions must differ");
        }
        let repairs = kinds.iter().filter(|k| k.is_repair()).count();
        assert_eq!(repairs, 3, "LinkUp, NodeUndrain, ChannelUp are repairs");
    }

    #[test]
    #[should_panic(expected = "cannot fail")]
    fn rejects_overdrawn_plans() {
        let _ = FaultPlan::random_link_failures(0, &[(0, 1)], 2, (t(0.0), t(10.0)));
    }
}
