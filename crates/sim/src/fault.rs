//! Deterministic fault schedules for live fault injection.
//!
//! The GS1280's robustness story — the torus routes around wounded cables,
//! the RDRAM subsystem spares a failed channel — only shows up when things
//! fail *while the machine is running*. A [`FaultPlan`] is a seeded,
//! reproducible schedule of such failures: link-down/link-up, node drains
//! and RDRAM channel losses, each stamped with the simulation time at which
//! it strikes. Consumers (the network simulator, the system-level fault
//! campaign) feed the plan into their event queues, so two runs with the
//! same plan are bit-identical.
//!
//! Node and link identifiers are plain `usize` indices here — the kernel
//! crate sits below the topology crate, so it cannot name `NodeId`; the
//! network layer converts at the boundary.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::SimTime;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The undirected link between nodes `a` and `b` fails (both directions).
    LinkDown {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
    },
    /// A previously failed link is repaired.
    LinkUp {
        /// One end of the link.
        a: usize,
        /// The other end.
        b: usize,
    },
    /// `node`'s CPU stops sourcing new traffic (its router keeps forwarding,
    /// as a wounded EV7's does).
    NodeDrain {
        /// The drained node.
        node: usize,
    },
    /// One RDRAM channel of `node`'s memory controller fails (the redundant
    /// 5th channel absorbs the first such failure, paper §2).
    ChannelDown {
        /// The node whose Zbox loses a channel.
        node: usize,
    },
}

impl FaultKind {
    /// Short human-readable description, used by watchdog reports and logs.
    pub fn describe(&self) -> String {
        match self {
            FaultKind::LinkDown { a, b } => format!("link {a}<->{b} down"),
            FaultKind::LinkUp { a, b } => format!("link {a}<->{b} repaired"),
            FaultKind::NodeDrain { node } => format!("node {node} drained"),
            FaultKind::ChannelDown { node } => format!("RDRAM channel lost at node {node}"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What fails (or recovers).
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, kept sorted by strike time (stable
/// for simultaneous events, so injection order is reproducible).
///
/// # Examples
///
/// ```
/// use alphasim_kernel::fault::{FaultKind, FaultPlan};
/// use alphasim_kernel::{SimDuration, SimTime};
///
/// let mut plan = FaultPlan::new();
/// plan.push(
///     SimTime::ZERO + SimDuration::from_ns(500.0),
///     FaultKind::LinkDown { a: 0, b: 1 },
/// );
/// plan.push(
///     SimTime::ZERO + SimDuration::from_ns(2_000.0),
///     FaultKind::LinkUp { a: 0, b: 1 },
/// );
/// assert_eq!(plan.events().len(), 2);
/// assert!(plan.events()[0].at < plan.events()[1].at);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (nothing ever fails).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `kind` to strike at `at`, keeping the plan time-sorted.
    /// Faults pushed at the same timestamp keep their push order.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
        self
    }

    /// The scheduled faults in strike order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A seeded plan failing `count` distinct links drawn from `candidates`,
    /// with strike times spread evenly across `window` (first fault at the
    /// window start plus one spacing). The draw is a deterministic partial
    /// Fisher–Yates over the candidate list, so the same seed always wounds
    /// the same links at the same times.
    ///
    /// # Panics
    ///
    /// Panics if `count > candidates.len()`.
    pub fn random_link_failures(
        seed: u64,
        candidates: &[(usize, usize)],
        count: usize,
        window: (SimTime, SimTime),
    ) -> Self {
        assert!(
            count <= candidates.len(),
            "cannot fail {count} of {} candidate links",
            candidates.len()
        );
        let mut pool = candidates.to_vec();
        let mut rng = DetRng::seeded(seed);
        let mut plan = FaultPlan::new();
        let span = window.1.since(window.0);
        let spacing = span / (count as u64 + 1).max(1);
        for i in 0..count {
            let pick = i + rng.index(pool.len() - i);
            pool.swap(i, pick);
            let (a, b) = pool[i];
            let at = window.0 + spacing.saturating_mul(i as u64 + 1);
            plan.push(at, FaultKind::LinkDown { a, b });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn t(ns: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn push_keeps_time_order_and_fifo_ties() {
        let mut plan = FaultPlan::new();
        plan.push(t(30.0), FaultKind::NodeDrain { node: 2 });
        plan.push(t(10.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(t(30.0), FaultKind::LinkUp { a: 0, b: 1 });
        let kinds: Vec<FaultKind> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::LinkDown { a: 0, b: 1 },
                FaultKind::NodeDrain { node: 2 },
                FaultKind::LinkUp { a: 0, b: 1 },
            ]
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn random_failures_are_deterministic_and_distinct() {
        let candidates: Vec<(usize, usize)> = (0..16).map(|i| (i, (i + 1) % 16)).collect();
        let window = (t(0.0), t(1_000.0));
        let a = FaultPlan::random_link_failures(7, &candidates, 5, window);
        let b = FaultPlan::random_link_failures(7, &candidates, 5, window);
        assert_eq!(a, b, "same seed, same plan");
        let mut links: Vec<(usize, usize)> = a
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::LinkDown { a, b } => (a, b),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        assert_eq!(links.len(), 5, "links must be distinct");
        for w in a.events().windows(2) {
            assert!(w[0].at < w[1].at, "strike times must be spread out");
        }
        let c = FaultPlan::random_link_failures(8, &candidates, 5, window);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn describe_names_every_kind() {
        for kind in [
            FaultKind::LinkDown { a: 1, b: 2 },
            FaultKind::LinkUp { a: 1, b: 2 },
            FaultKind::NodeDrain { node: 3 },
            FaultKind::ChannelDown { node: 4 },
        ] {
            assert!(!kind.describe().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "cannot fail")]
    fn rejects_overdrawn_plans() {
        let _ = FaultPlan::random_link_failures(0, &[(0, 1)], 2, (t(0.0), t(10.0)));
    }
}
