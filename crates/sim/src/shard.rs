//! Region-sharded event queues and the conservative epoch scheduler.
//!
//! The GS1280 being reproduced is itself a partitioned machine: a 2-D torus
//! where every hop costs a known, fixed wire latency. This module exploits
//! the same structure *inside* one simulation run:
//!
//! * [`ShardedEventQueue`] splits the future-event list into per-region
//!   heaps while preserving the **exact** pop order of a single
//!   [`EventQueue`](crate::EventQueue): all shards share one insertion
//!   sequence counter, and `pop` takes the globally minimal packed
//!   `(time << 64 | seq)` key. Output is therefore byte-identical at any
//!   shard count *by construction* — the invariant `reproduce --check`
//!   enforces for every committed artifact.
//! * [`EpochExecutor`] is the conservative parallel engine: each shard owns
//!   its slice of simulation state (a [`ShardWorker`]) and its own event
//!   heap, advances independently up to a **conservative lookahead
//!   horizon** — the minimum latency of any inter-region link — and
//!   exchanges cross-region events at barrier epochs. The lookahead
//!   contract is enforced at every emission: a cross-shard event closer
//!   than the horizon panics, because it could land in a region's past.
//!
//! Determinism of the parallel engine does not come from scheduling luck:
//! shards are **owned values** moved through the
//! [`WorkerPool`](crate::par::WorkerPool)'s channels (no shared mutable
//! state), cross-region events carry caller-assigned, shard-count-invariant
//! tiebreak ids, and barrier exchange applies outboxes in ascending region
//! order. The same seeds therefore produce the same event order — and the
//! same bytes — at 1, 2, or 4 shards, on 1 or 8 threads.
//!
//! The ownership discipline this module hands its users — workers emit
//! cross-region effects only through [`Outbox::emit`], guides mutate
//! workers only through the barrier-scoped [`EpochControl`] — is checked
//! statically by the `verify::ownership` pass: `Outbox` must expose no
//! public fields and [`ShardWorker::handle`] must take `&mut Outbox`, so
//! a worker cannot even type an effect that bypasses the lookahead
//! contract. `cargo run -p verify --bin ownership` enforces it in CI.

use alphasim_telemetry::global::{EVENT_QUEUE_PEAK, EVENT_QUEUE_SHARD_PEAKS, MAX_TRACKED_SHARDS};

use crate::par::WorkerPool;
use crate::time::{SimDuration, SimTime};

/// Packed heap key: `time << 64 | tiebreak` — one `u128` comparison orders
/// events by time, then tiebreak. Identical to the packing in
/// [`EventQueue`](crate::EventQueue), which is what makes the sharded
/// queue's pop order provably equal to the single queue's.
#[inline]
fn pack(at: SimTime, tiebreak: u64) -> u128 {
    (u128::from(at.as_ps()) << 64) | u128::from(tiebreak)
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_ps((key >> 64) as u64)
}

/// Push onto a 4-ary implicit min-heap (children of `i` at `4i+1..=4i+4`).
fn heap_push<E>(heap: &mut Vec<(u128, E)>, key: u128, payload: E) {
    heap.push((key, payload));
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 4;
        if key < heap[parent].0 {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Pop the minimum off a 4-ary implicit min-heap.
fn heap_pop<E>(heap: &mut Vec<(u128, E)>) -> Option<(u128, E)> {
    if heap.is_empty() {
        return None;
    }
    let entry = heap.swap_remove(0);
    let len = heap.len();
    if len > 1 {
        let sifted = heap[0].0;
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let end = (first + 4).min(len);
            let mut best = first;
            let mut bk = heap[first].0;
            for (off, entry) in heap[first + 1..end].iter().enumerate() {
                if entry.0 < bk {
                    best = first + 1 + off;
                    bk = entry.0;
                }
            }
            if bk < sifted {
                heap.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }
    Some(entry)
}

/// A future-event list partitioned into per-region shards, with the exact
/// pop order of a single [`EventQueue`](crate::EventQueue).
///
/// Every `schedule` draws from one shared insertion-sequence counter and
/// `pop` removes the globally smallest `(time, seq)` key, so the pop
/// sequence is independent of how events are assigned to shards — sharding
/// changes *where* an event waits, never *when* it fires. What sharding
/// adds is structure: per-shard high-water marks (the congestion signature
/// of each torus region) and the partitioning a conservative parallel
/// executor needs.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::shard::ShardedEventQueue;
/// use alphasim_kernel::SimTime;
///
/// let mut q = ShardedEventQueue::new(2);
/// q.schedule(1, SimTime::from_ps(10), 'b');
/// q.schedule(0, SimTime::from_ps(5), 'a');
/// assert_eq!(q.pop(), Some((SimTime::from_ps(5), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_ps(10), 'b')));
/// ```
pub struct ShardedEventQueue<E> {
    shards: Vec<Vec<(u128, E)>>,
    /// Shared across shards: the global FIFO order among simultaneous
    /// events, exactly as in the unsharded queue.
    next_seq: u64,
    now: SimTime,
    len: usize,
    peak_len: usize,
    shard_peaks: Vec<usize>,
}

impl<E> ShardedEventQueue<E> {
    /// An empty queue with `shards` regions (at least one), positioned at
    /// [`SimTime::ZERO`].
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedEventQueue {
            shards: (0..shards).map(|_| Vec::new()).collect(),
            next_seq: 0,
            now: SimTime::ZERO,
            len: 0,
            peak_len: 0,
            shard_peaks: vec![0; shards],
        }
    }

    /// Number of region shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedule `payload` on `shard` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time or
    /// `shard` is out of range.
    pub fn schedule(&mut self, shard: usize, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        heap_push(&mut self.shards[shard], pack(at, seq), payload);
        self.len += 1;
        if self.shards[shard].len() > self.shard_peaks[shard] {
            self.shard_peaks[shard] = self.shards[shard].len();
        }
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
    }

    /// Remove and return the globally earliest event, advancing the clock
    /// to its timestamp. `None` when every shard is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let mut best: Option<(usize, u128)> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(&(key, _)) = heap.first() {
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((i, key));
                }
            }
        }
        let (shard, _) = best?;
        let (key, payload) = heap_pop(&mut self.shards[shard])?;
        self.len -= 1;
        let time = unpack_time(key);
        debug_assert!(time >= self.now);
        self.now = time;
        Some((time, payload))
    }

    /// Timestamp of the globally earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|h| h.first().map(|e| e.0))
            .min()
            .map(unpack_time)
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most events held at once across all shards since construction
    /// (or the last [`clear`](Self::clear)).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Per-shard high-water marks, indexed by shard id.
    pub fn shard_peaks(&self) -> &[usize] {
        &self.shard_peaks
    }

    /// Drop all pending events and rewind to [`SimTime::ZERO`], keeping
    /// allocations (and flushing peaks to the process-wide gauges).
    pub fn clear(&mut self) {
        self.flush_peaks();
        for heap in &mut self.shards {
            heap.clear();
        }
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.len = 0;
    }

    /// Publish high-water marks to the process-wide telemetry gauges and
    /// reset the local counters. Shards beyond
    /// [`MAX_TRACKED_SHARDS`] fold into the last gauge.
    fn flush_peaks(&mut self) {
        if self.peak_len > 0 {
            EVENT_QUEUE_PEAK.record_max(self.peak_len as u64);
            self.peak_len = 0;
        }
        for (i, peak) in self.shard_peaks.iter_mut().enumerate() {
            if *peak > 0 {
                EVENT_QUEUE_SHARD_PEAKS[i.min(MAX_TRACKED_SHARDS - 1)].record_max(*peak as u64);
                *peak = 0;
            }
        }
    }
}

impl<E> Drop for ShardedEventQueue<E> {
    fn drop(&mut self) {
        self.flush_peaks();
    }
}

/// Read-and-reset the process-wide per-shard peak event-queue depths (the
/// high-water marks flushed by every [`ShardedEventQueue`] since the last
/// take), trimmed of trailing zeros. Index `i` is shard `i`'s peak; shards
/// beyond [`MAX_TRACKED_SHARDS`] fold into the last entry. Empty when no
/// sharded queue ran.
pub fn take_shard_peak_depths() -> Vec<u64> {
    let mut peaks: Vec<u64> = EVENT_QUEUE_SHARD_PEAKS.iter().map(|g| g.take()).collect();
    while peaks.last() == Some(&0) {
        peaks.pop();
    }
    peaks
}

impl<E> std::fmt::Debug for ShardedEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEventQueue")
            .field("shards", &self.shards.len())
            .field("pending", &self.len)
            .field("now", &self.now)
            .finish()
    }
}

/// One shard's slice of simulation state in an epoch-parallel run.
///
/// The executor owns one worker per region; during an epoch each worker
/// handles its region's events in `(time, tiebreak)` order and emits
/// follow-up events through the [`Outbox`]. Workers are moved — never
/// shared — between the coordinator and the pool threads, so a worker may
/// freely mutate itself without any synchronization.
pub trait ShardWorker: Send + 'static {
    /// The event type this simulation processes.
    type Event: Send + 'static;

    /// Handle one event firing at `at`, emitting follow-ups via `out`.
    fn handle(&mut self, at: SimTime, ev: Self::Event, out: &mut Outbox<Self::Event>);
}

/// Where a [`ShardWorker`] emits follow-up events.
///
/// Same-shard emissions may fire at any `at >= now` (they are merged into
/// the shard's own heap and can still fire within the current epoch).
/// Cross-shard emissions must respect the **lookahead contract**:
/// `at >= now + lookahead`, where the lookahead is the minimum inter-region
/// link latency. Violations panic immediately, naming the horizon — a
/// too-close event could land in a peer region's already-executed past.
///
/// `tiebreak` orders simultaneous events and must be *shard-count
/// invariant* (derived from simulation identities like node and per-node
/// emission counters, never from shard ids or arrival order), or runs at
/// different shard counts may diverge on ties.
pub struct Outbox<E> {
    home: usize,
    now: SimTime,
    lookahead: SimDuration,
    local: Vec<(SimTime, u64, E)>,
    remote: Vec<(usize, SimTime, u64, E)>,
}

impl<E> Outbox<E> {
    /// Emit an event for `shard` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, or if `shard` is not the emitting
    /// shard and `at` is closer than the conservative lookahead horizon.
    pub fn emit(&mut self, shard: usize, at: SimTime, tiebreak: u64, ev: E) {
        assert!(
            at >= self.now,
            "event emitted into the past: {at} < {}",
            self.now
        );
        if shard == self.home {
            self.local.push((at, tiebreak, ev));
        } else {
            assert!(
                at >= self.now + self.lookahead,
                "lookahead violation: region {home} emitted an event for region \
                 {shard} at t={at}, inside the conservative horizon {horizon} \
                 (emitter's now={now} + lookahead {lookahead}); the event could \
                 land in region {shard}'s already-executed past",
                horizon = self.now + self.lookahead,
                lookahead = self.lookahead,
                now = self.now,
                home = self.home,
            );
            self.remote.push((shard, at, tiebreak, ev));
        }
    }
}

/// One shard: its event heap, its owned worker state, and its epoch
/// scratch. Moved wholesale through the pool's channels each epoch.
struct ShardSlot<W: ShardWorker> {
    heap: Vec<(u128, W::Event)>,
    worker: W,
    outbox: Outbox<W::Event>,
    /// Exclusive processing bound for the current epoch.
    bound: SimTime,
    processed: u64,
    peak: usize,
    /// Accumulate wall-clock busy time per slot (epoch profiler only).
    time_wall: bool,
    wall_ns: u64,
}

/// Process every local event strictly before the epoch bound, merging
/// same-shard emissions back into the heap as it goes.
fn run_slot<W: ShardWorker>(slot: &mut ShardSlot<W>) {
    // Wall-clock here is reporting-only (the epoch profiler's optional
    // overhead view) and never feeds back into simulation decisions; off,
    // it costs one untaken branch.
    let t0 = slot.time_wall.then(std::time::Instant::now); // lint-allow: wall-clock
    while let Some(&(key, _)) = slot.heap.first() {
        let at = unpack_time(key);
        if at >= slot.bound {
            break;
        }
        let (_, ev) = heap_pop(&mut slot.heap).expect("peeked entry pops");
        slot.outbox.now = at;
        slot.worker.handle(at, ev, &mut slot.outbox);
        slot.processed += 1;
        while let Some((t, tb, e)) = slot.outbox.local.pop() {
            heap_push(&mut slot.heap, pack(t, tb), e);
        }
        if slot.heap.len() > slot.peak {
            slot.peak = slot.heap.len();
        }
    }
    if let Some(t0) = t0 {
        slot.wall_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
}

/// One epoch of one profiled run: the sim-time span the epoch covered and
/// what every shard did inside it. `processed[s]` / `merged[s]` are
/// sim-time facts (event counts), identical at any thread count;
/// `wall_ns` is the optional measured view and is never part of any
/// byte-checked artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSample {
    /// Global minimum pending event time when the epoch began.
    pub start_ps: u64,
    /// The epoch's exclusive processing bound.
    pub end_ps: u64,
    /// Events each shard processed this epoch, indexed by shard id.
    pub processed: Vec<u64>,
    /// Cross-region events merged *into* each shard at the barrier.
    pub merged: Vec<u64>,
    /// Wall-clock nanoseconds each shard spent busy, when wall profiling
    /// was requested.
    pub wall_ns: Option<Vec<u64>>,
}

/// The epoch-parallel profiler's output: one [`EpochSample`] per barrier
/// epoch, in execution order. Collected only when
/// [`EpochExecutor::enable_profile`] was called — the zero-cost-when-off
/// pattern every other instrumentation site follows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochProfile {
    wall: bool,
    /// Per-epoch samples in execution order.
    pub samples: Vec<EpochSample>,
}

impl EpochProfile {
    /// Whether wall-clock spans were collected.
    pub fn wall_clock(&self) -> bool {
        self.wall
    }

    /// Number of profiled epochs.
    pub fn epochs(&self) -> usize {
        self.samples.len()
    }

    /// Number of shards profiled (0 before the first epoch).
    pub fn shard_count(&self) -> usize {
        self.samples.first().map_or(0, |s| s.processed.len())
    }

    /// Total events processed per shard across all epochs — the sim-time
    /// "busy" series behind the load-imbalance metric.
    pub fn busy_per_shard(&self) -> Vec<u64> {
        let mut busy = vec![0u64; self.shard_count()];
        for s in &self.samples {
            for (b, p) in busy.iter_mut().zip(&s.processed) {
                *b += p;
            }
        }
        busy
    }

    /// Total cross-region events merged into each shard at barriers.
    pub fn merged_per_shard(&self) -> Vec<u64> {
        let mut merged = vec![0u64; self.shard_count()];
        for s in &self.samples {
            for (m, v) in merged.iter_mut().zip(&s.merged) {
                *m += v;
            }
        }
        merged
    }

    /// The shard that processed the most events overall (lowest id on
    /// ties) — the critical shard every barrier waits for.
    pub fn critical_shard(&self) -> usize {
        let busy = self.busy_per_shard();
        let max = busy.iter().copied().max().unwrap_or(0);
        busy.iter().position(|&b| b == max).unwrap_or(0)
    }

    /// Load imbalance as `max / mean` of per-shard busy event counts, in
    /// integer milli-units (1000 = perfectly balanced; 0 when no events
    /// were processed). Integer math keeps it byte-stable in artifacts.
    pub fn imbalance_milli(&self) -> u64 {
        let busy = self.busy_per_shard();
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return 0;
        }
        let max = busy.iter().copied().max().unwrap_or(0);
        max * 1000 * busy.len() as u64 / total
    }
}

/// What a guide decides at a barrier it requested (see [`EpochGuide`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierVerdict {
    /// Keep running epochs (the guide may have injected new events).
    Continue,
    /// Stop the run immediately; pending events stay in their heaps.
    Stop,
}

/// A coordinator hook driving [`EpochExecutor::run_guided`]: the guide
/// names global barrier times (fault strikes, watchdog ticks) at which the
/// executor stops every shard, hands the guide exclusive access to all
/// worker state through an [`EpochControl`], and only then resumes.
///
/// The executor guarantees that when [`at_barrier`](Self::at_barrier) runs
/// for time `b`, every event strictly before `b` has been processed and no
/// event at or after `b` has — so barrier mutations apply before any event
/// at exactly `b`, in every shard, at every shard/thread count.
pub trait EpochGuide<W: ShardWorker> {
    /// The next barrier time, if any. Called before each epoch; the
    /// returned time must not be in the executor's past, and after
    /// [`at_barrier`](Self::at_barrier) for time `b` it must advance
    /// strictly beyond `b`.
    fn next_barrier(&mut self) -> Option<SimTime>;

    /// Strike the barrier at `at`: mutate workers, inject or extract
    /// events, adjust the lookahead. Invoked even when every heap is empty
    /// — a quiescent simulation can still owe watchdog ticks.
    fn at_barrier(&mut self, at: SimTime, ctl: &mut EpochControl<'_, W>) -> BarrierVerdict;
}

/// The guide's window into a stopped executor: exclusive access to every
/// worker and heap while all shards sit at a barrier.
pub struct EpochControl<'a, W: ShardWorker> {
    slots: &'a mut Vec<ShardSlot<W>>,
    lookahead: &'a mut SimDuration,
    now: SimTime,
}

impl<W: ShardWorker> EpochControl<'_, W> {
    /// The barrier time being struck.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of region shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Shared access to `shard`'s worker state.
    pub fn worker(&self, shard: usize) -> &W {
        &self.slots[shard].worker
    }

    /// Exclusive access to `shard`'s worker state.
    pub fn worker_mut(&mut self, shard: usize) -> &mut W {
        &mut self.slots[shard].worker
    }

    /// Schedule `ev` on `shard` at `at`. Barrier injections bypass the
    /// lookahead contract: every shard is stopped at the barrier, so
    /// nothing can land in an already-executed past — only `at >= now`
    /// (the barrier time) is required.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the barrier time.
    pub fn inject(&mut self, shard: usize, at: SimTime, tiebreak: u64, ev: W::Event) {
        assert!(
            at >= self.now,
            "barrier injection into the past: {at} < barrier {now}",
            now = self.now
        );
        heap_push(&mut self.slots[shard].heap, pack(at, tiebreak), ev);
    }

    /// Replace the conservative lookahead for subsequent epochs — e.g.
    /// after a fault kills or restores the fastest cross-region link.
    ///
    /// # Panics
    ///
    /// Panics on a zero horizon (it cannot make progress).
    pub fn set_lookahead(&mut self, lookahead: SimDuration) {
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative lookahead must be positive"
        );
        *self.lookahead = lookahead;
    }

    /// The conservative lookahead currently in force.
    pub fn lookahead(&self) -> SimDuration {
        *self.lookahead
    }

    /// Remove every pending event on `shard` matching `pred`, returning
    /// the matches as `(time, tiebreak, event)` in ascending key order.
    /// Non-matching events keep their keys. Used to condemn in-flight
    /// work when a barrier fault invalidates it (e.g. a message mid-hop on
    /// a link that just died).
    pub fn extract_events<F>(&mut self, shard: usize, mut pred: F) -> Vec<(SimTime, u64, W::Event)>
    where
        F: FnMut(SimTime, &W::Event) -> bool,
    {
        let heap = &mut self.slots[shard].heap;
        let entries: Vec<(u128, W::Event)> = std::mem::take(heap);
        let mut taken = Vec::new();
        for (key, ev) in entries {
            if pred(unpack_time(key), &ev) {
                taken.push((key, ev));
            } else {
                heap_push(heap, key, ev);
            }
        }
        taken.sort_unstable_by_key(|&(key, _)| key);
        taken
            .into_iter()
            .map(|(key, ev)| (unpack_time(key), key as u64, ev))
            .collect()
    }
}

/// What one [`EpochExecutor::run_until_idle`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport {
    /// Barrier epochs executed.
    pub epochs: u64,
    /// Events processed per shard, indexed by shard id.
    pub processed: Vec<u64>,
    /// Per-shard event-heap high-water marks.
    pub shard_peaks: Vec<usize>,
}

/// The conservative epoch scheduler: per-region workers advancing in
/// lookahead-bounded epochs, exchanging cross-region events at barriers.
///
/// Each epoch the coordinator computes the global minimum next event time
/// `t` and sets every shard's bound to `t + lookahead`; shards then process
/// their local events below the bound — concurrently on the persistent
/// [`WorkerPool`] when `threads > 1`, inline otherwise — and the barrier
/// routes cross-shard emissions into their destination heaps in ascending
/// source-shard order. Safety is the emission-time assertion in
/// [`Outbox::emit`]: any event a shard emits for a peer fires at or after
/// every bound the peer could have run to, so no shard ever receives an
/// event in its past.
///
/// Serial and parallel execution produce identical results: the per-epoch
/// work is a pure function of the owned slots, and barrier merge order is
/// fixed. The choice of `threads` is purely a wall-clock knob.
pub struct EpochExecutor<W: ShardWorker> {
    slots: Vec<ShardSlot<W>>,
    pool: Option<WorkerPool<ShardSlot<W>>>,
    lookahead: SimDuration,
    epochs: u64,
    profile: Option<EpochProfile>,
}

impl<W: ShardWorker> EpochExecutor<W> {
    /// An executor over one worker per region, with the given conservative
    /// `lookahead` (must be positive — a zero horizon cannot make
    /// progress), running epochs on `threads` pool threads (1 = inline).
    pub fn new(workers: Vec<W>, lookahead: SimDuration, threads: usize) -> Self {
        assert!(!workers.is_empty(), "need at least one shard");
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative lookahead must be positive"
        );
        let slots: Vec<ShardSlot<W>> = workers
            .into_iter()
            .enumerate()
            .map(|(i, worker)| ShardSlot {
                heap: Vec::new(),
                worker,
                outbox: Outbox {
                    home: i,
                    now: SimTime::ZERO,
                    lookahead,
                    local: Vec::new(),
                    remote: Vec::new(),
                },
                bound: SimTime::ZERO,
                processed: 0,
                peak: 0,
                time_wall: false,
                wall_ns: 0,
            })
            .collect();
        let pool = (threads > 1 && slots.len() > 1)
            .then(|| WorkerPool::new(threads.min(slots.len()), run_slot::<W>));
        EpochExecutor {
            slots,
            pool,
            lookahead,
            epochs: 0,
            profile: None,
        }
    }

    /// Start collecting an [`EpochProfile`]: one sample per barrier epoch
    /// from now on. With `wall` set, shards also accumulate wall-clock busy
    /// nanoseconds (measurement only — sim results are unaffected either
    /// way, which the tests assert).
    pub fn enable_profile(&mut self, wall: bool) {
        for slot in &mut self.slots {
            slot.time_wall = wall;
        }
        self.profile = Some(EpochProfile {
            wall,
            samples: Vec::new(),
        });
    }

    /// Detach the collected profile, stopping further collection.
    pub fn take_profile(&mut self) -> Option<EpochProfile> {
        for slot in &mut self.slots {
            slot.time_wall = false;
        }
        self.profile.take()
    }

    /// Number of region shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The conservative lookahead horizon in force.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Seed an initial event on `shard` (before or between runs).
    pub fn seed(&mut self, shard: usize, at: SimTime, tiebreak: u64, ev: W::Event) {
        heap_push(&mut self.slots[shard].heap, pack(at, tiebreak), ev);
    }

    /// Timestamp of the globally earliest pending event, if any.
    fn min_next(&self) -> Option<SimTime> {
        self.slots
            .iter()
            .filter_map(|s| s.heap.first().map(|e| unpack_time(e.0)))
            .min()
    }

    /// Run one epoch with the given exclusive bound: every shard processes
    /// its local events strictly below `bound`, then the barrier routes
    /// cross-shard emissions into their destination heaps in ascending
    /// source-shard order — a fixed, shard-count-independent merge order.
    fn run_epoch(&mut self, bound: SimTime) {
        // Snapshot the profiler's "before" view first: the epoch's start is
        // the global minimum pending event time, its per-shard deltas come
        // from the monotonic processed / wall counters.
        let before = self.profile.as_ref().map(|_| {
            (
                self.min_next().unwrap_or(bound),
                self.slots.iter().map(|s| s.processed).collect::<Vec<_>>(),
                self.slots.iter().map(|s| s.wall_ns).collect::<Vec<_>>(),
            )
        });
        for slot in &mut self.slots {
            slot.bound = bound;
            slot.outbox.lookahead = self.lookahead;
        }
        match &self.pool {
            Some(pool) => {
                let taken = std::mem::take(&mut self.slots);
                self.slots = pool.run_round(taken);
            }
            None => {
                for slot in &mut self.slots {
                    run_slot(slot);
                }
            }
        }
        let mut merged_in = vec![
            0u64;
            if before.is_some() {
                self.slots.len()
            } else {
                0
            }
        ];
        for src in 0..self.slots.len() {
            let remote = std::mem::take(&mut self.slots[src].outbox.remote);
            for (dest, at, tb, ev) in remote {
                debug_assert!(at >= bound, "emit assertion admitted a past event");
                if let Some(m) = merged_in.get_mut(dest) {
                    *m += 1;
                }
                heap_push(&mut self.slots[dest].heap, pack(at, tb), ev);
            }
        }
        self.epochs += 1;
        if let Some((start, processed_before, wall_before)) = before {
            let processed: Vec<u64> = self
                .slots
                .iter()
                .zip(&processed_before)
                .map(|(s, b)| s.processed - b)
                .collect();
            let wall = self.profile.as_ref().is_some_and(|p| p.wall);
            let wall_ns = wall.then(|| {
                self.slots
                    .iter()
                    .zip(&wall_before)
                    .map(|(s, b)| s.wall_ns - b)
                    .collect()
            });
            if let Some(p) = self.profile.as_mut() {
                p.samples.push(EpochSample {
                    start_ps: start.as_ps(),
                    end_ps: bound.as_ps(),
                    processed,
                    merged: merged_in,
                    wall_ns,
                });
            }
        }
    }

    fn report(&self) -> EpochReport {
        EpochReport {
            epochs: self.epochs,
            processed: self.slots.iter().map(|s| s.processed).collect(),
            shard_peaks: self.slots.iter().map(|s| s.peak).collect(),
        }
    }

    /// Run barrier epochs until every shard's heap is empty.
    pub fn run_until_idle(&mut self) -> EpochReport {
        while let Some(t) = self.min_next() {
            self.run_epoch(t + self.lookahead);
        }
        self.report()
    }

    /// Run barrier epochs under a coordinating [`EpochGuide`] until every
    /// heap is empty and the guide has no barriers left (or it votes
    /// [`BarrierVerdict::Stop`]).
    ///
    /// Each iteration the bound is `min(t + lookahead, b)` for global
    /// minimum event time `t` and next guide barrier `b` — the bound is
    /// exclusive, so no event at or beyond a barrier fires before the
    /// guide has struck it. When `b <= t` (or no events remain) the guide
    /// runs first; its injections and lookahead changes take effect for
    /// the following epochs.
    ///
    /// # Panics
    ///
    /// Panics if the guide returns a barrier that fails to advance after
    /// being struck — the run could otherwise spin forever.
    pub fn run_guided<G: EpochGuide<W>>(&mut self, guide: &mut G) -> EpochReport {
        let mut last_struck: Option<SimTime> = None;
        loop {
            let min_next = self.min_next();
            let barrier = guide.next_barrier();
            let bound = match (min_next, barrier) {
                (None, None) => break,
                (Some(t), Some(b)) if b > t => (t + self.lookahead).min(b),
                (Some(t), None) => t + self.lookahead,
                (_, Some(b)) => {
                    // Every event strictly before `b` has fired (either no
                    // events remain or the earliest is at/after `b`):
                    // strike the barrier before anything at exactly `b`.
                    assert!(
                        last_struck.is_none_or(|p| b > p),
                        "EpochGuide barrier did not advance past {b}"
                    );
                    last_struck = Some(b);
                    let mut ctl = EpochControl {
                        slots: &mut self.slots,
                        lookahead: &mut self.lookahead,
                        now: b,
                    };
                    match guide.at_barrier(b, &mut ctl) {
                        BarrierVerdict::Continue => continue,
                        BarrierVerdict::Stop => break,
                    }
                }
            };
            self.run_epoch(bound);
        }
        self.report()
    }

    /// Tear down the pool and return the workers (and whatever results they
    /// accumulated), in shard order.
    pub fn into_workers(mut self) -> Vec<W> {
        self.pool = None; // join pool threads before dismantling the slots
        self.slots.drain(..).map(|s| s.worker).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn pop_order_matches_single_queue_under_churn() {
        // The construction proof, exercised: shared seq + global-min pop
        // must reproduce EventQueue's order exactly, however events are
        // assigned to shards.
        for shards in [1usize, 2, 4, 7] {
            let mut single = EventQueue::new();
            let mut sharded = ShardedEventQueue::new(shards);
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut now = 0u64;
            let mut next_id = 0u64;
            for _ in 0..3_000 {
                if rng() % 3 != 0 || single.is_empty() {
                    let at = now + rng() % 89;
                    single.schedule(SimTime::from_ps(at), next_id);
                    sharded.schedule(next_id as usize % shards, SimTime::from_ps(at), next_id);
                    next_id += 1;
                } else {
                    let a = single.pop().unwrap();
                    let b = sharded.pop().unwrap();
                    assert_eq!(a, b, "diverged at {shards} shards");
                    now = a.0.as_ps();
                }
            }
            loop {
                match (single.pop(), sharded.pop()) {
                    (None, None) => break,
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn tracks_global_and_per_shard_peaks() {
        let mut q = ShardedEventQueue::new(2);
        for i in 0..6u64 {
            q.schedule(usize::from(i >= 4), SimTime::from_ps(i), i);
        }
        assert_eq!(q.peak_len(), 6);
        assert_eq!(q.shard_peaks(), [4, 2]);
        while q.pop().is_some() {}
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 6, "peak survives drain");
    }

    #[test]
    fn clear_rewinds_clock_and_flushes() {
        let mut q = ShardedEventQueue::new(3);
        q.schedule(2, SimTime::from_ps(10), ());
        q.pop();
        q.schedule(0, SimTime::from_ps(20), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(1, SimTime::from_ps(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(1)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = ShardedEventQueue::new(2);
        q.schedule(0, SimTime::from_ps(10), ());
        q.pop();
        q.schedule(1, SimTime::from_ps(5), ());
    }

    /// A toy partitioned simulation for executor tests: messages hop around
    /// a ring of `nodes` nodes, one hop per `HOP_PS`, each shard owning a
    /// contiguous band of nodes and logging the deliveries that terminate
    /// in its band.
    struct RingWorker {
        nodes: usize,
        shards: usize,
        hop_ps: u64,
        log: Vec<(u64, u64)>,
        emitted: u64,
    }

    #[derive(Clone)]
    struct Hop {
        msg: u64,
        node: usize,
        remaining: u32,
    }

    fn region_of(node: usize, nodes: usize, shards: usize) -> usize {
        node * shards / nodes
    }

    impl ShardWorker for RingWorker {
        type Event = Hop;

        fn handle(&mut self, at: SimTime, ev: Hop, out: &mut Outbox<Hop>) {
            if ev.remaining == 0 {
                self.log.push((at.as_ps(), ev.msg));
                return;
            }
            let next = (ev.node + 1) % self.nodes;
            let dest = region_of(next, self.nodes, self.shards);
            // Shard-count-invariant tiebreak: message id and hop countdown.
            let tb = ev.msg * 1_000 + u64::from(ev.remaining);
            self.emitted += 1;
            out.emit(
                dest,
                at + SimDuration::from_ps(self.hop_ps),
                tb,
                Hop {
                    msg: ev.msg,
                    node: next,
                    remaining: ev.remaining - 1,
                },
            );
        }
    }

    fn run_ring(shards: usize, threads: usize, hop_ps: u64, lookahead_ps: u64) -> Vec<(u64, u64)> {
        let nodes = 16;
        let workers: Vec<RingWorker> = (0..shards)
            .map(|_| RingWorker {
                nodes,
                shards,
                hop_ps,
                log: Vec::new(),
                emitted: 0,
            })
            .collect();
        let mut exec = EpochExecutor::new(workers, SimDuration::from_ps(lookahead_ps), threads);
        for msg in 0..48u64 {
            let node = (msg as usize * 5) % nodes;
            exec.seed(
                region_of(node, nodes, shards),
                SimTime::from_ps(msg % 7),
                msg,
                Hop {
                    msg,
                    node,
                    remaining: 3 + (msg % 9) as u32,
                },
            );
        }
        let report = exec.run_until_idle();
        assert!(report.epochs > 0);
        assert_eq!(report.processed.len(), shards);
        let mut merged: Vec<(u64, u64)> = exec
            .into_workers()
            .into_iter()
            .flat_map(|w| w.log)
            .collect();
        merged.sort_unstable();
        assert_eq!(merged.len(), 48, "every message delivered exactly once");
        merged
    }

    #[test]
    fn executor_is_invariant_across_shard_and_thread_counts() {
        let reference = run_ring(1, 1, 50, 50);
        for shards in [2usize, 4] {
            for threads in [1usize, 4] {
                assert_eq!(
                    run_ring(shards, threads, 50, 50),
                    reference,
                    "{shards} shards x {threads} threads diverged"
                );
            }
        }
    }

    fn run_ring_profiled(
        shards: usize,
        threads: usize,
        wall: bool,
    ) -> (Vec<(u64, u64)>, EpochProfile, EpochReport) {
        let nodes = 16;
        let workers: Vec<RingWorker> = (0..shards)
            .map(|_| RingWorker {
                nodes,
                shards,
                hop_ps: 50,
                log: Vec::new(),
                emitted: 0,
            })
            .collect();
        let mut exec = EpochExecutor::new(workers, SimDuration::from_ps(50), threads);
        for msg in 0..48u64 {
            let node = (msg as usize * 5) % nodes;
            exec.seed(
                region_of(node, nodes, shards),
                SimTime::from_ps(msg % 7),
                msg,
                Hop {
                    msg,
                    node,
                    remaining: 3 + (msg % 9) as u32,
                },
            );
        }
        exec.enable_profile(wall);
        let report = exec.run_until_idle();
        let profile = exec.take_profile().expect("profile was enabled");
        let mut merged: Vec<(u64, u64)> = exec
            .into_workers()
            .into_iter()
            .flat_map(|w| w.log)
            .collect();
        merged.sort_unstable();
        (merged, profile, report)
    }

    #[test]
    fn profiling_does_not_perturb_results_and_busy_sums_match_the_report() {
        let plain = run_ring(4, 1, 50, 50);
        let (profiled, profile, report) = run_ring_profiled(4, 1, false);
        assert_eq!(profiled, plain, "profiling must not change sim results");
        assert_eq!(profile.epochs() as u64, report.epochs);
        assert_eq!(profile.shard_count(), 4);
        assert_eq!(
            profile.busy_per_shard(),
            report.processed,
            "per-epoch processed deltas must sum to the report totals"
        );
        // Epoch spans are well-formed, monotone sim-time intervals.
        let mut prev_end = 0u64;
        for s in &profile.samples {
            assert!(s.start_ps < s.end_ps, "epoch span must be non-empty");
            assert!(s.start_ps >= prev_end.saturating_sub(50), "epochs advance");
            prev_end = s.end_ps;
            assert_eq!(s.processed.len(), 4);
            assert_eq!(s.merged.len(), 4);
            assert!(s.wall_ns.is_none(), "wall profiling was off");
        }
        // The critical shard is the argmax of the busy series, and the
        // imbalance metric is at least 1000 (max >= mean) once work ran.
        let busy = profile.busy_per_shard();
        assert_eq!(busy[profile.critical_shard()], *busy.iter().max().unwrap());
        assert!(profile.imbalance_milli() >= 1000);
        // Single-shard runs merge nothing; multi-shard ring traffic must.
        assert!(profile.merged_per_shard().iter().sum::<u64>() > 0);
    }

    #[test]
    fn profile_sim_time_fields_are_thread_invariant() {
        let (_, reference, _) = run_ring_profiled(4, 1, false);
        let (_, parallel, _) = run_ring_profiled(4, 4, false);
        assert_eq!(
            parallel, reference,
            "sim-time profile fields must not depend on thread count"
        );
    }

    #[test]
    fn wall_profiling_records_spans_without_perturbing_sim_time_fields() {
        let (results, walled, _) = run_ring_profiled(2, 2, true);
        assert!(walled.wall_clock());
        assert_eq!(results, run_ring(2, 1, 50, 50));
        let (_, reference, _) = run_ring_profiled(2, 1, false);
        assert_eq!(walled.epochs(), reference.epochs());
        for (w, r) in walled.samples.iter().zip(&reference.samples) {
            assert_eq!(w.wall_ns.as_ref().map(Vec::len), Some(2));
            assert_eq!((w.start_ps, w.end_ps), (r.start_ps, r.end_ps));
            assert_eq!(&w.processed, &r.processed);
            assert_eq!(&w.merged, &r.merged);
        }
    }

    #[test]
    fn executor_accepts_lookahead_below_actual_link_latency() {
        // The lookahead only needs to be conservative (<= the true minimum
        // inter-region latency); a smaller horizon costs epochs, not
        // correctness.
        assert_eq!(run_ring(4, 2, 50, 20), run_ring(1, 1, 50, 20));
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn cross_shard_emission_inside_horizon_panics() {
        // Claim a horizon larger than the hop latency: the first
        // cross-region hop violates the contract and must be caught.
        run_ring(4, 1, 10, 500);
    }

    /// A guide for the ring simulation: at each barrier it records the
    /// strike, optionally injects one fresh message, and stops after a
    /// configured number of strikes.
    struct RingGuide {
        barriers: Vec<u64>,
        struck: Vec<u64>,
        inject_msg: Option<u64>,
        stop_after: usize,
        nodes: usize,
        shards: usize,
    }

    impl EpochGuide<RingWorker> for RingGuide {
        fn next_barrier(&mut self) -> Option<SimTime> {
            self.barriers.first().map(|&b| SimTime::from_ps(b))
        }

        fn at_barrier(
            &mut self,
            at: SimTime,
            ctl: &mut EpochControl<'_, RingWorker>,
        ) -> BarrierVerdict {
            self.barriers.remove(0);
            self.struck.push(at.as_ps());
            if let Some(msg) = self.inject_msg.take() {
                let node = 3;
                ctl.inject(
                    region_of(node, self.nodes, self.shards),
                    at,
                    msg,
                    Hop {
                        msg,
                        node,
                        remaining: 4,
                    },
                );
            }
            if self.struck.len() >= self.stop_after {
                BarrierVerdict::Stop
            } else {
                BarrierVerdict::Continue
            }
        }
    }

    fn run_guided_ring(shards: usize, threads: usize) -> (Vec<u64>, Vec<(u64, u64)>) {
        let nodes = 16;
        let workers: Vec<RingWorker> = (0..shards)
            .map(|_| RingWorker {
                nodes,
                shards,
                hop_ps: 50,
                log: Vec::new(),
                emitted: 0,
            })
            .collect();
        let mut exec = EpochExecutor::new(workers, SimDuration::from_ps(50), threads);
        for msg in 0..24u64 {
            let node = (msg as usize * 5) % nodes;
            exec.seed(
                region_of(node, nodes, shards),
                SimTime::from_ps(msg % 7),
                msg,
                Hop {
                    msg,
                    node,
                    remaining: 3 + (msg % 9) as u32,
                },
            );
        }
        let mut guide = RingGuide {
            barriers: vec![120, 250, 1_000_000],
            struck: Vec::new(),
            inject_msg: Some(77),
            stop_after: usize::MAX,
            nodes,
            shards,
        };
        exec.run_guided(&mut guide);
        let mut merged: Vec<(u64, u64)> = exec
            .into_workers()
            .into_iter()
            .flat_map(|w| w.log)
            .collect();
        merged.sort_unstable();
        (guide.struck, merged)
    }

    #[test]
    fn guided_run_is_invariant_and_strikes_every_barrier() {
        let reference = run_guided_ring(1, 1);
        assert_eq!(reference.0, [120, 250, 1_000_000], "all barriers struck");
        assert!(
            reference.1.iter().any(|&(_, msg)| msg == 77),
            "barrier-injected message delivered"
        );
        for shards in [2usize, 4] {
            for threads in [1usize, 4] {
                assert_eq!(
                    run_guided_ring(shards, threads),
                    reference,
                    "{shards} shards x {threads} threads diverged under guide"
                );
            }
        }
    }

    #[test]
    fn guide_stop_verdict_halts_with_events_pending() {
        let workers = vec![RingWorker {
            nodes: 4,
            shards: 1,
            hop_ps: 10,
            log: Vec::new(),
            emitted: 0,
        }];
        let mut exec = EpochExecutor::new(workers, SimDuration::from_ps(10), 1);
        exec.seed(
            0,
            SimTime::from_ps(500),
            1,
            Hop {
                msg: 1,
                node: 0,
                remaining: 2,
            },
        );
        let mut guide = RingGuide {
            barriers: vec![100],
            struck: Vec::new(),
            inject_msg: None,
            stop_after: 1,
            nodes: 4,
            shards: 1,
        };
        let report = exec.run_guided(&mut guide);
        assert_eq!(guide.struck, [100]);
        assert_eq!(report.processed, [0], "stop fires before the seeded event");
    }

    #[test]
    fn extract_events_removes_matches_and_keeps_order() {
        let workers = vec![RingWorker {
            nodes: 4,
            shards: 1,
            hop_ps: 10,
            log: Vec::new(),
            emitted: 0,
        }];
        let mut exec = EpochExecutor::new(workers, SimDuration::from_ps(10), 1);
        for msg in 0..6u64 {
            exec.seed(
                0,
                SimTime::from_ps(100 + msg),
                msg,
                Hop {
                    msg,
                    node: 0,
                    remaining: 0,
                },
            );
        }
        struct Extractor(Vec<(u64, u64)>);
        impl EpochGuide<RingWorker> for Extractor {
            fn next_barrier(&mut self) -> Option<SimTime> {
                self.0.is_empty().then_some(SimTime::from_ps(50))
            }
            fn at_barrier(
                &mut self,
                _at: SimTime,
                ctl: &mut EpochControl<'_, RingWorker>,
            ) -> BarrierVerdict {
                let taken = ctl.extract_events(0, |_, ev| ev.msg % 2 == 0);
                self.0 = taken
                    .into_iter()
                    .map(|(at, _, ev)| (at.as_ps(), ev.msg))
                    .collect();
                BarrierVerdict::Continue
            }
        }
        let mut guide = Extractor(Vec::new());
        exec.run_guided(&mut guide);
        assert_eq!(guide.0, [(100, 0), (102, 2), (104, 4)], "ascending order");
        let delivered: Vec<u64> = exec
            .into_workers()
            .remove(0)
            .log
            .iter()
            .map(|l| l.1)
            .collect();
        assert_eq!(delivered, [1, 3, 5], "survivors fire normally");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_lookahead_is_rejected() {
        let workers = vec![RingWorker {
            nodes: 4,
            shards: 1,
            hop_ps: 10,
            log: Vec::new(),
            emitted: 0,
        }];
        let _ = EpochExecutor::new(workers, SimDuration::ZERO, 1);
    }
}
