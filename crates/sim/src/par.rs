//! Minimal std-only data parallelism for the figure sweep.
//!
//! The reproduction's experiments are embarrassingly parallel: every figure
//! (and every point within a size/window/CPU-count sweep) is computed by a
//! pure function of its inputs, with its own simulator instance and its own
//! deterministically-seeded RNG. [`parallel_map`] fans such work out across
//! OS threads and returns results **in input order**, so output is
//! byte-identical to a sequential run by construction.
//!
//! The worker count is resolved by [`jobs`]: an explicit [`set_jobs`] call
//! wins, then the `ALPHASIM_JOBS` / `RAYON_NUM_THREADS` environment
//! variables, then [`std::thread::available_parallelism`].
//!
//! Intra-run parallelism (the region-sharded event queues of
//! [`crate::shard`]) has a separate knob, [`shards`], resolved from
//! [`set_shards`] or `ALPHASIM_SHARDS` and defaulting to 1: sharding is
//! opt-in per run, while job fan-out is opt-out. [`WorkerPool`] is the
//! persistent thread pool behind epoch-synchronous sharded execution —
//! unlike [`parallel_map`] it keeps its threads across rounds, so a
//! simulation taking thousands of conservative epochs pays two channel
//! transfers per shard per epoch instead of a thread spawn.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Process-wide worker-count override; 0 means "auto-detect".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide shard-count override; 0 means "resolve from environment".
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide epoch-thread override; 0 means "resolve from environment".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the region-shard count used by sharded event queues (see
/// [`shards`]). `0` restores resolution from `ALPHASIM_SHARDS`.
pub fn set_shards(n: usize) {
    SHARDS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The region-shard count for intra-run sharded simulation: [`set_shards`],
/// else `ALPHASIM_SHARDS`, else 1 (unsharded). Unlike [`jobs`] this never
/// auto-detects from the machine: artifact output is byte-identical at any
/// shard count, but the shard count is recorded in `BENCH_sweep.json`, so
/// it defaults to a fixed, machine-independent value.
pub fn shards() -> usize {
    let forced = SHARDS_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Some(n) = std::env::var("ALPHASIM_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 {
            return n;
        }
    }
    1
}

/// Force the pool-thread count used by epoch-parallel closed-loop runs
/// (see [`threads`]). `0` restores resolution from `ALPHASIM_THREADS`.
pub fn set_threads(n: usize) {
    THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The pool-thread count for epoch-parallel closed-loop simulation:
/// [`set_threads`], else `ALPHASIM_THREADS`, else 1 (inline execution).
/// Like [`shards`] — and unlike [`jobs`] — this never auto-detects:
/// thread count is purely a wall-clock knob (artifacts are byte-identical
/// at any value), but it is recorded per artifact in `BENCH_sweep.json`,
/// so the default must be fixed and machine-independent. Callers that want
/// "auto" resolve it explicitly (the CLIs map `--threads 0` to
/// [`std::thread::available_parallelism`]).
pub fn threads() -> usize {
    let forced = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Some(n) = std::env::var("ALPHASIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 {
            return n;
        }
    }
    1
}

/// Force the worker count used by [`parallel_map`]. `1` makes every
/// subsequent call run sequentially on the caller's thread; `0` restores
/// auto-detection.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`parallel_map`] will use: [`set_jobs`], else
/// `ALPHASIM_JOBS`, else `RAYON_NUM_THREADS`, else the machine's available
/// parallelism (1 if that cannot be determined).
pub fn jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    for var in ["ALPHASIM_JOBS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lock `m`, treating poisoning as a bug: a worker panic already aborts the
/// whole map via scope propagation, so a poisoned slot is unreachable.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock()
        .expect("no worker panics while holding a slot lock")
}

/// Apply `f` to every item, possibly on several threads, and return the
/// results in the same order as the inputs.
///
/// Work is handed out item-at-a-time from a shared counter, so uneven item
/// costs (e.g. a 64-CPU load test next to a 4-CPU one) balance naturally.
/// With one job, or zero/one items, `f` runs inline with no threads spawned.
/// A panic in `f` propagates to the caller.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::par::parallel_map;
///
/// let squares = parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, [1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                let item = lock_clean(slot).take().expect("item claimed once");
                let out = f(item);
                *lock_clean(&results[i]) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("no worker holds a lock after the scope joins")
                .expect("worker completed")
        })
        .collect()
}

/// A persistent pool of worker threads for epoch-synchronous sharded
/// simulation.
///
/// Each [`run_round`](Self::run_round) call hands every item to some worker
/// (round-robin), applies the pool's work function to it by `&mut`, and
/// returns the items **in input order**. Items are moved through channels,
/// so workers own their item for the duration of a round — no shared
/// mutable state, no locks on the processing path, and therefore no
/// scheduling-order nondeterminism: the result of a round is a pure
/// function of the items and the work function.
///
/// This is the engine room of the conservative epoch scheduler in
/// [`crate::shard`]: a resilience-shaped campaign takes thousands of
/// epochs, and `parallel_map`'s per-call thread spawn (~tens of µs) would
/// dwarf the per-epoch work. The pool's threads persist for its lifetime;
/// dropping the pool joins them.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::par::WorkerPool;
///
/// let pool = WorkerPool::new(2, |x: &mut u64| *x *= 10);
/// assert_eq!(pool.run_round(vec![1, 2, 3]), [10, 20, 30]);
/// assert_eq!(pool.run_round(vec![4]), [40]);
/// ```
pub struct WorkerPool<T: Send + 'static> {
    /// Per-worker submission channels; dropping them stops the workers.
    txs: Vec<mpsc::Sender<(usize, T)>>,
    /// Shared return channel carrying `(input index, item)`.
    results: mpsc::Receiver<(usize, T)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads (at least one), each applying `work` to the
    /// items it receives.
    pub fn new<F>(workers: usize, work: F) -> Self
    where
        F: Fn(&mut T) + Send + Sync + Clone + 'static,
    {
        let workers = workers.max(1);
        let (res_tx, results) = mpsc::channel();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<(usize, T)>();
            let res_tx = res_tx.clone();
            let work = work.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok((idx, mut item)) = rx.recv() {
                    work(&mut item);
                    if res_tx.send((idx, item)).is_err() {
                        break; // pool dropped mid-round; nothing to report to
                    }
                }
            }));
            txs.push(tx);
        }
        WorkerPool {
            txs,
            results,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Process every item on the pool and return them in input order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has died (a panic inside the work function
    /// kills its worker; the next round then cannot complete).
    pub fn run_round(&self, items: Vec<T>) -> Vec<T> {
        let n = items.len();
        for (i, item) in items.into_iter().enumerate() {
            self.txs[i % self.txs.len()]
                .send((i, item))
                .expect("pool worker alive");
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, item) = self
                .results
                .recv()
                .expect("every dispatched item comes back");
            out[i] = Some(item);
        }
        out.into_iter()
            .map(|o| o.expect("each index returned exactly once"))
            .collect()
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.txs.clear(); // disconnects the submission channels
        for h in self.handles.drain(..) {
            let _ = h.join(); // a worker that panicked already did its damage
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<usize> = (0..257).collect();
        let out = parallel_map(input.clone(), |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(empty, |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), [8]);
    }

    #[test]
    fn matches_sequential_map_under_forced_single_job() {
        set_jobs(1);
        let out = parallel_map(vec![3u64, 1, 4, 1, 5], |x| x * x);
        set_jobs(0);
        assert_eq!(out, [9, 1, 16, 1, 25]);
    }

    #[test]
    fn jobs_respects_override() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn shards_default_to_one_and_respect_override() {
        set_shards(0);
        assert_eq!(shards(), 1, "sharding is opt-in");
        set_shards(4);
        assert_eq!(shards(), 4);
        set_shards(0);
    }

    #[test]
    fn threads_default_to_one_and_respect_override() {
        set_threads(0);
        assert_eq!(threads(), 1, "epoch parallelism is opt-in");
        set_threads(4);
        assert_eq!(threads(), 4);
        set_threads(0);
    }

    #[test]
    fn pool_round_preserves_input_order_across_rounds() {
        let pool = WorkerPool::new(3, |x: &mut usize| *x += 1);
        let first = pool.run_round((0..64).collect());
        assert_eq!(first, (1..65).collect::<Vec<_>>());
        let second = pool.run_round(vec![100, 200]);
        assert_eq!(second, [101, 201]);
        assert!(pool.run_round(Vec::new()).is_empty());
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn pool_with_more_items_than_workers_processes_everything() {
        let pool = WorkerPool::new(2, |v: &mut Vec<u32>| v.push(7));
        let out = pool.run_round((0..17).map(|i| vec![i]).collect());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.as_slice(), [i as u32, 7]);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        set_jobs(2);
        let r = std::panic::catch_unwind(|| {
            parallel_map(vec![0, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        set_jobs(0);
        assert!(r.is_err(), "panic in a worker must reach the caller");
    }
}
