//! Minimal std-only data parallelism for the figure sweep.
//!
//! The reproduction's experiments are embarrassingly parallel: every figure
//! (and every point within a size/window/CPU-count sweep) is computed by a
//! pure function of its inputs, with its own simulator instance and its own
//! deterministically-seeded RNG. [`parallel_map`] fans such work out across
//! OS threads and returns results **in input order**, so output is
//! byte-identical to a sequential run by construction.
//!
//! The worker count is resolved by [`jobs`]: an explicit [`set_jobs`] call
//! wins, then the `ALPHASIM_JOBS` / `RAYON_NUM_THREADS` environment
//! variables, then [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; 0 means "auto-detect".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker count used by [`parallel_map`]. `1` makes every
/// subsequent call run sequentially on the caller's thread; `0` restores
/// auto-detection.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`parallel_map`] will use: [`set_jobs`], else
/// `ALPHASIM_JOBS`, else `RAYON_NUM_THREADS`, else the machine's available
/// parallelism (1 if that cannot be determined).
pub fn jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    for var in ["ALPHASIM_JOBS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lock `m`, treating poisoning as a bug: a worker panic already aborts the
/// whole map via scope propagation, so a poisoned slot is unreachable.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock()
        .expect("no worker panics while holding a slot lock")
}

/// Apply `f` to every item, possibly on several threads, and return the
/// results in the same order as the inputs.
///
/// Work is handed out item-at-a-time from a shared counter, so uneven item
/// costs (e.g. a 64-CPU load test next to a 4-CPU one) balance naturally.
/// With one job, or zero/one items, `f` runs inline with no threads spawned.
/// A panic in `f` propagates to the caller.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::par::parallel_map;
///
/// let squares = parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, [1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                let item = lock_clean(slot).take().expect("item claimed once");
                let out = f(item);
                *lock_clean(&results[i]) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("no worker holds a lock after the scope joins")
                .expect("worker completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<usize> = (0..257).collect();
        let out = parallel_map(input.clone(), |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(empty, |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), [8]);
    }

    #[test]
    fn matches_sequential_map_under_forced_single_job() {
        set_jobs(1);
        let out = parallel_map(vec![3u64, 1, 4, 1, 5], |x| x * x);
        set_jobs(0);
        assert_eq!(out, [9, 1, 16, 1, 25]);
    }

    #[test]
    fn jobs_respects_override() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        set_jobs(2);
        let r = std::panic::catch_unwind(|| {
            parallel_map(vec![0, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        set_jobs(0);
        assert!(r.is_err(), "panic in a worker must reach the caller");
    }
}
