//! Simulation time in integer picoseconds.
//!
//! The GS1280's component clocks do not divide each other evenly (CPU core at
//! 1.15 GHz, links and memory controllers at 767 MHz data rate), so all
//! latencies are kept in picoseconds and only converted to cycles/nanoseconds
//! at the reporting boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute simulation timestamp, in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ns(83.0);
/// assert_eq!(t.as_ps(), 83_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in picoseconds.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::SimDuration;
/// let d = SimDuration::from_ns(1.5) + SimDuration::from_ps(500);
/// assert_eq!(d.as_ps(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Timestamp from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// The timestamp as raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The timestamp as (floating-point) nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The timestamp as (floating-point) microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The timestamp as (floating-point) seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulation time is monotone.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// The later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Span from nanoseconds (rounded to the nearest picosecond).
    pub fn from_ns(ns: f64) -> Self {
        assert!(ns >= 0.0, "duration must be non-negative");
        SimDuration((ns * 1_000.0).round() as u64)
    }

    /// Span from microseconds (rounded to the nearest picosecond).
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1_000.0)
    }

    /// The span as raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span as (floating-point) nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span as (floating-point) seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The time to move `bytes` across a resource of `bandwidth_gbps`
    /// (gigabytes per second, where 1 GB/s = 1e9 bytes/s).
    ///
    /// # Examples
    ///
    /// ```
    /// use alphasim_kernel::SimDuration;
    /// // 64-byte cache block over a 3.1 GB/s link ≈ 20.6 ns.
    /// let d = SimDuration::transfer_time(64, 3.1);
    /// assert!((d.as_ns() - 20.645).abs() < 0.01);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_gbps` is not strictly positive.
    pub fn transfer_time(bytes: u64, bandwidth_gbps: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        // bytes / (GB/s) = ns * bytes/GB… worked in ps: bytes * 1000 / gbps.
        SimDuration(((bytes as f64) * 1_000.0 / bandwidth_gbps).round() as u64)
    }

    /// Multiply the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

/// A clock frequency, used to convert between cycles and time.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::Frequency;
/// let cpu = Frequency::from_ghz(1.15);
/// // The paper's 12-cycle L2 load-to-use = 10.4 ns.
/// assert!((cpu.cycles(12).as_ns() - 10.435).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    ghz: f64,
}

impl Frequency {
    /// A frequency in gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        Frequency { ghz }
    }

    /// A frequency in megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_ghz(mhz / 1_000.0)
    }

    /// The frequency in gigahertz.
    pub fn ghz(self) -> f64 {
        self.ghz
    }

    /// Duration of one clock period.
    pub fn period(self) -> SimDuration {
        self.cycles(1)
    }

    /// Duration of `n` clock cycles.
    pub fn cycles(self, n: u64) -> SimDuration {
        SimDuration(((n as f64) * 1_000.0 / self.ghz).round() as u64)
    }

    /// How many whole cycles fit in `d`.
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        (d.as_ps() as f64 * self.ghz / 1_000.0).floor() as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}GHz", self.ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ps(1_500);
        let d = SimDuration::from_ps(500);
        assert_eq!((t + d).as_ps(), 2_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t - d).as_ps(), 1_000);
    }

    #[test]
    fn ns_conversion_is_exact_for_integral_ns() {
        assert_eq!(SimDuration::from_ns(83.0).as_ps(), 83_000);
        assert_eq!(SimDuration::from_ns(83.0).as_ns(), 83.0);
    }

    #[test]
    fn duration_ordering_and_sum() {
        let a = SimDuration::from_ns(1.0);
        let b = SimDuration::from_ns(2.0);
        assert!(a < b);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_ns(), 5.0);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 12.3 GB/s Zbox peak: 64 bytes in ~5.2 ns.
        let d = SimDuration::transfer_time(64, 12.3);
        assert!((d.as_ns() - 5.203).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_when_reversed() {
        let early = SimTime::from_ps(10);
        let late = SimTime::from_ps(20);
        let _ = early.since(late);
    }

    #[test]
    fn frequency_cycles() {
        let f = Frequency::from_ghz(1.0);
        assert_eq!(f.cycles(7).as_ns(), 7.0);
        assert_eq!(f.cycles_in(SimDuration::from_ns(7.9)), 7);
        let links = Frequency::from_mhz(767.0);
        assert!((links.period().as_ns() - 1.304).abs() < 0.01);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::ZERO).is_empty());
        assert!(!format!("{}", Frequency::from_ghz(1.15)).is_empty());
    }

    #[test]
    fn saturating_mul_saturates() {
        let d = SimDuration::from_ps(u64::MAX / 2);
        assert_eq!(d.saturating_mul(4).as_ps(), u64::MAX);
    }
}
