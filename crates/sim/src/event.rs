//! A deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the heap. Ordering is by time, then by insertion sequence so
/// that simultaneous events pop in FIFO order — this is what makes whole-system
/// simulations reproducible independent of heap internals.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: a priority queue of `(SimTime, E)` pairs that pops
/// events in nondecreasing time order, FIFO among ties.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ps(10), 'b');
/// q.schedule(SimTime::from_ps(10), 'c');
/// q.schedule(SimTime::from_ps(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Remove and return the earliest event, advancing the simulation clock
    /// to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 40, 15] {
            q.schedule(SimTime::from_ps(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_ps(), e);
            out.push(e);
        }
        assert_eq!(out, [10, 15, 20, 30, 40]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(100);
        for i in 0..50 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ps(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), ());
        q.pop();
        q.schedule(SimTime::from_ps(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), "a");
        let (t, _) = q.pop().unwrap();
        // Schedule relative to the popped time, as handlers do.
        q.schedule(t + SimDuration::from_ps(5), "b");
        q.schedule(t + SimDuration::from_ps(3), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ps(9), ());
        q.schedule(SimTime::from_ps(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(4)));
    }
}
