//! A deterministic future-event list.

use alphasim_telemetry::global::EVENT_QUEUE_PEAK;

use crate::time::SimTime;

/// The deepest any event queue in this process has been since the last
/// [`take_peak_event_depth`] call (live queues contribute when dropped or
/// cleared). Backed by the telemetry registry's process-wide gauge
/// [`alphasim_telemetry::global::EVENT_QUEUE_PEAK`]; read by the
/// reproduction driver for `BENCH_sweep.json`.
pub fn peak_event_depth() -> u64 {
    EVENT_QUEUE_PEAK.get()
}

/// Read and reset the process-wide peak event-queue depth.
pub fn take_peak_event_depth() -> u64 {
    EVENT_QUEUE_PEAK.take()
}

/// The heap's order: the event's time and insertion sequence packed into
/// one `u128` (`time << 64 | seq`). The packing makes ordering a single
/// integer comparison — branchless and mispredict-free, which matters
/// because a 4-ary heap trades extra comparisons for fewer levels.
#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_ps()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_time(ord: u128) -> SimTime {
    SimTime::from_ps((ord >> 64) as u64)
}

/// A future-event list: a priority queue of `(SimTime, E)` pairs that pops
/// events in nondecreasing time order, FIFO among ties.
///
/// Internally this is a 4-ary implicit min-heap of `(packed key, payload)`
/// entries, where the packed key is `time << 64 | seq` and `seq` is the
/// insertion sequence number. Because that key is a total order, the pop
/// sequence is uniquely determined — independent of heap arity or sift
/// implementation — which is what makes whole-system simulations
/// reproducible. The 4-ary fan-out halves the tree depth versus a binary
/// heap (half the sift levels on the pop path), and the single-integer key
/// keeps the extra sibling comparisons branchless: a good fit for the
/// short-deadline churn of link/arrival events.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ps(10), 'b');
/// q.schedule(SimTime::from_ps(10), 'c');
/// q.schedule(SimTime::from_ps(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    /// Implicit 4-ary min-heap of `(packed key, payload)`; children of node
    /// `i` live at `4i + 1 ..= 4i + 4`.
    heap: Vec<(u128, E)>,
    next_seq: u64,
    now: SimTime,
    peak_len: usize,
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `cap` pending events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            peak_len: 0,
        }
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Drop all pending events and rewind the clock to [`SimTime::ZERO`],
    /// keeping the allocation so the queue can be reused without
    /// reallocating.
    pub fn clear(&mut self) {
        self.flush_peak();
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = pack(at, seq);
        self.heap.push((key, payload));
        // Sift up by swapping; new events rarely climb more than a level or
        // two, and the key comparison is a single branch on a u128.
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if key < self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Remove and return the earliest event, advancing the simulation clock
    /// to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        // Move the last entry into the root in one step, then sift it down.
        let (key, payload) = self.heap.swap_remove(0);
        let time = unpack_time(key);
        let len = self.heap.len();
        if len > 1 {
            // The min-child scan compares single u128 keys (conditional
            // moves, no mispredicts); the sifted entry came from the bottom,
            // so the per-level early-exit test is predictably "keep going".
            let sifted = self.heap[0].0;
            let mut i = 0;
            loop {
                let first = 4 * i + 1;
                if first >= len {
                    break;
                }
                let end = (first + 4).min(len);
                let mut best = first;
                let mut bk = self.heap[first].0;
                for child in (first + 1)..end {
                    let ck = self.heap[child].0;
                    if ck < bk {
                        best = child;
                        bk = ck;
                    }
                }
                if bk < sifted {
                    self.heap.swap(i, best);
                    i = best;
                } else {
                    break;
                }
            }
        }
        debug_assert!(time >= self.now);
        self.now = time;
        Some((time, payload))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| unpack_time(e.0))
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The most events this queue has held at once since construction (or
    /// the last [`clear`](Self::clear)).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Publish this queue's high-water mark to the process-wide telemetry
    /// gauge and reset the local counter.
    fn flush_peak(&mut self) {
        if self.peak_len > 0 {
            EVENT_QUEUE_PEAK.record_max(self.peak_len as u64);
            self.peak_len = 0;
        }
    }
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        self.flush_peak();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 40, 15] {
            q.schedule(SimTime::from_ps(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_ps(), e);
            out.push(e);
        }
        assert_eq!(out, [10, 15, 20, 30, 40]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(100);
        for i in 0..50 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ps(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), ());
        q.pop();
        q.schedule(SimTime::from_ps(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), "a");
        let (t, _) = q.pop().unwrap();
        // Schedule relative to the popped time, as handlers do.
        q.schedule(t + SimDuration::from_ps(5), "b");
        q.schedule(t + SimDuration::from_ps(3), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ps(9), ());
        q.schedule(SimTime::from_ps(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(4)));
    }

    #[test]
    fn matches_reference_order_on_pseudorandom_churn() {
        // Interleave schedules and pops and check every pop against a sorted
        // reference model keyed by (time, seq) — the order any correct heap
        // must produce.
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for _ in 0..2_000 {
            if rng() % 3 != 0 || model.is_empty() {
                let at = now + rng() % 97;
                q.schedule(SimTime::from_ps(at), seq);
                model.push((at, seq));
                seq += 1;
            } else {
                let (t, e) = q.pop().unwrap();
                let min = *model.iter().min().unwrap();
                model.retain(|&x| x != min);
                assert_eq!((t.as_ps(), e), min);
                now = t.as_ps();
            }
        }
        while let Some((t, e)) = q.pop() {
            let min = *model.iter().min().unwrap();
            model.retain(|&x| x != min);
            assert_eq!((t.as_ps(), e), min);
        }
        assert!(model.is_empty());
    }

    #[test]
    fn clear_rewinds_and_keeps_capacity() {
        let mut q = EventQueue::with_capacity(64);
        let cap_before = 64;
        for i in 0..40u64 {
            q.schedule(SimTime::from_ps(i), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peak_len(), 0);
        // Past-of-old-clock times are schedulable again after clear.
        q.schedule(SimTime::from_ps(1), 99);
        assert_eq!(q.pop().unwrap().1, 99);
        assert!(cap_before >= 40, "capacity survived the churn");
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_ps(i), ());
        }
        for _ in 0..6 {
            q.pop();
        }
        q.schedule(SimTime::from_ps(50), ());
        assert_eq!(q.peak_len(), 10);
        drop(q);
        assert!(peak_event_depth() >= 10);
        let taken = take_peak_event_depth();
        assert!(taken >= 10);
    }
}
