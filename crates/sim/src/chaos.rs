//! Seeded fault-schedule fuzzing: random [`FaultPlan`] generation, legality
//! validation, and candidate shrinking.
//!
//! The chaos engine (`alphasim_system::chaos`) drives closed-loop fault
//! campaigns under randomized schedules. This module owns the parts that are
//! pure schedule algebra and therefore belong in the kernel:
//!
//! * [`SiteCatalog`] — the fault sites of one machine (node indices and
//!   undirected links), expressed as plain `usize`s because the kernel sits
//!   below the topology crate;
//! * [`ChaosConfig`] — the distribution a plan is drawn from (fault count,
//!   strike window, burst structure, per-kind weights);
//! * [`ChaosConfig::generate`] — a seeded generator that only emits *legal*
//!   schedules (no double-kills, no partitions, repairs only after damage);
//! * [`validate_plan`] — the same legality rules as a checker, used to
//!   filter shrink candidates and to vet reproducers loaded from disk;
//! * [`shrink_candidates`] — the QuickCheck-style transformations (drop
//!   faults, merge/advance times, shrink sites) the shrinker searches when
//!   minimizing a violating schedule.
//!
//! Everything here is deterministic: the same `(config, seed, catalog)`
//! triple always yields the same plan, and shrink candidates come out in a
//! fixed order.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Maximum RDRAM channels the generator will fail at one node — the Zbox
/// models a redundant channel plus head-room, and the campaign layer panics
/// if a plan strips a node bare, so the schedule algebra stays below that.
pub const MAX_CHANNEL_FAULTS_PER_NODE: u32 = 2;

/// The fault sites of one machine: which node indices exist and which
/// undirected links connect them. Produced at the system layer (which can
/// see the topology) and consumed here for generation and validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCatalog {
    /// Every node index, ascending.
    pub nodes: Vec<usize>,
    /// Every undirected link as `(a, b)` with `a < b`, ascending.
    pub links: Vec<(usize, usize)>,
}

impl SiteCatalog {
    /// A catalog over `nodes` and `links`, normalized (sorted, deduplicated,
    /// endpoints ordered).
    pub fn new(nodes: Vec<usize>, links: Vec<(usize, usize)>) -> Self {
        let mut nodes = nodes;
        nodes.sort_unstable();
        nodes.dedup();
        let mut links: Vec<(usize, usize)> = links
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        links.sort_unstable();
        links.dedup();
        SiteCatalog { nodes, links }
    }
}

/// The fault kinds the generator can draw, in weight-array order.
pub const CHAOS_KINDS: usize = 9;

/// Per-kind draw weights for [`ChaosConfig`]; index with [`KindSlot`].
pub type KindWeights = [u32; CHAOS_KINDS];

/// Index of each fault kind in a [`KindWeights`] array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindSlot {
    /// Weight of [`FaultKind::LinkDown`].
    LinkDown = 0,
    /// Weight of [`FaultKind::LinkUp`].
    LinkUp = 1,
    /// Weight of [`FaultKind::LinkDegrade`].
    LinkDegrade = 2,
    /// Weight of [`FaultKind::FlitCorrupt`].
    FlitCorrupt = 3,
    /// Weight of [`FaultKind::NodeDrain`].
    NodeDrain = 4,
    /// Weight of [`FaultKind::NodeUndrain`].
    NodeUndrain = 5,
    /// Weight of [`FaultKind::RouterPause`].
    RouterPause = 6,
    /// Weight of [`FaultKind::ChannelDown`].
    ChannelDown = 7,
    /// Weight of [`FaultKind::ChannelUp`].
    ChannelUp = 8,
}

const ALL_SLOTS: [KindSlot; CHAOS_KINDS] = [
    KindSlot::LinkDown,
    KindSlot::LinkUp,
    KindSlot::LinkDegrade,
    KindSlot::FlitCorrupt,
    KindSlot::NodeDrain,
    KindSlot::NodeUndrain,
    KindSlot::RouterPause,
    KindSlot::ChannelDown,
    KindSlot::ChannelUp,
];

/// The distribution chaos plans are drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Fewest faults per plan.
    pub min_faults: usize,
    /// Most faults per plan.
    pub max_faults: usize,
    /// Burst starts are spread across this window (bursts may spill a little
    /// past the end; strike times stay strictly increasing).
    pub window: (SimTime, SimTime),
    /// Most faults per burst (clusters of tightly spaced strikes).
    pub burst: usize,
    /// Spacing between strikes inside one burst.
    pub burst_gap: SimDuration,
    /// Router pause lengths are drawn uniformly from this range.
    pub pause: (SimDuration, SimDuration),
    /// Relative draw weight of each fault kind ([`KindSlot`] order); a zero
    /// weight disables the kind.
    pub weights: KindWeights,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            min_faults: 3,
            max_faults: 8,
            window: (
                SimTime::ZERO + SimDuration::from_us(1.0),
                SimTime::ZERO + SimDuration::from_us(40.0),
            ),
            burst: 3,
            burst_gap: SimDuration::from_ns(50.0),
            pause: (SimDuration::from_ns(100.0), SimDuration::from_us(2.0)),
            // Damage outweighs repair so schedules stay adversarial, but
            // every kind (including the transients) stays in the mix.
            weights: [6, 4, 3, 4, 4, 3, 3, 3, 2],
        }
    }
}

/// Running legality state while generating or validating a schedule.
#[derive(Debug, Clone)]
struct SiteState<'a> {
    catalog: &'a SiteCatalog,
    /// Indices into `catalog.links` that are currently dead.
    dead: BTreeSet<usize>,
    /// Indices into `catalog.links` that are currently degraded.
    degraded: BTreeSet<usize>,
    drained: BTreeSet<usize>,
    chan_failed: BTreeMap<usize, u32>,
}

impl<'a> SiteState<'a> {
    fn new(catalog: &'a SiteCatalog) -> Self {
        SiteState {
            catalog,
            dead: BTreeSet::new(),
            degraded: BTreeSet::new(),
            drained: BTreeSet::new(),
            chan_failed: BTreeMap::new(),
        }
    }

    fn link_index(&self, a: usize, b: usize) -> Option<usize> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.catalog.links.binary_search(&key).ok()
    }

    /// Whether the live fabric stays connected with `extra_dead` also cut.
    fn connected_without(&self, extra_dead: Option<usize>) -> bool {
        if self.catalog.nodes.is_empty() {
            return true;
        }
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, &(a, b)) in self.catalog.links.iter().enumerate() {
            if self.dead.contains(&i) || extra_dead == Some(i) {
                continue;
            }
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let start = self.catalog.nodes[0];
        let mut seen = BTreeSet::new();
        let mut frontier = vec![start];
        seen.insert(start);
        while let Some(n) = frontier.pop() {
            for &m in adj.get(&n).into_iter().flatten() {
                if seen.insert(m) {
                    frontier.push(m);
                }
            }
        }
        self.catalog.nodes.iter().all(|n| seen.contains(n))
    }

    /// Apply one fault, or explain why it is illegal from this state.
    fn apply(&mut self, kind: FaultKind) -> Result<(), String> {
        match kind {
            FaultKind::LinkDown { a, b } => {
                let i = self
                    .link_index(a, b)
                    .ok_or_else(|| format!("no such link {a}<->{b}"))?;
                if self.dead.contains(&i) {
                    return Err(format!("link {a}<->{b} is already down"));
                }
                if !self.connected_without(Some(i)) {
                    return Err(format!("cutting link {a}<->{b} would partition the fabric"));
                }
                self.dead.insert(i);
                Ok(())
            }
            FaultKind::LinkUp { a, b } => {
                let i = self
                    .link_index(a, b)
                    .ok_or_else(|| format!("no such link {a}<->{b}"))?;
                if self.dead.remove(&i) || self.degraded.remove(&i) {
                    Ok(())
                } else {
                    Err(format!("link {a}<->{b} is already healthy"))
                }
            }
            FaultKind::LinkDegrade { a, b } => {
                let i = self
                    .link_index(a, b)
                    .ok_or_else(|| format!("no such link {a}<->{b}"))?;
                if self.dead.contains(&i) {
                    return Err(format!("cannot degrade dead link {a}<->{b}"));
                }
                if !self.degraded.insert(i) {
                    return Err(format!("link {a}<->{b} is already degraded"));
                }
                Ok(())
            }
            FaultKind::FlitCorrupt { from, to } => {
                let i = self
                    .link_index(from, to)
                    .ok_or_else(|| format!("no such link {from}->{to}"))?;
                if self.dead.contains(&i) {
                    return Err(format!("cannot corrupt a flit on dead link {from}->{to}"));
                }
                Ok(())
            }
            FaultKind::NodeDrain { node } => {
                if self.catalog.nodes.binary_search(&node).is_err() {
                    return Err(format!("no such node {node}"));
                }
                if !self.drained.insert(node) {
                    return Err(format!("node {node} is already drained"));
                }
                // Keep a majority of sources alive so runs stay meaningful.
                if self.drained.len() * 2 > self.catalog.nodes.len() {
                    self.drained.remove(&node);
                    return Err("more than half the nodes would be drained".to_string());
                }
                Ok(())
            }
            FaultKind::NodeUndrain { node } => {
                if self.drained.remove(&node) {
                    Ok(())
                } else {
                    Err(format!("node {node} is not drained"))
                }
            }
            FaultKind::RouterPause { node, ps } => {
                if self.catalog.nodes.binary_search(&node).is_err() {
                    return Err(format!("no such node {node}"));
                }
                if ps == 0 {
                    return Err("zero-length router pause".to_string());
                }
                Ok(())
            }
            FaultKind::ChannelDown { node } => {
                if self.catalog.nodes.binary_search(&node).is_err() {
                    return Err(format!("no such node {node}"));
                }
                let n = self.chan_failed.entry(node).or_insert(0);
                if *n >= MAX_CHANNEL_FAULTS_PER_NODE {
                    return Err(format!("node {node} already lost {n} RDRAM channels"));
                }
                *n += 1;
                Ok(())
            }
            FaultKind::ChannelUp { node } => match self.chan_failed.get_mut(&node) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    Ok(())
                }
                _ => Err(format!("node {node} has no failed RDRAM channel")),
            },
        }
    }

    /// Candidate sites for `slot` from this state (empty = kind illegal now).
    fn candidates(&self, slot: KindSlot) -> Vec<FaultKind> {
        match slot {
            KindSlot::LinkDown => self
                .catalog
                .links
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    !self.dead.contains(i)
                        && !self.degraded.contains(i)
                        && self.connected_without(Some(*i))
                })
                .map(|(_, &(a, b))| FaultKind::LinkDown { a, b })
                .collect(),
            KindSlot::LinkUp => self
                .catalog
                .links
                .iter()
                .enumerate()
                .filter(|(i, _)| self.dead.contains(i) || self.degraded.contains(i))
                .map(|(_, &(a, b))| FaultKind::LinkUp { a, b })
                .collect(),
            KindSlot::LinkDegrade => self
                .catalog
                .links
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.dead.contains(i) && !self.degraded.contains(i))
                .map(|(_, &(a, b))| FaultKind::LinkDegrade { a, b })
                .collect(),
            KindSlot::FlitCorrupt => self
                .catalog
                .links
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.dead.contains(i))
                .flat_map(|(_, &(a, b))| {
                    [
                        FaultKind::FlitCorrupt { from: a, to: b },
                        FaultKind::FlitCorrupt { from: b, to: a },
                    ]
                })
                .collect(),
            KindSlot::NodeDrain => {
                if (self.drained.len() + 1) * 2 > self.catalog.nodes.len() {
                    return Vec::new();
                }
                self.catalog
                    .nodes
                    .iter()
                    .filter(|n| !self.drained.contains(n))
                    .map(|&node| FaultKind::NodeDrain { node })
                    .collect()
            }
            KindSlot::NodeUndrain => self
                .drained
                .iter()
                .map(|&node| FaultKind::NodeUndrain { node })
                .collect(),
            KindSlot::RouterPause => self
                .catalog
                .nodes
                .iter()
                .map(|&node| FaultKind::RouterPause { node, ps: 1 })
                .collect(),
            KindSlot::ChannelDown => self
                .catalog
                .nodes
                .iter()
                .filter(|n| {
                    self.chan_failed.get(n).copied().unwrap_or(0) < MAX_CHANNEL_FAULTS_PER_NODE
                })
                .map(|&node| FaultKind::ChannelDown { node })
                .collect(),
            KindSlot::ChannelUp => self
                .chan_failed
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(&node, _)| FaultKind::ChannelUp { node })
                .collect(),
        }
    }
}

impl ChaosConfig {
    /// Draw one legal schedule from this distribution.
    ///
    /// The same `(self, seed, catalog)` always yields the same plan. Strike
    /// times are strictly increasing (bursts use `burst_gap` spacing), and
    /// every emitted fault is legal in sequence: links only die while the
    /// fabric stays connected, repairs only follow damage, at most
    /// [`MAX_CHANNEL_FAULTS_PER_NODE`] channel losses accumulate per node.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or the config window/bounds are
    /// inverted.
    pub fn generate(&self, seed: u64, catalog: &SiteCatalog) -> FaultPlan {
        assert!(!catalog.nodes.is_empty(), "catalog has no nodes");
        assert!(self.min_faults <= self.max_faults, "inverted fault bounds");
        assert!(self.window.0 < self.window.1, "inverted strike window");
        let mut rng = DetRng::seeded(seed ^ 0xC4A0_5EED).split(seed);
        let count = self.min_faults + rng.index(self.max_faults - self.min_faults + 1);
        let span_ps = self.window.1.since(self.window.0).as_ps();
        let mut st = SiteState::new(catalog);
        let mut plan = FaultPlan::new();
        let mut t = self.window.0;
        // A skewed config can exhaust its legal moves early (e.g. all weight
        // on LinkDown once the fabric is one cut from partition); give up
        // after enough consecutive dry draws rather than spin.
        let mut dry_draws = 0usize;
        while plan.len() < count && dry_draws < 16 {
            // Jump forward to the next burst start...
            let max_gap = (span_ps / (count as u64 + 1)).max(1) as usize;
            t += SimDuration::from_ps(1 + rng.index(max_gap) as u64);
            // ...then strike up to `burst` times at tight spacing.
            let burst = (1 + rng.index(self.burst.max(1))).min(count - plan.len());
            for _ in 0..burst {
                match self.draw_kind(&mut rng, &mut st) {
                    Some(kind) => {
                        dry_draws = 0;
                        plan.push(t, kind);
                    }
                    None => dry_draws += 1,
                }
                t += self.burst_gap.max(SimDuration::from_ps(1));
            }
        }
        plan
    }

    /// Pick one legal fault by weighted kind draw, or `None` if nothing is
    /// currently legal (e.g. all weights on repairs with no damage yet).
    fn draw_kind(&self, rng: &mut DetRng, st: &mut SiteState<'_>) -> Option<FaultKind> {
        let mut pool: Vec<(KindSlot, Vec<FaultKind>)> = Vec::new();
        let mut total: u64 = 0;
        for slot in ALL_SLOTS {
            let w = self.weights[slot as usize];
            if w == 0 {
                continue;
            }
            let sites = st.candidates(slot);
            if sites.is_empty() {
                continue;
            }
            total += u64::from(w);
            pool.push((slot, sites));
        }
        if total == 0 {
            return None;
        }
        let mut draw = rng.index(total as usize) as u64;
        for (slot, sites) in pool {
            let w = u64::from(self.weights[slot as usize]);
            if draw >= w {
                draw -= w;
                continue;
            }
            let mut kind = sites[rng.index(sites.len())];
            if let FaultKind::RouterPause { node, .. } = kind {
                let lo = self.pause.0.as_ps().max(1);
                let hi = self.pause.1.as_ps().max(lo + 1);
                let ps = lo + rng.index((hi - lo) as usize) as u64;
                kind = FaultKind::RouterPause { node, ps };
            }
            // Candidates are pre-filtered, so this only rejects the rare
            // stateful interaction (e.g. drain quota raced by the draw).
            return match st.apply(kind) {
                Ok(()) => Some(kind),
                Err(_) => None,
            };
        }
        None
    }
}

/// Check a plan against the same legality rules the generator obeys.
///
/// Used to filter shrink candidates and to vet reproducers loaded from
/// disk before they are replayed into a live campaign (where an illegal
/// schedule would panic the simulator instead of reporting).
pub fn validate_plan(catalog: &SiteCatalog, plan: &FaultPlan) -> Result<(), String> {
    let mut st = SiteState::new(catalog);
    let mut last: Option<SimTime> = None;
    for e in plan.events() {
        if let Some(prev) = last {
            if e.at < prev {
                return Err("plan is not time-sorted".to_string());
            }
        }
        last = Some(e.at);
        st.apply(e.kind)
            .map_err(|why| format!("at {}: {}", e.at, why))?;
    }
    Ok(())
}

/// The shrink transformations, in the order the shrinker tries them:
///
/// 1. drop one fault (later faults first — repairs depend on earlier damage,
///    so dropping from the tail is most likely to stay legal);
/// 2. keep only the first or second half;
/// 3. advance/merge times onto a compressed 100 ns grid from the first
///    strike;
/// 4. shrink each fault's site to the catalog's smallest legal site.
///
/// Only legal candidates (per [`validate_plan`]) that differ from `plan`
/// are returned, in deterministic order.
pub fn shrink_candidates(plan: &FaultPlan, catalog: &SiteCatalog) -> Vec<FaultPlan> {
    let evs = plan.events();
    let mut out: Vec<FaultPlan> = Vec::new();
    let push_if_valid = |cand: Vec<FaultEvent>, out: &mut Vec<FaultPlan>| {
        let cand = FaultPlan::from_events(cand);
        if cand != *plan && validate_plan(catalog, &cand).is_ok() && !out.contains(&cand) {
            out.push(cand);
        }
    };
    // 1. Drop one fault.
    for i in (0..evs.len()).rev() {
        let mut cand = evs.to_vec();
        cand.remove(i);
        push_if_valid(cand, &mut out);
    }
    // 2. Halves.
    if evs.len() >= 2 {
        let mid = evs.len() / 2;
        push_if_valid(evs[..mid].to_vec(), &mut out);
        push_if_valid(evs[mid..].to_vec(), &mut out);
    }
    // 3. Compress times onto a 100 ns grid starting at the first strike.
    if let Some(first) = evs.first() {
        let grid = SimDuration::from_ns(100.0);
        let cand: Vec<FaultEvent> = evs
            .iter()
            .enumerate()
            .map(|(i, e)| FaultEvent {
                at: first.at + grid.saturating_mul(i as u64),
                kind: e.kind,
            })
            .collect();
        push_if_valid(cand, &mut out);
    }
    // 4. Shrink sites toward the catalog's smallest.
    for i in 0..evs.len() {
        let small = smallest_site(evs[i].kind, catalog);
        if small != evs[i].kind {
            let mut cand = evs.to_vec();
            cand[i] = FaultEvent {
                at: cand[i].at,
                kind: small,
            };
            push_if_valid(cand, &mut out);
        }
    }
    out
}

/// The same fault kind moved to the catalog's smallest site (first node /
/// first link). Pause lengths also shrink to 1 ns.
fn smallest_site(kind: FaultKind, catalog: &SiteCatalog) -> FaultKind {
    let first_link = catalog.links.first().copied();
    let first_node = catalog.nodes.first().copied();
    match (kind, first_link, first_node) {
        (FaultKind::LinkDown { .. }, Some((a, b)), _) => FaultKind::LinkDown { a, b },
        (FaultKind::LinkUp { .. }, Some((a, b)), _) => FaultKind::LinkUp { a, b },
        (FaultKind::LinkDegrade { .. }, Some((a, b)), _) => FaultKind::LinkDegrade { a, b },
        (FaultKind::FlitCorrupt { .. }, Some((a, b)), _) => {
            FaultKind::FlitCorrupt { from: a, to: b }
        }
        (FaultKind::NodeDrain { .. }, _, Some(node)) => FaultKind::NodeDrain { node },
        (FaultKind::NodeUndrain { .. }, _, Some(node)) => FaultKind::NodeUndrain { node },
        (FaultKind::RouterPause { .. }, _, Some(node)) => FaultKind::RouterPause {
            node,
            ps: SimDuration::from_ns(1.0).as_ps(),
        },
        (FaultKind::ChannelDown { .. }, _, Some(node)) => FaultKind::ChannelDown { node },
        (FaultKind::ChannelUp { .. }, _, Some(node)) => FaultKind::ChannelUp { node },
        (other, _, _) => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-ring plus one chord: small enough to reason about, cyclic enough
    /// that single cuts never partition.
    fn ring4() -> SiteCatalog {
        SiteCatalog::new(
            vec![0, 1, 2, 3],
            vec![(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)],
        )
    }

    #[test]
    fn generation_is_deterministic_and_legal() {
        let cfg = ChaosConfig::default();
        let cat = ring4();
        for seed in 0..40u64 {
            let a = cfg.generate(seed, &cat);
            let b = cfg.generate(seed, &cat);
            assert_eq!(a, b, "seed {seed} must regenerate identically");
            assert!(!a.is_empty(), "seed {seed} produced an empty plan");
            assert!(a.len() <= cfg.max_faults);
            validate_plan(&cat, &a).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for w in a.events().windows(2) {
                assert!(w[0].at <= w[1].at);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ChaosConfig::default();
        let cat = ring4();
        let distinct: BTreeSet<String> = (0..20u64)
            .map(|s| format!("{:?}", cfg.generate(s, &cat)))
            .collect();
        assert!(distinct.len() > 15, "seeds should explore the space");
    }

    #[test]
    fn all_kinds_eventually_appear() {
        let cfg = ChaosConfig {
            min_faults: 8,
            max_faults: 12,
            ..ChaosConfig::default()
        };
        let cat = ring4();
        fn slot_of(kind: &FaultKind) -> usize {
            match kind {
                FaultKind::LinkDown { .. } => 0,
                FaultKind::LinkUp { .. } => 1,
                FaultKind::LinkDegrade { .. } => 2,
                FaultKind::FlitCorrupt { .. } => 3,
                FaultKind::NodeDrain { .. } => 4,
                FaultKind::NodeUndrain { .. } => 5,
                FaultKind::RouterPause { .. } => 6,
                FaultKind::ChannelDown { .. } => 7,
                FaultKind::ChannelUp { .. } => 8,
            }
        }
        let mut seen = BTreeSet::new();
        for seed in 0..200u64 {
            for e in cfg.generate(seed, &cat).events() {
                seen.insert(slot_of(&e.kind));
            }
        }
        assert_eq!(seen.len(), CHAOS_KINDS, "every fault kind must be drawn");
    }

    #[test]
    fn validator_rejects_illegal_sequences() {
        let cat = ring4();
        let t0 = SimTime::ZERO + SimDuration::from_ns(10.0);
        // Double-kill.
        let mut plan = FaultPlan::new();
        plan.push(t0, FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(
            t0 + SimDuration::from_ns(1.0),
            FaultKind::LinkDown { a: 0, b: 1 },
        );
        assert!(validate_plan(&cat, &plan).is_err());
        // Repair before damage.
        let mut plan = FaultPlan::new();
        plan.push(t0, FaultKind::ChannelUp { node: 0 });
        assert!(validate_plan(&cat, &plan).is_err());
        // Unknown site.
        let mut plan = FaultPlan::new();
        plan.push(t0, FaultKind::NodeDrain { node: 99 });
        assert!(validate_plan(&cat, &plan).is_err());
        // Partition: cut the chord and three ring links so node 3 isolates.
        let mut plan = FaultPlan::new();
        for (i, (a, b)) in [(0, 2), (2, 3), (0, 3)].into_iter().enumerate() {
            plan.push(
                t0 + SimDuration::from_ns(i as f64),
                FaultKind::LinkDown { a, b },
            );
        }
        assert!(validate_plan(&cat, &plan).is_err());
    }

    #[test]
    fn generator_never_partitions() {
        // Weights forced entirely onto LinkDown: the generator must stop
        // cutting before the fabric separates.
        let cfg = ChaosConfig {
            min_faults: 10,
            max_faults: 10,
            weights: [1, 0, 0, 0, 0, 0, 0, 0, 0],
            ..ChaosConfig::default()
        };
        let cat = ring4();
        for seed in 0..20u64 {
            let plan = cfg.generate(seed, &cat);
            validate_plan(&cat, &plan).expect("generated plan must stay connected");
            // 5 links, spanning tree needs 3, so at most 2 can die.
            assert!(plan.len() <= 2, "seed {seed} cut too deep: {plan:?}");
        }
    }

    #[test]
    fn shrink_candidates_are_legal_smaller_or_simpler() {
        let cfg = ChaosConfig::default();
        let cat = ring4();
        let plan = cfg.generate(11, &cat);
        let cands = shrink_candidates(&plan, &cat);
        assert!(!cands.is_empty(), "a non-trivial plan must have candidates");
        for cand in &cands {
            assert_ne!(cand, &plan);
            assert!(cand.len() <= plan.len());
            validate_plan(&cat, cand).expect("candidates must be legal");
        }
    }

    #[test]
    fn shrinking_reaches_a_fixed_point() {
        let cfg = ChaosConfig::default();
        let cat = ring4();
        let mut plan = cfg.generate(3, &cat);
        // Always adopt the first candidate: must terminate (no cycles).
        for _ in 0..200 {
            let cands = shrink_candidates(&plan, &cat);
            match cands.into_iter().next() {
                Some(next) => plan = next,
                None => return,
            }
        }
        panic!("shrinker cycled without reaching a fixed point");
    }
}
