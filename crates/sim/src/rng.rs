//! Deterministic random numbers for reproducible experiments.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable random-number source.
///
/// Every stochastic workload in the reproduction (GUPS tables, load-test
/// destinations, SPEC phase jitter) draws from a `DetRng` constructed from an
/// explicit seed, so experiment output is reproducible bit-for-bit.
///
/// # Examples
///
/// ```
/// use alphasim_kernel::DetRng;
/// let mut a = DetRng::seeded(42);
/// let mut b = DetRng::seeded(42);
/// assert_eq!(a.index(1000), b.index(1000));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Split off an independent child stream; `salt` distinguishes siblings.
    ///
    /// Used to give each simulated CPU its own stream so that adding CPUs
    /// does not perturb the draws of existing ones.
    pub fn split(&self, salt: u64) -> Self {
        // Derive the child seed from fresh draws of a clone so `self` is
        // unperturbed and children with different salts differ.
        let mut probe = self.clone();
        let base = probe.inner.next_u64();
        DetRng::seeded(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniformly random index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw from an empty range");
        self.inner.gen_range(0..n)
    }

    /// A uniformly random index in `0..n`, excluding `excluded`.
    ///
    /// Used by the paper's load test, where each CPU sends read requests to a
    /// randomly selected *other* CPU.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `excluded >= n`.
    pub fn index_excluding(&mut self, n: usize, excluded: usize) -> usize {
        assert!(n >= 2, "need at least two choices");
        assert!(excluded < n, "excluded index out of range");
        let draw = self.inner.gen_range(0..n - 1);
        if draw >= excluded {
            draw + 1
        } else {
            draw
        }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniformly random 64-bit value.
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(7);
        let mut b = DetRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_children_are_independent_and_deterministic() {
        let parent = DetRng::seeded(99);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let mut c1_again = parent.split(0);
        assert_eq!(c1.bits(), c1_again.bits());
        assert_ne!(c1.bits(), c2.bits());
    }

    #[test]
    fn index_excluding_never_returns_excluded() {
        let mut rng = DetRng::seeded(3);
        for _ in 0..10_000 {
            let got = rng.index_excluding(16, 5);
            assert_ne!(got, 5);
            assert!(got < 16);
        }
    }

    #[test]
    fn index_excluding_covers_all_other_values() {
        let mut rng = DetRng::seeded(4);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.index_excluding(8, 3)] = true;
        }
        for (i, &s) in seen.iter().enumerate() {
            assert_eq!(s, i != 3, "index {i}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seeded(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seeded(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
