//! Property tests for the simulation kernel.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_kernel::stats::RunningStats;
use alphasim_kernel::{DetRng, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, whatever the
    /// insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Simultaneous events preserve insertion order (stable FIFO).
    #[test]
    fn simultaneous_events_fifo(groups in prop::collection::vec((0u64..100, 1usize..5), 1..40)) {
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.schedule(SimTime::from_ps(t), seq);
                seq += 1;
            }
        }
        // Among equal timestamps, payload sequence must be increasing.
        let mut seen: Vec<(u64, usize)> = Vec::new();
        while let Some((t, s)) = q.pop() {
            seen.push((t.as_ps(), s));
        }
        for w in seen.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// Merging split stat streams equals accumulating the whole stream.
    #[test]
    fn running_stats_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                                       split in 0usize..100) {
        let split = split % xs.len().max(1);
        let mut whole = RunningStats::new();
        for &x in &xs { whole.record(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
    }

    /// Durations compose linearly with transfer sizes.
    #[test]
    fn transfer_time_is_linear(bytes in 1u64..1_000_000, gbps in 0.1f64..100.0) {
        let one = SimDuration::transfer_time(bytes, gbps);
        let two = SimDuration::transfer_time(2 * bytes, gbps);
        let ratio = two.as_ps() as f64 / one.as_ps().max(1) as f64;
        prop_assert!((ratio - 2.0).abs() < 0.01, "ratio {}", ratio);
    }

    /// index_excluding covers exactly the non-excluded range.
    #[test]
    fn rng_exclusion_is_sound(seed in 0u64..10_000, n in 2usize..64, ex in 0usize..64) {
        let ex = ex % n;
        let mut rng = DetRng::seeded(seed);
        for _ in 0..64 {
            let v = rng.index_excluding(n, ex);
            prop_assert!(v < n && v != ex);
        }
    }
}
