//! Calibrated constants for each reproduced machine.
//!
//! Every constant here is anchored to a number the paper publishes; the doc
//! comment on each constructor cites the figure it was fitted against.
//! EXPERIMENTS.md tabulates how well the composed model reproduces the
//! original measurements.

use alphasim_cache::HierarchyConfig;
use alphasim_kernel::{Frequency, SimDuration};
use alphasim_mem::ZboxConfig;
use alphasim_net::LinkTiming;
use serde::{Deserialize, Serialize};

/// The identity of a reproduced machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// HP AlphaServer GS1280 (Alpha 21364, torus).
    Gs1280,
    /// HP AlphaServer GS320 (Alpha 21264, hierarchical switch).
    Gs320,
    /// HP AlphaServer ES45 (Alpha 21264, 4-way shared bus).
    Es45,
    /// HP AlphaServer SC45 (ES45 boxes + Quadrics-style cluster).
    Sc45,
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MachineKind::Gs1280 => "GS1280/1.15GHz",
            MachineKind::Gs320 => "GS320/1.22GHz",
            MachineKind::Es45 => "ES45/1.25GHz",
            MachineKind::Sc45 => "SC45/1.25GHz",
        };
        f.write_str(s)
    }
}

/// The calibration bundle of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Which machine this calibrates.
    pub kind: MachineKind,
    /// CPU core clock.
    pub clock: Frequency,
    /// Fixed front-end cost of a memory access: L1+L2 miss detection and
    /// controller entry, paid by every access that reaches memory.
    pub local_fixed: SimDuration,
    /// Extra fixed cost of a *remote* transaction: directory lookup and
    /// forwarding decision at the home node.
    pub remote_fixed: SimDuration,
    /// Cost of serving a block out of the owner's cache on a read-dirty,
    /// replacing the memory access.
    pub dirty_serve: SimDuration,
    /// Extra protocol penalty of a read-dirty (ordering-point traversals);
    /// ~0 on the GS1280, large on the GS320, whose hierarchical protocol
    /// makes dirty reads disproportionately expensive (Fig. 12's 6.6×).
    pub dirty_penalty: SimDuration,
    /// Fabric timing.
    pub timing: LinkTiming,
    /// Per-memory-site controller configuration (per CPU on GS1280, per
    /// QBB on GS320, per box on ES45).
    pub zbox: ZboxConfig,
    /// Cache hierarchy of one CPU.
    pub hierarchy: HierarchyConfig,
    /// Outstanding off-chip misses one CPU can sustain.
    pub mshrs: usize,
    /// Sustained (not peak) memory bandwidth per memory site, GB/s, after
    /// read/write turnaround, refresh and bank-conflict losses.
    pub sustained_mem_gbps: f64,
    /// CPUs sharing one memory site (1, or 4 for QBB/box machines).
    pub cpus_per_mem_site: usize,
    /// I/O bandwidth per I/O site, GB/s (one 3.1 GB/s full-duplex port per
    /// EV7; a shared PCI bridge per box on the older machines).
    pub io_gbps_per_site: f64,
}

impl Calibration {
    /// GS1280 (Alpha 21364, 1.15 GHz).
    ///
    /// * local open-page load-to-use = `local_fixed` 38 ns + Zbox 45 ns
    ///   = 83 ns (Figs. 5, 13); closed-page = 38 + 92 = 130 ns (Fig. 5);
    /// * remote reads add 21 ns of directory overhead plus the Fig. 13 hop
    ///   costs carried by [`LinkTiming::ev7_torus`];
    /// * 16 victim buffers (§2) give 16 × 64 B / 83 ns ≈ 12.3 GB/s of
    ///   latency-covered demand — exactly the Zbox peak — of which ~48 %
    ///   is sustainable, reproducing Fig. 7's ~4.4 GB/s counted triad.
    pub fn gs1280() -> Self {
        Calibration {
            kind: MachineKind::Gs1280,
            clock: Frequency::from_ghz(1.15),
            local_fixed: SimDuration::from_ns(38.0),
            remote_fixed: SimDuration::from_ns(21.0),
            dirty_serve: SimDuration::from_ns(25.0),
            dirty_penalty: SimDuration::from_ns(0.0),
            timing: LinkTiming::ev7_torus(),
            zbox: ZboxConfig::ev7(),
            hierarchy: HierarchyConfig::ev7(),
            mshrs: 16,
            sustained_mem_gbps: 5.9,
            cpus_per_mem_site: 1,
            io_gbps_per_site: 3.1,
        }
    }

    /// GS320 (Alpha 21264, 1.22 GHz).
    ///
    /// * local read ≈ 2 × 75 ns switch hops + 180 ns SDRAM = 330 ns and
    ///   remote read-clean ≈ 760 ns (Fig. 12, Fig. 4's 320 ns plateau);
    /// * the dirty penalty reproduces Fig. 12's observation that GS1280's
    ///   read-dirty advantage (6.6×) exceeds its read-clean advantage (4×);
    /// * 4 CPUs share ~1.5 GB/s sustained per QBB, reproducing Fig. 7's
    ///   sub-linear 0.6 → 1.15 GB/s counted triad scaling.
    pub fn gs320() -> Self {
        Calibration {
            kind: MachineKind::Gs320,
            clock: Frequency::from_ghz(1.22),
            local_fixed: SimDuration::from_ns(0.0),
            remote_fixed: SimDuration::from_ns(0.0),
            dirty_serve: SimDuration::from_ns(60.0),
            dirty_penalty: SimDuration::from_ns(600.0),
            timing: LinkTiming::gs320_switch(),
            zbox: ZboxConfig::gs320_qbb(),
            hierarchy: HierarchyConfig::ev68(),
            mshrs: 4,
            sustained_mem_gbps: 1.5,
            cpus_per_mem_site: 4,
            io_gbps_per_site: 1.55,
        }
    }

    /// ES45 (Alpha 21264, 1.25 GHz, 4-way box).
    ///
    /// * ~185 ns local read (Fig. 4's ES45 memory plateau);
    /// * 8 outstanding misses × 64 B / 185 ns ≈ 2.8 GB/s demand against a
    ///   ~3.7 GB/s sustained crossbar, giving Fig. 7's 2.1 → 2.8 GB/s
    ///   counted triad from 1 to 4 CPUs.
    pub fn es45() -> Self {
        Calibration {
            kind: MachineKind::Es45,
            clock: Frequency::from_ghz(1.25),
            local_fixed: SimDuration::from_ns(65.0),
            remote_fixed: SimDuration::from_ns(0.0),
            dirty_serve: SimDuration::from_ns(50.0),
            dirty_penalty: SimDuration::from_ns(150.0),
            timing: LinkTiming::sc45_cluster(),
            zbox: ZboxConfig::es45(),
            hierarchy: HierarchyConfig::ev68(),
            mshrs: 8,
            sustained_mem_gbps: 3.7,
            cpus_per_mem_site: 4,
            io_gbps_per_site: 1.0,
        }
    }

    /// SC45: ES45 boxes behind a Quadrics-style cluster fabric. Identical
    /// per-box memory behaviour; cross-box traffic pays the cluster's
    /// microsecond-scale messaging costs ([`LinkTiming::sc45_cluster`]).
    pub fn sc45() -> Self {
        Calibration {
            kind: MachineKind::Sc45,
            ..Self::es45()
        }
    }

    /// The machine's local open-page load-to-use latency (front end +
    /// controller DRAM access).
    pub fn local_open_latency(&self) -> SimDuration {
        self.local_fixed + self.zbox.open_page_latency
    }

    /// The machine's local closed-page load-to-use latency.
    pub fn local_closed_latency(&self) -> SimDuration {
        self.local_fixed + self.zbox.closed_page_latency
    }

    /// Latency-covered memory demand of one CPU (Little's law over the
    /// MSHRs), in GB/s of line traffic.
    pub fn mlp_demand_gbps(&self) -> f64 {
        let line = self.hierarchy.l2.line_bytes() as f64;
        self.mshrs as f64 * line / self.local_open_latency().as_secs() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gs1280_local_latencies_match_paper() {
        let c = Calibration::gs1280();
        assert_eq!(c.local_open_latency().as_ns(), 83.0); // Figs. 5, 13
        assert_eq!(c.local_closed_latency().as_ns(), 130.0); // Fig. 5
    }

    #[test]
    fn gs320_local_latency_matches_fig4_plateau() {
        let c = Calibration::gs320();
        // 330 ns composed as 2x75 switch hops + 180 SDRAM happens at the
        // machine level; the calibration's own share is the SDRAM part.
        assert_eq!(c.zbox.open_page_latency.as_ns(), 180.0);
        assert!(c.local_open_latency().as_ns() < 330.0);
    }

    #[test]
    fn mlp_demand_matches_zbox_peak_on_gs1280() {
        // The EV7's 16 victim buffers cover its own local latency: demand
        // equals the 12.3 GB/s controller peak (paper §2's balance).
        let c = Calibration::gs1280();
        assert!((c.mlp_demand_gbps() - 12.337).abs() < 0.05);
    }

    #[test]
    fn machine_ranking_local_latency() {
        let g1280 = Calibration::gs1280().local_open_latency();
        let es45 = Calibration::es45().local_open_latency();
        let gs320 = Calibration::gs320().local_open_latency();
        assert!(g1280 < es45);
        assert!(es45 < gs320 + SimDuration::from_ns(150.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(MachineKind::Gs1280.to_string(), "GS1280/1.15GHz");
        assert_eq!(MachineKind::Sc45.to_string(), "SC45/1.25GHz");
    }

    #[test]
    fn io_bandwidth_ratio_is_large() {
        // Fig. 28: ~8x I/O bandwidth advantage at 32P.
        let ratio = (32.0 * Calibration::gs1280().io_gbps_per_site)
            / (8.0 * Calibration::gs320().io_gbps_per_site);
        assert!(ratio > 6.0 && ratio < 50.0);
    }
}
