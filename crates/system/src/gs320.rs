//! The previous-generation AlphaServer GS320 machine model.

use alphasim_kernel::SimDuration;
use alphasim_net::NetworkSim;
use alphasim_topology::{NodeId, QbbTree};

use crate::calibration::Calibration;
use crate::path;

/// A configured GS320: up to 32 Alpha 21264 CPUs in 4-CPU Quad Building
/// Blocks behind a hierarchical switch (paper §2, ref.\[2\]).
///
/// Memory lives *per QBB*: any CPU's access — even to its "own" memory —
/// crosses the QBB's local switch, and all four CPUs of a QBB contend for
/// the same controllers. This is why Fig. 7 shows sub-linear STREAM scaling
/// from 1 to 4 CPUs, and why Fig. 12 shows only two latency levels.
///
/// # Examples
///
/// ```
/// use alphasim_system::Gs320;
/// use alphasim_topology::NodeId;
///
/// let m = Gs320::new(16);
/// // Two latency levels: in-QBB ~330 ns, cross-QBB ~760 ns (Fig. 12).
/// let local = m.read_clean(NodeId::new(0), NodeId::new(1));
/// let remote = m.read_clean(NodeId::new(0), NodeId::new(4));
/// assert!(remote > local + alphasim_kernel::SimDuration::from_ns(300.0));
/// ```
#[derive(Debug, Clone)]
pub struct Gs320 {
    calib: Calibration,
    topo: QbbTree,
    one_way: Vec<Vec<SimDuration>>,
}

impl Gs320 {
    /// A GS320 with `cpus` processors (4..=32, multiples of 4).
    ///
    /// # Panics
    ///
    /// Panics for unsupported CPU counts.
    pub fn new(cpus: usize) -> Self {
        let calib = Calibration::gs320();
        let topo = QbbTree::new(cpus);
        let one_way = path::all_pairs(&topo, &calib.timing);
        Gs320 {
            calib,
            topo,
            one_way,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.topo.cpus()
    }

    /// The machine's calibration bundle.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// The switch topology.
    pub fn topology(&self) -> &QbbTree {
        &self.topo
    }

    /// A fresh network simulator over the hierarchical switch fabric.
    pub fn network(&self) -> NetworkSim<QbbTree> {
        NetworkSim::new(self.topo.clone(), self.calib.timing)
    }

    /// The node where `cpu`'s memory physically lives: its QBB's local
    /// switch.
    pub fn memory_site(&self, cpu: NodeId) -> NodeId {
        self.topo.local_switch(self.topo.qbb_of(cpu))
    }

    /// One-way fabric latency between two nodes (CPUs or switches).
    pub fn one_way(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.one_way[from.index()][to.index()]
    }

    /// Read-clean latency: `requester` loads a line homed in `home`'s QBB
    /// memory. In-QBB ≈ 330 ns, cross-QBB ≈ 760 ns (Fig. 12).
    pub fn read_clean(&self, requester: NodeId, home: NodeId) -> SimDuration {
        let site = self.memory_site(home);
        self.calib.local_fixed
            + self.calib.remote_fixed
            + self.one_way(requester, site)
            + self.one_way(site, requester)
            + self.calib.zbox.open_page_latency
    }

    /// Local memory latency (within the requester's own QBB).
    pub fn local_latency(&self, page_hit: bool) -> SimDuration {
        let dram = if page_hit {
            self.calib.zbox.open_page_latency
        } else {
            self.calib.zbox.closed_page_latency
        };
        let site = self.memory_site(NodeId::new(0));
        self.calib.local_fixed
            + self.one_way(NodeId::new(0), site)
            + self.one_way(site, NodeId::new(0))
            + dram
    }

    /// Read-dirty latency: the line is dirty in `owner`'s off-chip cache.
    /// The GS320's hierarchical protocol resolves the request through the
    /// home directory and its ordering points, which is why the paper's
    /// Fig. 12 shows a 6.6× GS1280 advantage here against 4× for clean
    /// reads.
    pub fn read_dirty(&self, requester: NodeId, home: NodeId, owner: NodeId) -> SimDuration {
        let site = self.memory_site(home);
        self.calib.dirty_penalty
            + self.calib.dirty_serve
            + self.one_way(requester, site)
            + self.one_way(site, owner)
            + self.one_way(owner, requester)
    }

    /// Mean read-clean latency from node 0 to every CPU (Fig. 12's average
    /// bar).
    pub fn average_latency_from0(&self) -> SimDuration {
        let n = self.cpus();
        let total: SimDuration = (0..n)
            .map(|k| self.read_clean(NodeId::new(0), NodeId::new(k)))
            .sum();
        total / n as u64
    }

    /// Mean read-clean latency over all ordered CPU pairs (Fig. 14).
    pub fn average_latency_all_pairs(&self) -> SimDuration {
        let n = self.cpus();
        let total: SimDuration = (0..n)
            .flat_map(|a| (0..n).map(move |k| (a, k)))
            .map(|(a, k)| self.read_clean(NodeId::new(a), NodeId::new(k)))
            .sum();
        total / (n * n) as u64
    }

    /// Mean read-dirty latency over distinct (requester, home, owner)
    /// triples.
    pub fn average_dirty_latency(&self) -> SimDuration {
        let n = self.cpus();
        let mut total = SimDuration::ZERO;
        let mut count = 0u64;
        for r in 0..n {
            for h in 0..n {
                for o in 0..n {
                    if r != h && h != o && r != o {
                        total += self.read_dirty(NodeId::new(r), NodeId::new(h), NodeId::new(o));
                        count += 1;
                    }
                }
            }
        }
        total / count.max(1)
    }

    /// Counted STREAM-triad bandwidth with `active` CPUs (Figs. 6–7):
    /// per-CPU demand is MSHR-limited over the ~330 ns local latency, and
    /// the CPUs of each QBB share its ~1.5 GB/s sustained memory.
    pub fn stream_triad_gbps(&self, active: usize) -> f64 {
        assert!(
            active >= 1 && active <= self.cpus(),
            "active CPUs out of range"
        );
        let latency = self.local_latency(true);
        let per_cpu_demand = self.calib.mshrs as f64 * 64.0 / latency.as_secs() / 1e9;
        // Active CPUs fill QBBs in order (4 per QBB).
        let mut remaining = active;
        let mut traffic = 0.0;
        while remaining > 0 {
            let in_this_qbb = remaining.min(self.calib.cpus_per_mem_site);
            traffic += (in_this_qbb as f64 * per_cpu_demand).min(self.calib.sustained_mem_gbps);
            remaining -= in_this_qbb;
        }
        traffic * 0.75
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_latency_levels() {
        let m = Gs320::new(16);
        let local = m.read_clean(NodeId::new(0), NodeId::new(0));
        // All four CPUs of QBB 0 see the same "local" latency.
        for k in 1..4 {
            assert_eq!(m.read_clean(NodeId::new(0), NodeId::new(k)), local);
        }
        // Remote QBBs all cost the same, much higher.
        let remote = m.read_clean(NodeId::new(0), NodeId::new(4));
        for k in 5..16 {
            assert_eq!(m.read_clean(NodeId::new(0), NodeId::new(k)), remote);
        }
        assert!((local.as_ns() - 330.0).abs() < 1.0, "local {local}");
        assert!((remote.as_ns() - 760.0).abs() < 5.0, "remote {remote}");
    }

    #[test]
    fn average_matches_fig12_mix() {
        // (4x330 + 12x760) / 16 = 652.5 ns.
        let m = Gs320::new(16);
        let avg = m.average_latency_from0().as_ns();
        assert!((avg - 652.5).abs() < 5.0, "avg {avg}");
    }

    #[test]
    fn dirty_reads_are_catastrophic() {
        let m = Gs320::new(16);
        let clean = m.read_clean(NodeId::new(0), NodeId::new(4));
        let dirty = m.read_dirty(NodeId::new(0), NodeId::new(4), NodeId::new(8));
        assert!(dirty > clean + SimDuration::from_ns(500.0));
    }

    #[test]
    fn latency_flat_in_machine_size() {
        // The switch hierarchy has fixed depth: average latency barely moves
        // from 8 to 32 CPUs (Fig. 14's flat GS320 curve) while the remote
        // fraction grows.
        let a8 = Gs320::new(8).average_latency_all_pairs().as_ns();
        let a32 = Gs320::new(32).average_latency_all_pairs().as_ns();
        assert!(a32 > a8);
        assert!(a32 < a8 * 1.35, "a8={a8} a32={a32}");
    }

    #[test]
    fn stream_scaling_is_sublinear_within_a_qbb() {
        let m = Gs320::new(16);
        let one = m.stream_triad_gbps(1);
        let four = m.stream_triad_gbps(4);
        assert!((one - 0.58).abs() < 0.1, "1-CPU {one}");
        assert!((four - 1.125).abs() < 0.1, "4-CPU {four}");
        assert!(four < 4.0 * one * 0.6, "must be strongly sub-linear");
        // Adding QBBs scales again: 8 CPUs = 2 QBBs = 2x the 4-CPU number.
        assert!((m.stream_triad_gbps(8) - 2.0 * four).abs() < 1e-9);
    }

    #[test]
    fn memory_site_is_the_qbb_switch() {
        let m = Gs320::new(8);
        assert_eq!(m.memory_site(NodeId::new(0)), m.topology().local_switch(0));
        assert_eq!(m.memory_site(NodeId::new(5)), m.topology().local_switch(1));
    }
}
