//! The chaos campaign engine: randomized fault-schedule fuzzing over the
//! GS1280 with automatic shrinking to minimal reproducers.
//!
//! [`run_chaos`] draws seeded random [`FaultPlan`]s from a
//! [`ChaosConfig`] distribution (every fault kind: cuts, repairs,
//! degradations, transient flit corruption, drains, pauses, channel
//! churn), drives a closed-loop [`FaultCampaign`] under each plan with the
//! always-on invariant monitors armed
//! ([`FaultCampaign::run_monitored`]), and — when a monitor fires —
//! shrinks the offending schedule through the kernel's
//! [`shrink_candidates`] transformations until no smaller legal schedule
//! still violates. The minimal schedule is packaged as a [`Reproducer`]:
//! a self-contained, serializable description that [`replay`] can re-run
//! bit-for-bit as a regression test.
//!
//! Trials alternate between one and two event-queue shards so the
//! conservative-lookahead machinery is fuzzed alongside the fault
//! handling; the shard count is pinned per trial, so results never depend
//! on the ambient `ALPHASIM_SHARDS`.

use std::collections::BTreeSet;

use alphasim_coherence::RetryPolicy;
use alphasim_kernel::chaos::{shrink_candidates, validate_plan, ChaosConfig, SiteCatalog};
use alphasim_kernel::{FaultEvent, FaultKind, FaultPlan, SimDuration, SimTime};
use alphasim_topology::Topology;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::faulty::{
    gs1280_fault_campaign, CampaignPattern, CampaignResult, FaultCampaign, FaultCampaignConfig,
    MonitorReport, RecoveryMutation,
};
use crate::gs1280::FabricTopo;
use crate::Gs1280;

/// Parameters of one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Machine size (CPU count of the GS1280 under test).
    pub cpus: usize,
    /// Random schedules to draw and run.
    pub trials: usize,
    /// Seed of the first trial; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Outstanding reads per CPU in each campaign.
    pub outstanding: usize,
    /// Reads per CPU in each campaign.
    pub requests_per_cpu: usize,
    /// The schedule distribution.
    pub config: ChaosConfig,
    /// Retry policy every trial campaign runs under. The default is the
    /// resilience experiment's loss-tolerant policy; mutation hunts may
    /// tighten it (a 50 µs timeout makes retry exhaustion unreachable
    /// inside a ~7 µs run, so the off-by-one-retry path never executes).
    pub retry: RetryPolicy,
    /// Deliberately broken recovery path (mutation testing); `None` fuzzes
    /// the intact machine.
    pub mutation: Option<RecoveryMutation>,
    /// Most campaign re-runs the shrinker may spend per violating trial.
    pub shrink_budget: usize,
    /// Worker threads for every trial campaign (`0` = resolve via
    /// [`alphasim_kernel::par::threads`]). Trial outcomes, reproducers,
    /// and shrinks are byte-identical at any value.
    pub threads: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            cpus: 16,
            trials: 50,
            base_seed: 0xC405,
            outstanding: 6,
            requests_per_cpu: 160,
            // A healthy 16P campaign at this quota runs ~7 us of simulated
            // time; squeeze the strike window inside it so schedules land
            // on live traffic instead of an idle, already-drained fabric.
            config: ChaosConfig {
                window: (
                    SimTime::ZERO + SimDuration::from_us(1.0),
                    SimTime::ZERO + SimDuration::from_us(6.0),
                ),
                ..ChaosConfig::default()
            },
            retry: RetryPolicy {
                timeout: SimDuration::from_us(50.0),
                backoff_base: SimDuration::from_us(2.0),
                backoff_cap: SimDuration::from_us(32.0),
                max_retries: 6,
            },
            mutation: None,
            shrink_budget: 200,
            threads: 0,
        }
    }
}

/// The outcome of one randomized trial.
#[derive(Debug, Clone)]
pub struct ChaosTrial {
    /// Schedule seed.
    pub seed: u64,
    /// Event-queue shards the trial ran with (pinned, alternating 1/2).
    pub shards: usize,
    /// Faults that actually struck.
    pub faults_applied: Vec<FaultKind>,
    /// Campaign outcome.
    pub result: CampaignResult,
    /// What the monitors saw.
    pub report: MonitorReport,
}

/// A minimal violating schedule, serializable and replayable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Stable name (`chaos-<mutation|sim>-seed<N>`), used as the corpus
    /// file stem.
    pub name: String,
    /// Machine size.
    pub cpus: usize,
    /// Outstanding reads per CPU.
    pub outstanding: usize,
    /// Reads per CPU.
    pub requests_per_cpu: usize,
    /// Pinned event-queue shard count.
    pub shards: usize,
    /// Retry policy the violating campaign ran under (replayed verbatim —
    /// retry pressure is part of what makes a schedule violate).
    pub retry: RetryPolicy,
    /// Recovery mutation id, if the violation required one.
    pub mutation: Option<String>,
    /// Monitors that fired on the original run, deduplicated.
    pub violations: Vec<String>,
    /// The shrunk schedule.
    pub plan: FaultPlan,
}

impl Reproducer {
    /// The corpus file body: pretty JSON with a trailing newline, so the
    /// committed reproducers diff cleanly.
    pub fn to_json(&self) -> String {
        let mut text =
            serde_json::to_string_pretty(self).unwrap_or_else(|e| panic!("serialize: {e}"));
        text.push('\n');
        text
    }

    /// Parse a corpus file back into a reproducer. The vendored serde
    /// stack has no typed deserializer, so this decodes the [`Value`] tree
    /// by hand, field for field — strict about shape, so a corrupted
    /// corpus entry fails loudly instead of replaying the wrong schedule.
    pub fn from_json(text: &str) -> Result<Reproducer, String> {
        let root = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
        let mutation = match get(&root, "mutation")? {
            Value::Null => None,
            v => Some(
                v.as_str()
                    .ok_or("field \"mutation\" must be a string or null")?
                    .to_string(),
            ),
        };
        let mut violations = Vec::new();
        for v in get(&root, "violations")?
            .as_array()
            .ok_or("field \"violations\" must be an array")?
        {
            violations.push(
                v.as_str()
                    .ok_or("violations entries must be strings")?
                    .to_string(),
            );
        }
        let mut events = Vec::new();
        for ev in get(get(&root, "plan")?, "events")?
            .as_array()
            .ok_or("plan.events must be an array")?
        {
            events.push(FaultEvent {
                at: SimTime::ZERO + SimDuration::from_ps(u64_field(ev, "at")?),
                kind: decode_kind(get(ev, "kind")?)?,
            });
        }
        let retry_v = get(&root, "retry")?;
        let retry = RetryPolicy {
            timeout: SimDuration::from_ps(u64_field(retry_v, "timeout")?),
            backoff_base: SimDuration::from_ps(u64_field(retry_v, "backoff_base")?),
            backoff_cap: SimDuration::from_ps(u64_field(retry_v, "backoff_cap")?),
            max_retries: u64_field(retry_v, "max_retries")? as u32,
        };
        Ok(Reproducer {
            name: str_field(&root, "name")?,
            cpus: usize_field(&root, "cpus")?,
            outstanding: usize_field(&root, "outstanding")?,
            requests_per_cpu: usize_field(&root, "requests_per_cpu")?,
            shards: usize_field(&root, "shards")?,
            retry,
            mutation,
            violations,
            plan: FaultPlan::from_events(events),
        })
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    Ok(u64_field(v, key)? as usize)
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(get(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))?
        .to_string())
}

/// Decode the externally tagged [`FaultKind`] encoding
/// (`{"LinkDown": {"a": 0, "b": 1}}`).
fn decode_kind(v: &Value) -> Result<FaultKind, String> {
    let map = v.as_object().ok_or("fault kind must be an object")?;
    if map.len() != 1 {
        return Err(format!(
            "fault kind must have exactly one variant tag, got {}",
            map.len()
        ));
    }
    let (tag, body) = map.iter().next().expect("len checked");
    let site = |key: &str| usize_field(body, key);
    Ok(match tag.as_str() {
        "LinkDown" => FaultKind::LinkDown {
            a: site("a")?,
            b: site("b")?,
        },
        "LinkUp" => FaultKind::LinkUp {
            a: site("a")?,
            b: site("b")?,
        },
        "LinkDegrade" => FaultKind::LinkDegrade {
            a: site("a")?,
            b: site("b")?,
        },
        "FlitCorrupt" => FaultKind::FlitCorrupt {
            from: site("from")?,
            to: site("to")?,
        },
        "NodeDrain" => FaultKind::NodeDrain {
            node: site("node")?,
        },
        "NodeUndrain" => FaultKind::NodeUndrain {
            node: site("node")?,
        },
        "RouterPause" => FaultKind::RouterPause {
            node: site("node")?,
            ps: u64_field(body, "ps")?,
        },
        "ChannelDown" => FaultKind::ChannelDown {
            node: site("node")?,
        },
        "ChannelUp" => FaultKind::ChannelUp {
            node: site("node")?,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    })
}

/// Everything one chaos campaign produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every trial, in seed order.
    pub trials: Vec<ChaosTrial>,
    /// Minimal reproducers for the trials whose monitors fired.
    pub reproducers: Vec<Reproducer>,
}

impl ChaosReport {
    /// Seeds whose monitors fired.
    pub fn violating_seeds(&self) -> Vec<u64> {
        self.trials
            .iter()
            .filter(|t| !t.report.is_clean())
            .map(|t| t.seed)
            .collect()
    }

    /// Distinct fault kinds that struck across all trials, by
    /// [`FaultKind::describe`]-stable discriminant name.
    pub fn kinds_struck(&self) -> BTreeSet<&'static str> {
        self.trials
            .iter()
            .flat_map(|t| t.faults_applied.iter())
            .map(|k| kind_name(*k))
            .collect()
    }
}

/// Stable discriminant name of a fault kind.
pub fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::LinkDown { .. } => "LinkDown",
        FaultKind::LinkUp { .. } => "LinkUp",
        FaultKind::LinkDegrade { .. } => "LinkDegrade",
        FaultKind::FlitCorrupt { .. } => "FlitCorrupt",
        FaultKind::NodeDrain { .. } => "NodeDrain",
        FaultKind::NodeUndrain { .. } => "NodeUndrain",
        FaultKind::RouterPause { .. } => "RouterPause",
        FaultKind::ChannelDown { .. } => "ChannelDown",
        FaultKind::ChannelUp { .. } => "ChannelUp",
    }
}

/// The fault-site catalog of a GS1280 fabric: every node and every
/// undirected link, as the kernel's schedule algebra sees them.
pub fn catalog_for(cpus: usize) -> SiteCatalog {
    let net = Gs1280::builder().cpus(cpus).build().network();
    let topo = net.topology();
    let nodes: Vec<usize> = (0..topo.node_count()).collect();
    let mut links = Vec::new();
    for n in 0..topo.node_count() {
        for port in topo.ports(alphasim_topology::NodeId::new(n)) {
            let m = port.to.index();
            if n < m {
                links.push((n, m));
            }
        }
    }
    SiteCatalog::new(nodes, links)
}

fn fresh_campaign(cpus: usize) -> FaultCampaign<FabricTopo> {
    gs1280_fault_campaign(&Gs1280::builder().cpus(cpus).build())
}

/// The campaign configuration every chaos trial runs under: the
/// resilience experiment's loss-tolerant retry policy, with the shard
/// count pinned explicitly so replays are environment-independent.
fn trial_cfg(
    opts: &ChaosOptions,
    plan: FaultPlan,
    shards: usize,
    mutation: Option<RecoveryMutation>,
) -> FaultCampaignConfig {
    FaultCampaignConfig {
        outstanding: opts.outstanding,
        requests_per_cpu: opts.requests_per_cpu,
        pattern: CampaignPattern::UniformRemote,
        plan,
        retry: opts.retry,
        watchdog_window: SimDuration::from_us(250.0),
        shards,
        threads: opts.threads,
        mutation,
        ..Default::default()
    }
}

/// Run one monitored campaign under `plan`.
fn run_plan(
    opts: &ChaosOptions,
    plan: &FaultPlan,
    shards: usize,
    mutation: Option<RecoveryMutation>,
) -> (CampaignResult, MonitorReport) {
    let campaign = fresh_campaign(opts.cpus);
    let cfg = trial_cfg(opts, plan.clone(), shards, mutation);
    let (result, _telemetry, report) = campaign.run_monitored(&cfg);
    (result, report)
}

/// Greedily shrink `plan` while some monitor still fires, spending at most
/// `opts.shrink_budget` campaign re-runs. Returns the minimal plan and the
/// monitors that fired on it.
fn shrink_violating_plan(
    opts: &ChaosOptions,
    catalog: &SiteCatalog,
    mut plan: FaultPlan,
    shards: usize,
) -> (FaultPlan, Vec<String>) {
    let mut spent = 0usize;
    let mut monitors = run_plan(opts, &plan, shards, opts.mutation)
        .1
        .violations
        .into_iter()
        .map(|v| v.monitor)
        .collect::<Vec<_>>();
    spent += 1;
    'outer: while spent < opts.shrink_budget {
        for cand in shrink_candidates(&plan, catalog) {
            spent += 1;
            let (_, report) = run_plan(opts, &cand, shards, opts.mutation);
            if !report.is_clean() {
                plan = cand;
                monitors = report.violations.into_iter().map(|v| v.monitor).collect();
                continue 'outer;
            }
            if spent >= opts.shrink_budget {
                break 'outer;
            }
        }
        break; // no smaller candidate still violates: minimal
    }
    monitors.sort();
    monitors.dedup();
    (plan, monitors)
}

/// Run a full chaos campaign: `opts.trials` random schedules, each checked
/// by the always-on monitors, each violation shrunk to a minimal
/// [`Reproducer`].
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let catalog = catalog_for(opts.cpus);
    let mut trials = Vec::with_capacity(opts.trials);
    let mut reproducers = Vec::new();
    for i in 0..opts.trials {
        let seed = opts.base_seed + i as u64;
        let plan = opts.config.generate(seed, &catalog);
        // Alternate shard counts so the lookahead path is fuzzed too.
        let shards = 1 + (i % 2);
        let (result, report) = run_plan(opts, &plan, shards, opts.mutation);
        if !report.is_clean() {
            let (minimal, monitors) = shrink_violating_plan(opts, &catalog, plan.clone(), shards);
            let tag = opts.mutation.map_or("sim", RecoveryMutation::id);
            reproducers.push(Reproducer {
                name: format!("chaos-{tag}-seed{seed}"),
                cpus: opts.cpus,
                outstanding: opts.outstanding,
                requests_per_cpu: opts.requests_per_cpu,
                shards,
                retry: opts.retry,
                mutation: opts.mutation.map(|m| m.id().to_string()),
                violations: monitors,
                plan: minimal,
            });
        }
        trials.push(ChaosTrial {
            seed,
            shards,
            faults_applied: result.faults_applied.clone(),
            result,
            report,
        });
    }
    ChaosReport {
        trials,
        reproducers,
    }
}

/// Re-run a [`Reproducer`] exactly as recorded. Returns the monitor report
/// of the replay; a regression corpus expects every mutated reproducer to
/// violate again and every healthy replay (mutation stripped) to be clean.
pub fn replay(rep: &Reproducer) -> Result<(CampaignResult, MonitorReport), String> {
    let mutation = match &rep.mutation {
        None => None,
        Some(id) => Some(
            RecoveryMutation::from_id(id)
                .ok_or_else(|| format!("unknown recovery mutation {id:?}"))?,
        ),
    };
    let catalog = catalog_for(rep.cpus);
    validate_plan(&catalog, &rep.plan)
        .map_err(|why| format!("reproducer {} carries an illegal plan: {why}", rep.name))?;
    let opts = ChaosOptions {
        cpus: rep.cpus,
        outstanding: rep.outstanding,
        requests_per_cpu: rep.requests_per_cpu,
        retry: rep.retry,
        ..ChaosOptions::default()
    };
    Ok(run_plan(&opts, &rep.plan, rep.shards, mutation))
}

/// Replay a reproducer with its mutation stripped: the same schedule on
/// the intact machine, which must come back clean for the corpus entry to
/// be meaningful (the bug is in the mutated recovery path, not the
/// schedule).
pub fn replay_healthy(rep: &Reproducer) -> Result<(CampaignResult, MonitorReport), String> {
    let healthy = Reproducer {
        mutation: None,
        ..rep.clone()
    };
    replay(&healthy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> ChaosOptions {
        ChaosOptions {
            trials: 4,
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn catalog_matches_the_4x4_fabric() {
        let cat = catalog_for(16);
        assert_eq!(cat.nodes.len(), 16);
        // A 4x4 torus has 2 undirected links per node.
        assert_eq!(cat.links.len(), 32);
        for &(a, b) in &cat.links {
            assert!(a < b);
            assert!(b < 16);
        }
    }

    #[test]
    fn chaos_trials_are_deterministic_and_clean() {
        let opts = small_opts();
        let a = run_chaos(&opts);
        let b = run_chaos(&opts);
        assert_eq!(a.trials.len(), opts.trials);
        for (ta, tb) in a.trials.iter().zip(&b.trials) {
            assert_eq!(ta.seed, tb.seed);
            assert_eq!(ta.result.completed, tb.result.completed);
            assert_eq!(ta.result.mean_latency, tb.result.mean_latency);
            assert_eq!(ta.faults_applied, tb.faults_applied);
            assert!(
                ta.report.is_clean(),
                "seed {} violated: {:?}",
                ta.seed,
                ta.report.violations
            );
        }
        assert!(a.reproducers.is_empty());
        assert!(a.violating_seeds().is_empty());
    }

    #[test]
    fn mutated_chaos_is_caught_and_shrinks_small() {
        // Leak the poison path: any schedule that poisons a read trips the
        // monitor, and the shrinker must cut the schedule down to almost
        // nothing (a single drain suffices to poison).
        let opts = ChaosOptions {
            trials: 6,
            mutation: Some(RecoveryMutation::LeakPoison),
            ..ChaosOptions::default()
        };
        let report = run_chaos(&opts);
        assert!(
            !report.reproducers.is_empty(),
            "six random schedules must include a poisoning fault"
        );
        for rep in &report.reproducers {
            assert!(
                rep.plan.len() <= 3,
                "{} shrank only to {} faults: {:?}",
                rep.name,
                rep.plan.len(),
                rep.plan
            );
            assert_eq!(rep.mutation.as_deref(), Some("leak-poison"));
            assert!(!rep.violations.is_empty());
            // The reproducer replays red, and the same schedule on the
            // intact machine replays green.
            let (_, replayed) = replay(rep).expect("reproducer must replay");
            assert!(!replayed.is_clean(), "{} must violate on replay", rep.name);
            let (_, healthy) = replay_healthy(rep).expect("healthy replay");
            assert!(
                healthy.is_clean(),
                "{} healthy replay violated: {:?}",
                rep.name,
                healthy.violations
            );
        }
    }

    #[test]
    fn replay_rejects_unknown_mutations_and_illegal_plans() {
        let mut plan = FaultPlan::new();
        plan.push(
            alphasim_kernel::SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::NodeDrain { node: 3 },
        );
        let rep = Reproducer {
            name: "bad".into(),
            cpus: 16,
            outstanding: 6,
            requests_per_cpu: 10,
            shards: 1,
            retry: ChaosOptions::default().retry,
            mutation: Some("no-such-mutation".into()),
            violations: vec![],
            plan: plan.clone(),
        };
        assert!(replay(&rep)
            .unwrap_err()
            .contains("unknown recovery mutation"));
        let mut bad_plan = FaultPlan::new();
        bad_plan.push(
            alphasim_kernel::SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::NodeDrain { node: 99 },
        );
        let rep = Reproducer {
            mutation: None,
            plan: bad_plan,
            ..rep
        };
        assert!(replay(&rep).unwrap_err().contains("illegal plan"));
    }

    #[test]
    fn reproducers_round_trip_through_json() {
        let mut plan = FaultPlan::new();
        plan.push(
            alphasim_kernel::SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::NodeDrain { node: 3 },
        );
        let rep = Reproducer {
            name: "chaos-leak-poison-seed7".into(),
            cpus: 16,
            outstanding: 6,
            requests_per_cpu: 20,
            shards: 2,
            retry: RetryPolicy {
                timeout: SimDuration::from_us(1.0),
                backoff_base: SimDuration::from_ns(250.0),
                backoff_cap: SimDuration::from_us(1.0),
                max_retries: 2,
            },
            mutation: Some("leak-poison".into()),
            violations: vec!["poison-leak".into()],
            plan,
        };
        let json = rep.to_json();
        assert!(json.ends_with("}\n"));
        let back = Reproducer::from_json(&json).expect("deserialize");
        assert_eq!(back, rep);
        assert!(Reproducer::from_json("{}")
            .unwrap_err()
            .contains("missing field"));
        let bad_kind = json.replace("NodeDrain", "NodeMelt");
        assert!(Reproducer::from_json(&bad_kind)
            .unwrap_err()
            .contains("unknown fault kind"));
    }
}
