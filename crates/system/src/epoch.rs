//! The epoch-parallel closed-loop campaign engine.
//!
//! [`crate::faulty::FaultCampaign`] used to drive one global
//! `NetworkSim` event loop; this module partitions the same closed loop
//! by torus row band so the conservative epoch scheduler
//! ([`EpochExecutor`]) can advance each region on its own core:
//!
//! * [`CampaignWorker`] is one region's slice of everything mutable: the
//!   [`RegionNet`] link state, the requester-partitioned [`PendingSet`],
//!   the home-node-owned [`Zbox`] controllers, per-CPU RNGs and issue
//!   counters, and the region's share of every result stream (latency
//!   samples, completions, poisons, violations, trace events).
//! * [`CampaignGuide`] is the barrier coordinator: it owns the master
//!   [`FabricTables`], strikes fault-plan events and watchdog ticks as
//!   epoch barriers, mutates worker link state under
//!   [`EpochControl`], condemns in-flight packets on dead wires, and
//!   republishes the routing snapshot plus the conservative lookahead.
//!
//! Determinism is by construction, not by luck: every event carries a
//! shard-count-invariant tiebreak (packet uid, link id, transaction tag,
//! CPU index — never a slot or arrival order), per-CPU RNGs advance only
//! in the CPU's owning region, and every result stream is merged into a
//! canonical order after the run. The same config therefore produces the
//! same bytes at any `--threads`/`--shards` combination — the invariant
//! `reproduce --check` enforces for every committed artifact.
//!
//! The worker/guide state partition is also **statically checked**: the
//! `verify::ownership` pass parses this file and proves that no worker
//! method reaches for the [`EpochControl`], names guide-plane state, or
//! carries a shared-mutable accumulator field, and that every guide-side
//! worker mutation is gated by an `EpochControl` parameter (the handle
//! exists only at barriers, so the signature is the proof). `cargo run
//! -p verify --bin ownership` fails on any violation, and the per-field
//! access map is committed in `results/verify.json`.

use std::sync::Arc;

use alphasim_cache::Addr;
use alphasim_coherence::{PendingSet, PendingTx, RetryPolicy, Watchdog};
use alphasim_kernel::fault::DEGRADE_FACTOR;
use alphasim_kernel::shard::{BarrierVerdict, EpochControl, EpochGuide, Outbox, ShardWorker};
use alphasim_kernel::{DetRng, FaultEvent, FaultKind, SimDuration, SimTime};
use alphasim_mem::Zbox;
use alphasim_net::partition::{
    tb_arrive, tb_inject, tb_link_free, tb_timer, FabricTables, NetStep, Packet, RegionNet,
};
use alphasim_net::{FaultError, MessageClass};
use alphasim_telemetry::trace::PID_MEMORY;
use alphasim_telemetry::{BreakdownTable, HopBreakdown};
use alphasim_topology::{NodeId, Topology};

use crate::faulty::{CampaignPattern, PoisonedTx, RecoveryMutation, STUCK_WINDOW_LIMIT};
use crate::obs::ObsAcc;

/// The horizon used when no live link crosses a region boundary (single
/// region, or a fully severed cut): effectively infinite, so epochs are
/// bounded only by guide barriers.
pub(crate) fn fallback_lookahead() -> SimDuration {
    SimDuration::from_ps(1 << 62)
}

/// The request-leg attribution a response carries home. Sequentially this
/// was parked at the collector keyed by tag; here it rides the completing
/// response itself, so the charge happens wherever the requester lives.
#[derive(Debug, Clone)]
pub(crate) struct ServedLeg {
    /// Per-hop attribution of the request that was served.
    pub(crate) request: HopBreakdown,
    /// Time the read waited for the memory controller.
    pub(crate) zbox_queue_ps: u64,
    /// DRAM service time.
    pub(crate) dram_ps: u64,
    /// Whether the access hit an open page.
    pub(crate) page_hit: bool,
}

/// The campaign's event vocabulary. Tiebreaks are assigned at emission
/// from the `tb_*` constructors, all derived from simulation identities.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A packet lands on `node` (hop-by-hop handoff; responses carry the
    /// served leg).
    Arrive {
        /// Node the packet lands on.
        node: NodeId,
        /// The packet in flight.
        pkt: Box<Packet<Option<ServedLeg>>>,
    },
    /// An owned link's channel frees up.
    LinkFree {
        /// Global link id.
        link: usize,
    },
    /// A transaction's retry deadline fires in its requester's region.
    Timer {
        /// Transaction tag.
        tag: u64,
    },
    /// A packet died with its wire; the requester reacts at the instant
    /// the packet would have arrived (drop-at-arrival semantics).
    DropNotice {
        /// Transaction tag of the condemned packet.
        tag: u64,
    },
    /// Top the CPU's issue window back up (priming and undrain refill).
    /// Idempotent: it refills to `outstanding`, however many are in
    /// flight.
    Inject {
        /// CPU index.
        cpu: usize,
    },
}

/// Immutable campaign parameters shared by every worker.
pub(crate) struct CampaignCfg {
    /// Outstanding reads per CPU.
    pub(crate) outstanding: usize,
    /// Reads each CPU completes before the run ends.
    pub(crate) requests_per_cpu: u64,
    /// Timeout / backoff / poison policy.
    pub(crate) retry: RetryPolicy,
    /// Deliberately broken recovery path, if any.
    pub(crate) mutation: Option<RecoveryMutation>,
    /// Traffic pattern.
    pub(crate) pattern: CampaignPattern,
    /// Bisection mirror per CPU (empty for [`CampaignPattern::UniformRemote`]).
    pub(crate) partners: Vec<usize>,
    /// Fixed front-end overhead added to every end-to-end latency.
    pub(crate) front_overhead: SimDuration,
    /// Fixed directory lookup before the Zbox serves a request.
    pub(crate) directory_overhead: SimDuration,
    /// Whether the always-on invariant monitors are armed.
    pub(crate) monitored: bool,
}

/// One region's slice of the closed-loop campaign state.
pub(crate) struct CampaignWorker<T: Topology> {
    /// Shared campaign parameters.
    pub(crate) cfg: Arc<CampaignCfg>,
    /// Every CPU endpoint, indexed by CPU number.
    pub(crate) cpus: Arc<Vec<NodeId>>,
    /// This region's fabric slice.
    pub(crate) net: RegionNet<T, Option<ServedLeg>>,
    /// Per-CPU RNG streams; only owned CPUs ever advance, so the per-CPU
    /// draw sequence is shard-count invariant.
    pub(crate) rngs: Vec<DetRng>,
    /// Per-CPU issue counters (only owned CPUs are nonzero).
    pub(crate) issued: Vec<u64>,
    /// Outstanding transactions whose *requester* this region owns.
    pub(crate) pending: PendingSet,
    /// Reads abandoned with a named cause.
    pub(crate) poisoned: Vec<PoisonedTx>,
    /// Highest attempt count any owned transaction reached.
    pub(crate) max_attempts: u32,
    /// Raw end-to-end latency samples (merged and folded after the run).
    pub(crate) latency_samples: Vec<SimDuration>,
    /// `(time, tag)` of every completion, for the steady-state bandwidth.
    pub(crate) completions: Vec<(SimTime, u64)>,
    /// Pending-set occupancy deltas `(time_ps, ±1)`; the global peak is a
    /// prefix-sum max over the merged logs.
    pub(crate) pending_log: Vec<(u64, i8)>,
    /// Timestamped monitor violations `(time_ps, monitor, detail)`.
    pub(crate) violations: Vec<(u64, String, String)>,
    /// Time of the last delivery (request or response) in this region.
    pub(crate) last_delivery: SimTime,
    /// Memory controllers of the home nodes this region owns, indexed by
    /// node id (`None` for foreign nodes).
    pub(crate) zboxes: Vec<Option<Zbox>>,
    /// Per-CPU: whether the node was ever drained (set at the barrier by
    /// the guide; exempts the CPU from window-refill and issue-quota
    /// checks).
    pub(crate) ever_drained: Vec<bool>,
    /// Per-region latency attribution, present on collecting runs.
    pub(crate) breakdown: Option<BreakdownTable>,
    /// Windowed campaign-plane observability, present on observed runs.
    pub(crate) obs: Option<Box<ObsAcc>>,
    /// Scratch for [`RegionNet`] step emission (reused across events).
    pub(crate) steps: Vec<NetStep<Option<ServedLeg>>>,
}

impl<T: Topology + Clone + Send + Sync + 'static> ShardWorker for CampaignWorker<T> {
    type Event = Ev;

    fn handle(&mut self, at: SimTime, ev: Ev, out: &mut Outbox<Ev>) {
        match ev {
            Ev::Arrive { node, pkt } => {
                let mut steps = std::mem::take(&mut self.steps);
                self.net.handle_arrive(at, node, pkt, &mut steps);
                self.dispatch(at, &mut steps, out);
                self.steps = steps;
            }
            Ev::LinkFree { link } => {
                let mut steps = std::mem::take(&mut self.steps);
                self.net.handle_link_free(at, link, &mut steps);
                self.dispatch(at, &mut steps, out);
                self.steps = steps;
            }
            Ev::Timer { tag } => {
                let overdue = self.pending.get(tag).is_some_and(|tx| tx.deadline <= at);
                // IgnoreTimeouts mutation: the expiry is dropped on the
                // floor, so lost transactions hang — which the
                // hung-transaction monitor must catch.
                if overdue && self.cfg.mutation != Some(RecoveryMutation::IgnoreTimeouts) {
                    self.retry_or_poison(at, tag, out);
                }
            }
            Ev::DropNotice { tag } => self.retry_or_poison(at, tag, out),
            Ev::Inject { cpu } => self.top_up(at, cpu, out),
        }
    }
}

impl<T: Topology + Clone + Send + Sync + 'static> CampaignWorker<T> {
    /// Route every emitted [`NetStep`] to its owning region's heap (or
    /// consume the delivery in place).
    fn dispatch(
        &mut self,
        at: SimTime,
        steps: &mut Vec<NetStep<Option<ServedLeg>>>,
        out: &mut Outbox<Ev>,
    ) {
        for step in std::mem::take(steps) {
            match step {
                NetStep::Arrive { at: t, node, pkt } => {
                    let dest = self.net.tables().region_of(node);
                    out.emit(dest, t, tb_arrive(pkt.uid), Ev::Arrive { node, pkt });
                }
                NetStep::LinkFree { at: t, link } => {
                    out.emit(
                        self.net.region(),
                        t,
                        tb_link_free(link),
                        Ev::LinkFree { link },
                    );
                }
                NetStep::Delivered { pkt } => self.deliver(at, *pkt, out),
            }
        }
    }

    /// Consume a delivery: serve a request from the home Zbox, or close
    /// the transaction a response answers.
    fn deliver(&mut self, at: SimTime, pkt: Packet<Option<ServedLeg>>, out: &mut Outbox<Ev>) {
        self.last_delivery = self.last_delivery.max(at);
        match pkt.class {
            MessageClass::Request => {
                let home = pkt.dst;
                if self.net.tables().is_drained(home) {
                    // The home's whole node drained: its memory is
                    // unreachable, so the request dies here and the
                    // requester's timeout poisons it.
                    return;
                }
                // Serve even if no longer pending (a poisoned or retried
                // duplicate); the dup response is discarded at the
                // requester.
                let tag = pkt.tag;
                let addr = Addr::new((tag.wrapping_mul(0x9E3779B97F4A7C15) >> 16) & 0x3FFF_FFC0);
                let served_from = at + self.cfg.directory_overhead;
                let zbox = self.zboxes[home.index()]
                    .as_mut()
                    .expect("home node's zbox is owned by this region");
                let acc = zbox.access(served_from, addr, 64);
                if let Some(sink) = self.net.trace_mut() {
                    sink.complete(
                        "dram read",
                        "mem",
                        PID_MEMORY,
                        home.index() as u32,
                        served_from.as_ps(),
                        acc.completed.since(served_from).as_ps(),
                        &[("tag", tag), ("page_hit", u64::from(acc.page_hit))],
                    );
                }
                // The leg always rides the response — instrumented and
                // plain runs schedule byte-identical events.
                if let Some(o) = self.obs.as_deref_mut() {
                    o.note_zbox_read(
                        served_from.as_ps(),
                        home.index(),
                        acc.completed.since(acc.started).as_ps(),
                    );
                }
                let leg = ServedLeg {
                    request: pkt.acc,
                    zbox_queue_ps: acc.started.since(served_from).as_ps(),
                    dram_ps: acc.completed.since(acc.started).as_ps(),
                    page_hit: acc.page_hit,
                };
                let requester = self.cpus[(tag >> 32) as usize];
                let uid = pkt.uid | 1;
                let resp = Box::new(Packet {
                    src: home,
                    dst: requester,
                    class: MessageClass::BlockResponse,
                    bytes: 80,
                    tag,
                    uid,
                    injected_at: acc.completed,
                    hops: 0,
                    serialized: false,
                    enqueued_at: acc.completed,
                    acc: HopBreakdown::default(),
                    payload: Some(leg),
                });
                out.emit(
                    self.net.region(),
                    acc.completed,
                    tb_arrive(uid),
                    Ev::Arrive {
                        node: home,
                        pkt: resp,
                    },
                );
            }
            MessageClass::BlockResponse => {
                let tag = pkt.tag;
                let Some(tx) = self.pending.complete(tag) else {
                    return; // duplicate response from a retry
                };
                self.pending_log.push((at.as_ps(), -1));
                let e2e = at.since(tx.first_issued) + self.cfg.front_overhead;
                self.latency_samples.push(e2e);
                self.completions.push((at, tag));
                if let Some(o) = self.obs.as_deref_mut() {
                    o.note_completion(at.as_ps(), e2e.as_ps());
                }
                if let Some(bd) = self.breakdown.as_mut() {
                    charge_completion(
                        bd,
                        &pkt.acc,
                        pkt.payload.as_ref(),
                        self.cfg.directory_overhead.as_ps(),
                        self.cfg.front_overhead.as_ps(),
                        e2e.as_ps(),
                    );
                }
                let cpu = (tag >> 32) as usize;
                self.inject_next(at, cpu, out);
            }
            other => panic!("unexpected class {other:?}"),
        }
    }

    /// Refill `cpu`'s issue window to `outstanding`. Idempotent, so
    /// duplicate same-time refills are harmless.
    fn top_up(&mut self, at: SimTime, cpu: usize, out: &mut Outbox<Ev>) {
        let inflight = self
            .pending
            .iter()
            .filter(|&(tag, _)| (tag >> 32) as usize == cpu)
            .count();
        for _ in inflight..self.cfg.outstanding {
            if !self.inject_next(at, cpu, out) {
                break;
            }
        }
    }

    /// Issue `cpu`'s next read if it still has budget and has not drained.
    /// Returns whether a read was issued.
    fn inject_next(&mut self, at: SimTime, cpu: usize, out: &mut Outbox<Ev>) -> bool {
        if self.issued[cpu] < self.cfg.requests_per_cpu
            && !self.net.tables().is_drained(self.cpus[cpu])
        {
            self.inject(at, cpu, out);
            true
        } else {
            false
        }
    }

    fn pick_target(&mut self, cpu: usize) -> usize {
        match self.cfg.pattern {
            CampaignPattern::UniformRemote => {
                if self.cpus.len() == 1 {
                    0
                } else {
                    self.rngs[cpu].index_excluding(self.cpus.len(), cpu)
                }
            }
            CampaignPattern::Bisection => self.cfg.partners[cpu],
        }
    }

    /// Issue one read from `cpu`: track it, launch the request packet, and
    /// arm its retry timer.
    fn inject(&mut self, at: SimTime, cpu: usize, out: &mut Outbox<Ev>) {
        let seq = self.issued[cpu];
        self.issued[cpu] += 1;
        let target = self.pick_target(cpu);
        let home = self.cpus[target];
        let tag = ((cpu as u64) << 32) | seq;
        let deadline = at + self.cfg.retry.timeout;
        self.pending.insert(
            tag,
            PendingTx {
                src: self.cpus[cpu].index(),
                home: home.index(),
                first_issued: at,
                deadline,
                attempts: 1,
            },
        );
        self.pending_log.push((at.as_ps(), 1));
        if let Some(o) = self.obs.as_deref_mut() {
            o.note_injected(at.as_ps());
        }
        self.send_request(at, cpu, home, tag, 1, out);
        out.emit(
            self.net.region(),
            deadline,
            tb_timer(tag),
            Ev::Timer { tag },
        );
    }

    /// Launch attempt `attempt` of transaction `tag` into the fabric at
    /// `at`. The packet uid is derived from tag and attempt (responses
    /// take `uid | 1`), so identities are shard-count invariant.
    fn send_request(
        &mut self,
        at: SimTime,
        cpu: usize,
        home: NodeId,
        tag: u64,
        attempt: u32,
        out: &mut Outbox<Ev>,
    ) {
        let uid = (tag << 16) | (u64::from(attempt) << 1);
        let src = self.cpus[cpu];
        let pkt = Box::new(Packet {
            src,
            dst: home,
            class: MessageClass::Request,
            bytes: 16,
            tag,
            uid,
            injected_at: at,
            hops: 0,
            serialized: false,
            enqueued_at: at,
            acc: HopBreakdown::default(),
            payload: None,
        });
        out.emit(
            self.net.region(),
            at,
            tb_arrive(uid),
            Ev::Arrive { node: src, pkt },
        );
    }

    /// A transaction timed out or its packet died with a wire: re-issue
    /// after bounded backoff, or poison it with a named cause past
    /// `max_retries` (or when either end has drained). A poisoned read
    /// frees its window slot, so the CPU issues its next read.
    fn retry_or_poison(&mut self, now: SimTime, tag: u64, out: &mut Outbox<Ev>) {
        let Some(tx) = self.pending.get(tag).copied() else {
            return; // completed in the meantime (e.g. drop of a dup response)
        };
        let cpu = (tag >> 32) as usize;
        // OffByOneRetry mutation: the poison threshold slips by one, so
        // transactions overrun the retry bound — which the retry-bound
        // monitor must catch on the extra attempt.
        let max_retries = if self.cfg.mutation == Some(RecoveryMutation::OffByOneRetry) {
            self.cfg.retry.max_retries + 1
        } else {
            self.cfg.retry.max_retries
        };
        let cause = if self.net.tables().is_drained(NodeId::new(tx.src)) {
            Some(format!("source cpu {} drained mid-flight", tx.src))
        } else if self.net.tables().is_drained(NodeId::new(tx.home)) {
            Some(format!("home node {} drained; memory unreachable", tx.home))
        } else if tx.attempts > max_retries {
            Some(format!(
                "exhausted {} retries (timeout {} per attempt)",
                self.cfg.retry.max_retries, self.cfg.retry.timeout
            ))
        } else {
            None
        };
        if let Some(cause) = cause {
            self.max_attempts = self.max_attempts.max(tx.attempts);
            if self.cfg.mutation == Some(RecoveryMutation::LeakPoison) {
                // Deliberately broken: the abandoned entry stays pending.
            } else {
                self.pending.poison(tag).expect("checked above");
                self.pending_log.push((now.as_ps(), -1));
            }
            if self.cfg.monitored && self.pending.get(tag).is_some() {
                self.violations.push((
                    now.as_ps(),
                    "poison-leak".to_string(),
                    format!("tag {tag:#x} still pending after poisoning"),
                ));
            }
            self.poisoned.push(PoisonedTx {
                tag,
                cpu,
                home: tx.home,
                attempts: tx.attempts,
                cause,
            });
            if let Some(o) = self.obs.as_deref_mut() {
                o.note_poisoned(now.as_ps());
            }
            if self.cfg.mutation == Some(RecoveryMutation::SkipWindowRefill) {
                // Deliberately broken: the freed window slot is not refilled.
            } else {
                self.inject_next(now, cpu, out);
            }
            // Window integrity: a live, never-drained CPU with quota left
            // must run a full window after the slot is recycled.
            if self.cfg.monitored
                && !self.ever_drained[cpu]
                && !self.net.tables().is_drained(self.cpus[cpu])
                && self.issued[cpu] < self.cfg.requests_per_cpu
            {
                let inflight = self
                    .pending
                    .iter()
                    .filter(|&(t, _)| (t >> 32) as usize == cpu)
                    .count();
                if inflight < self.cfg.outstanding {
                    self.violations.push((
                        now.as_ps(),
                        "window-refill".to_string(),
                        format!(
                            "cpu {cpu} runs {inflight} of {} window slots after a poison",
                            self.cfg.outstanding
                        ),
                    ));
                }
            }
            return;
        }
        let backoff = self.cfg.retry.backoff(tx.attempts);
        let resend_at = now + backoff;
        let deadline = resend_at + self.cfg.retry.timeout;
        let attempts = self.pending.retry(tag, deadline);
        self.max_attempts = self.max_attempts.max(attempts);
        if let Some(o) = self.obs.as_deref_mut() {
            o.note_retry(now.as_ps());
        }
        if self.cfg.monitored && attempts > self.cfg.retry.max_retries + 1 {
            self.violations.push((
                now.as_ps(),
                "retry-bound".to_string(),
                format!(
                    "tag {tag:#x} reached attempt {attempts}; the policy allows {}",
                    self.cfg.retry.max_retries + 1
                ),
            ));
        }
        self.send_request(resend_at, cpu, NodeId::new(tx.home), tag, attempts, out);
        out.emit(
            self.net.region(),
            deadline,
            tb_timer(tag),
            Ev::Timer { tag },
        );
    }
}

/// Charge every attributable picosecond of a completed read's end-to-end
/// latency to a pipeline stage. On a healthy run the stages sum exactly
/// to `e2e_ps`; anything they cannot explain (retry backoff, time lost
/// with a dropped packet) lands in the `unattributed` stage, so the table
/// always balances.
///
/// The response-leg stages, the directory lookup that produced this
/// response, and the front end always lie on the completing path. The
/// carried request leg might not fit: retransmits reuse the transaction
/// tag, so a response racing a concurrent retry can carry stages that ran
/// *concurrently* with the completing trip. Charging those would
/// overshoot `e2e_ps` and break the exact-sum invariant, so a leg that no
/// longer fits inside the end-to-end budget is left unattributed instead.
fn charge_completion(
    bd: &mut BreakdownTable,
    response: &HopBreakdown,
    leg: Option<&ServedLeg>,
    directory_ps: u64,
    front_ps: u64,
    e2e_ps: u64,
) {
    let mut known = 0u64;
    for (stage, ps) in [
        ("response: queue + arbitration", response.queued_ps),
        ("response: router pipeline", response.router_ps),
        ("response: wire flight", response.wire_ps),
        ("response: link serialization", response.serialization_ps),
        ("response: congestion penalty", response.congestion_ps),
        ("directory lookup (fixed)", directory_ps),
        ("front end (fixed)", front_ps),
    ] {
        bd.charge(stage, ps);
        known += ps;
    }
    if let Some(leg) = leg {
        let leg_total = leg.request.queued_ps
            + leg.request.router_ps
            + leg.request.wire_ps
            + leg.request.serialization_ps
            + leg.request.congestion_ps
            + leg.zbox_queue_ps
            + leg.dram_ps;
        if known + leg_total <= e2e_ps {
            for (stage, ps) in [
                ("request: queue + arbitration", leg.request.queued_ps),
                ("request: router pipeline", leg.request.router_ps),
                ("request: wire flight", leg.request.wire_ps),
                ("request: link serialization", leg.request.serialization_ps),
                ("request: congestion penalty", leg.request.congestion_ps),
                ("zbox queue", leg.zbox_queue_ps),
                (
                    if leg.page_hit {
                        "dram open page"
                    } else {
                        "dram closed page"
                    },
                    leg.dram_ps,
                ),
            ] {
                bd.charge(stage, ps);
                known += ps;
            }
        }
    }
    bd.charge(
        "unattributed (retry / backoff)",
        e2e_ps.saturating_sub(known),
    );
    bd.complete_transaction(e2e_ps);
}

/// The barrier coordinator: owns the master fabric tables and the fault
/// plan, strikes fault events and watchdog ticks at epoch barriers, and
/// keeps every worker's routing snapshot and the conservative lookahead
/// in sync with the wounded fabric.
pub(crate) struct CampaignGuide<T: Topology> {
    /// The master routing snapshot; workers hold [`Arc`] clones
    /// republished after every fabric mutation.
    pub(crate) master: FabricTables<T>,
    /// Every CPU endpoint, indexed by CPU number.
    pub(crate) cpus: Arc<Vec<NodeId>>,
    /// The fault schedule, sorted by strike time.
    pub(crate) plan: Vec<FaultEvent>,
    /// Next unstruck plan entry.
    pub(crate) plan_idx: usize,
    /// Watchdog no-progress window (also the barrier grid pitch).
    pub(crate) window: SimDuration,
    /// The livelock detector.
    pub(crate) dog: Watchdog,
    /// Next watchdog barrier on the fixed grid.
    pub(crate) dog_next: SimTime,
    /// Whether watchdog barriers keep coming (plan remaining or any
    /// transaction outstanding).
    pub(crate) live: bool,
    /// Consecutive no-progress windows (monitored runs escalate at
    /// [`STUCK_WINDOW_LIMIT`]).
    pub(crate) consecutive_stuck: u32,
    /// Whether the always-on invariant monitors are armed.
    pub(crate) monitored: bool,
    /// Faults that actually struck, in strike order.
    pub(crate) faults_applied: Vec<FaultKind>,
    /// Livelock reports, in firing order.
    pub(crate) reports: Vec<alphasim_coherence::LivelockReport>,
    /// Timestamped monitor violations `(time_ps, monitor, detail)`.
    pub(crate) violations: Vec<(u64, String, String)>,
    /// Packets lost with failed wires.
    pub(crate) dropped: u64,
    /// Queued packets evicted from failing links and re-routed.
    pub(crate) rerouted: u64,
}

impl<T: Topology + Clone + Send + Sync + 'static> EpochGuide<CampaignWorker<T>>
    for CampaignGuide<T>
{
    fn next_barrier(&mut self) -> Option<SimTime> {
        let fault = self.plan.get(self.plan_idx).map(|e| e.at);
        let dog = self.live.then_some(self.dog_next);
        match (fault, dog) {
            (None, None) => None,
            (Some(f), None) => Some(f),
            (None, Some(d)) => Some(d),
            (Some(f), Some(d)) => Some(f.min(d)),
        }
    }

    fn at_barrier(
        &mut self,
        at: SimTime,
        ctl: &mut EpochControl<'_, CampaignWorker<T>>,
    ) -> BarrierVerdict {
        let mut verdict = BarrierVerdict::Continue;
        while self.plan_idx < self.plan.len() && self.plan[self.plan_idx].at == at {
            let kind = self.plan[self.plan_idx].kind;
            self.plan_idx += 1;
            self.apply_fault(at, kind, ctl);
            self.faults_applied.push(kind);
            // After every strike the route tables and the conservative
            // lookahead must agree with their brute-force oracles.
            if self.monitored {
                if let Err(why) = self.master.audit_routes() {
                    self.violations
                        .push((at.as_ps(), "route-consistency".to_string(), why));
                }
                if let Err(why) = self.master.audit_lookahead() {
                    self.violations
                        .push((at.as_ps(), "lookahead-oracle".to_string(), why));
                }
            }
        }
        if self.live && at == self.dog_next {
            if self.dog_tick(at, ctl) == BarrierVerdict::Stop {
                verdict = BarrierVerdict::Stop;
            }
            self.dog_next = at + self.window;
        }
        self.live = self.plan_idx < self.plan.len()
            || (0..ctl.shard_count()).any(|s| !ctl.worker(s).pending.is_empty());
        verdict
    }
}

impl<T: Topology + Clone + Send + Sync + 'static> CampaignGuide<T> {
    /// Republish the master tables to every worker (so route lookups
    /// inside the next epochs see the fabric as it stands at this
    /// barrier).
    fn republish(&self, ctl: &mut EpochControl<'_, CampaignWorker<T>>) {
        let fresh = Arc::new(self.master.clone());
        for s in 0..ctl.shard_count() {
            ctl.worker_mut(s).net.set_tables(fresh.clone());
        }
    }

    /// Re-derive the conservative lookahead from the surviving
    /// cross-region links. Killing the fastest cross link *grows* the
    /// horizon; restoring it shrinks it — both safe, since the contract
    /// is only checked on new emissions.
    fn refresh_lookahead(&self, ctl: &mut EpochControl<'_, CampaignWorker<T>>) {
        ctl.set_lookahead(
            self.master
                .conservative_lookahead()
                .unwrap_or_else(fallback_lookahead),
        );
    }

    /// Apply one fault strike at barrier `b`, with the same semantics —
    /// and the same loud panics on inapplicable faults — as the
    /// sequential engine.
    fn apply_fault(
        &mut self,
        b: SimTime,
        kind: FaultKind,
        ctl: &mut EpochControl<'_, CampaignWorker<T>>,
    ) {
        match kind {
            FaultKind::LinkDown { a, b: other } => {
                let (na, nb) = (NodeId::new(a), NodeId::new(other));
                let ids = match self.master.fail_link(na, nb) {
                    Ok(ids) => ids,
                    Err(e) => panic!("fault plan could not be applied: {e}"),
                };
                for id in ids {
                    let (from, _, _, _) = self.master.link_meta(id);
                    let owner = self.master.region_of(from);
                    ctl.worker_mut(owner).net.link_mut(id).set_alive(false);
                    // Queued packets are evicted and re-routed from the
                    // sending side over the rebuilt tables.
                    let evicted = ctl.worker_mut(owner).net.evict_queued(id);
                    for pkt in evicted {
                        self.rerouted += 1;
                        let uid = pkt.uid;
                        ctl.inject(owner, b, tb_arrive(uid), Ev::Arrive { node: from, pkt });
                    }
                    // Drop-in-flight: condemn the packet on the wire. A
                    // ticket whose arrival already fired is stale.
                    let Some(ticket) = ctl.worker(owner).net.in_flight_ticket(id) else {
                        continue;
                    };
                    if ticket.arrive_at < b {
                        continue;
                    }
                    let dest_region = self.master.region_of(ticket.dest);
                    let uid = ticket.uid;
                    let condemned = ctl.extract_events(dest_region, |at, ev| {
                        at == ticket.arrive_at
                            && matches!(ev, Ev::Arrive { pkt, .. } if pkt.uid == uid)
                    });
                    if !condemned.is_empty() {
                        self.dropped += 1;
                        let requester = self.cpus[(ticket.tag >> 32) as usize];
                        let req_region = self.master.region_of(requester);
                        ctl.inject(
                            req_region,
                            ticket.arrive_at,
                            tb_arrive(uid),
                            Ev::DropNotice { tag: ticket.tag },
                        );
                    }
                }
                self.refresh_lookahead(ctl);
                self.republish(ctl);
            }
            FaultKind::LinkUp { a, b: other } => {
                let (na, nb) = (NodeId::new(a), NodeId::new(other));
                let ids = match self.master.link_ids(na, nb) {
                    Ok(ids) => ids,
                    Err(e) => panic!("fault plan could not be applied: {e}"),
                };
                if self.master.is_alive(ids[0]) {
                    // An alive link only heals if it was degraded;
                    // repairing a healthy full-speed link errs, exactly
                    // like the sequential engine.
                    let degraded = ids.iter().any(|&id| {
                        let (from, _, _, _) = self.master.link_meta(id);
                        ctl.worker(self.master.region_of(from))
                            .net
                            .link(id)
                            .is_degraded()
                    });
                    if !degraded {
                        let e = FaultError::AlreadyInState {
                            a: na,
                            b: nb,
                            alive: true,
                        };
                        panic!("fault plan could not be applied: {e}");
                    }
                    for &id in &ids {
                        let (from, _, _, _) = self.master.link_meta(id);
                        let owner = self.master.region_of(from);
                        ctl.worker_mut(owner).net.link_mut(id).set_degrade(1);
                    }
                } else {
                    if let Err(e) = self.master.revive_link(na, nb) {
                        panic!("fault plan could not be applied: {e}");
                    }
                    for id in ids {
                        let (from, _, _, _) = self.master.link_meta(id);
                        let owner = self.master.region_of(from);
                        let link = ctl.worker_mut(owner).net.link_mut(id);
                        link.set_alive(true);
                        link.set_degrade(1);
                    }
                    self.refresh_lookahead(ctl);
                    self.republish(ctl);
                }
            }
            FaultKind::LinkDegrade { a, b: other } => {
                let (na, nb) = (NodeId::new(a), NodeId::new(other));
                let ids = match self.master.link_ids(na, nb) {
                    Ok(ids) => ids,
                    Err(e) => panic!("fault plan could not be applied: {e}"),
                };
                if !self.master.is_alive(ids[0]) {
                    let e = FaultError::BadState {
                        a: na,
                        b: nb,
                        what: "is dead; cannot degrade",
                    };
                    panic!("fault plan could not be applied: {e}");
                }
                let (from0, _, _, _) = self.master.link_meta(ids[0]);
                if ctl
                    .worker(self.master.region_of(from0))
                    .net
                    .link(ids[0])
                    .is_degraded()
                {
                    let e = FaultError::BadState {
                        a: na,
                        b: nb,
                        what: "is already degraded",
                    };
                    panic!("fault plan could not be applied: {e}");
                }
                for id in ids {
                    let (from, _, _, _) = self.master.link_meta(id);
                    let owner = self.master.region_of(from);
                    ctl.worker_mut(owner)
                        .net
                        .link_mut(id)
                        .set_degrade(DEGRADE_FACTOR);
                }
            }
            FaultKind::FlitCorrupt { from, to } => {
                let (nf, nt) = (NodeId::new(from), NodeId::new(to));
                let id = match self.master.directed_link(nf, nt) {
                    Ok(id) => id,
                    Err(e) => panic!("fault plan could not be applied: {e}"),
                };
                if !self.master.is_alive(id) {
                    let e = FaultError::BadState {
                        a: nf,
                        b: nt,
                        what: "is dead; cannot corrupt a flit",
                    };
                    panic!("fault plan could not be applied: {e}");
                }
                let owner = self.master.region_of(nf);
                ctl.worker_mut(owner).net.link_mut(id).arm_corruption();
            }
            FaultKind::RouterPause { node, ps } => {
                let n = NodeId::new(node);
                let until = b + SimDuration::from_ps(ps);
                let region = self.master.region_of(n);
                let ids: Vec<usize> = self.master.links_from(n).to_vec();
                for id in ids {
                    if !self.master.is_alive(id) {
                        continue;
                    }
                    let was_idle = ctl.worker_mut(region).net.link_mut(id).pause(until);
                    if was_idle {
                        // The channel was idle: it now reads busy with
                        // nothing in flight, and this release at pause end
                        // restores the one-pending-LinkFree-per-busy-
                        // channel invariant.
                        ctl.inject(region, until, tb_link_free(id), Ev::LinkFree { link: id });
                    }
                }
            }
            FaultKind::NodeDrain { node } => {
                let n = NodeId::new(node);
                self.master.set_drained(n, true);
                if let Some(cpu) = self.cpus.iter().position(|c| c.index() == node) {
                    let region = self.master.region_of(n);
                    ctl.worker_mut(region).ever_drained[cpu] = true;
                }
                self.republish(ctl);
            }
            FaultKind::NodeUndrain { node } => {
                let n = NodeId::new(node);
                self.master.set_drained(n, false);
                self.republish(ctl);
                if let Some(cpu) = self.cpus.iter().position(|c| c.index() == node) {
                    // The node resumes service: refill its issue window so
                    // it works toward its quota again.
                    let region = self.master.region_of(self.cpus[cpu]);
                    ctl.inject(region, b, tb_inject(cpu), Ev::Inject { cpu });
                }
            }
            FaultKind::ChannelDown { node } => {
                let region = self.master.region_of(NodeId::new(node));
                ctl.worker_mut(region).zboxes[node]
                    .as_mut()
                    .expect("home node's zbox is owned by this region")
                    .fail_channel();
            }
            FaultKind::ChannelUp { node } => {
                let region = self.master.region_of(NodeId::new(node));
                let zbox = ctl.worker_mut(region).zboxes[node]
                    .as_mut()
                    .expect("home node's zbox is owned by this region");
                // Repair symmetry for the RDRAM channel loss; tolerate a
                // stray repair on a healthy Zbox.
                if zbox.failed_channels() > 0 {
                    zbox.restore_channel();
                }
            }
        }
    }

    /// One watchdog tick at barrier `now`: fold every region's delivery
    /// progress into the detector, check the merged pending sets, and (on
    /// monitored runs) escalate after [`STUCK_WINDOW_LIMIT`] consecutive
    /// silent windows so a broken recovery path cannot hang the harness.
    fn dog_tick(
        &mut self,
        now: SimTime,
        ctl: &mut EpochControl<'_, CampaignWorker<T>>,
    ) -> BarrierVerdict {
        let shard_count = ctl.shard_count();
        let progress = (0..shard_count)
            .map(|s| ctl.worker(s).last_delivery)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.dog.note_progress(progress);
        let sets: Vec<&PendingSet> = (0..shard_count).map(|s| &ctl.worker(s).pending).collect();
        match self.dog.check_many(now, &sets) {
            Some(report) => {
                self.reports.push(report);
                if self.monitored {
                    self.consecutive_stuck += 1;
                    if self.consecutive_stuck >= STUCK_WINDOW_LIMIT {
                        let mut tags: Vec<u64> = sets
                            .iter()
                            .flat_map(|set| set.iter().map(|(tag, _)| tag))
                            .collect();
                        tags.sort_unstable();
                        self.violations.push((
                            now.as_ps(),
                            "hung-transactions".to_string(),
                            format!(
                                "no delivery for {STUCK_WINDOW_LIMIT} watchdog windows; \
                                 stuck tags {tags:x?}"
                            ),
                        ));
                        return BarrierVerdict::Stop;
                    }
                }
            }
            None => self.consecutive_stuck = 0,
        }
        BarrierVerdict::Continue
    }
}
