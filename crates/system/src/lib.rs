//! Full machine models of the paper's four systems, assembled from the
//! substrate crates:
//!
//! * [`Gs1280`] — the Alpha 21364 torus machine under study (with optional
//!   shuffle rewiring and memory striping);
//! * [`Gs320`] — the previous-generation hierarchical-switch NUMA machine;
//! * [`Es45`] / [`Sc45`] — the 4-way SMP box and its Quadrics-style cluster.
//!
//! Each model exposes *analytic probes* (unloaded latencies, Figs. 4–5 and
//! 12–14; streaming bandwidth, Figs. 6–7) and *event-driven engines*
//! ([`loadtest`], Figs. 15, 18, 23–27) over one shared calibration
//! ([`Calibration`]), whose constants are each anchored to a number the
//! paper publishes.
//!
//! # Examples
//!
//! ```
//! use alphasim_system::Gs1280;
//! use alphasim_topology::NodeId;
//!
//! let m = Gs1280::builder().cpus(16).build();
//! // The paper's Fig. 13 corner values.
//! assert_eq!(m.local_latency(true).as_ns(), 83.0);
//! let grid = m.latency_grid(NodeId::new(0));
//! assert!((grid[2][2] - 259.0).abs() < 10.0); // worst case, 4 hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod calibration;
pub mod chaos;
mod coherent;
mod epoch;
mod es45;
pub mod faulty;
mod gs1280;
mod gs320;
mod io;
pub mod loadtest;
pub mod obs;
pub mod path;

pub use calibration::{Calibration, MachineKind};
pub use chaos::{
    catalog_for, replay, replay_healthy, run_chaos, ChaosOptions, ChaosReport, ChaosTrial,
    Reproducer,
};
pub use coherent::{CoherentMachine, CoherentOutcome, CoherentStats, MachineModel, ServiceClass};
pub use es45::{Es45, Sc45};
pub use faulty::{
    gs1280_fault_campaign, CampaignPattern, CampaignResult, CampaignTelemetry, FaultCampaign,
    FaultCampaignConfig, MonitorReport, PoisonedTx, RecoveryMutation, Violation,
};
pub use gs1280::{FabricTopo, Gs1280, Gs1280Builder};
pub use gs320::Gs320;
pub use io::IoSubsystem;
pub use obs::{CampaignObservability, ObserveOptions};
