//! The paper's load test (§4, Fig. 15): every CPU keeps a fixed number of
//! outstanding read requests to randomly selected other CPUs, and we measure
//! delivered bandwidth against observed latency as the window grows.
//!
//! The same closed-loop engine drives the shuffle experiment (Fig. 18), the
//! GUPS throughput study (Figs. 23–24) and the hot-spot striping experiment
//! (Figs. 26–27): they differ only in traffic pattern and window size.

use std::collections::BTreeMap;

use alphasim_cache::Addr;
use alphasim_kernel::{DetRng, SimDuration, SimTime};
use alphasim_mem::{Zbox, ZboxConfig};
use alphasim_net::{Delivery, MessageClass, NetworkSim, Step};
use alphasim_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// How CPUs pick the home of each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Each request goes to a uniformly random *other* CPU (the paper's
    /// load test and GUPS).
    UniformRemote,
    /// All CPUs read from one CPU's memory (Fig. 26's hot spot).
    HotSpot(usize),
    /// Hot-spot traffic with memory striping: requests alternate between
    /// the hot CPU and its module partner (§6).
    StripedHotSpot(usize, usize),
}

/// Parameters of one load-test run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadTestConfig {
    /// Outstanding requests per CPU (the paper sweeps 1..=30).
    pub outstanding: usize,
    /// Requests each CPU completes before the run ends.
    pub requests_per_cpu: usize,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// If set, capture an Xmesh-style utilization sample every this many
    /// nanoseconds of simulated time (interval utilizations, like the
    /// paper's strip charts).
    pub sample_interval_ns: Option<f64>,
}

impl Default for LoadTestConfig {
    fn default() -> Self {
        LoadTestConfig {
            outstanding: 1,
            requests_per_cpu: 200,
            pattern: TrafficPattern::UniformRemote,
            seed: 0x6A1280,
            sample_interval_ns: None,
        }
    }
}

/// One Xmesh-style sample captured mid-run: interval utilizations over the
/// preceding sampling window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilSample {
    /// Sample time, ns.
    pub at_ns: f64,
    /// Per-CPU Zbox interval utilization.
    pub zbox: Vec<f64>,
    /// Mean East–West link interval utilization.
    pub east_west: f64,
    /// Mean North–South link interval utilization.
    pub north_south: f64,
}

/// Per-node measurements after a run (what Xmesh displays, Fig. 27).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStat {
    /// The CPU node.
    pub node: usize,
    /// Its memory controller's busy fraction.
    pub zbox_utilization: f64,
    /// Mean utilization of its outgoing fabric links.
    pub ip_utilization: f64,
}

/// The outcome of one load-test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTestResult {
    /// Mean end-to-end read latency (request injection to data return,
    /// including the front-end overhead).
    pub mean_latency: SimDuration,
    /// Aggregate delivered read bandwidth, GB/s (64 B per completed read).
    pub delivered_gbps: f64,
    /// Completed reads.
    pub completed: u64,
    /// Wall-clock span of the run.
    pub elapsed: SimDuration,
    /// Mean utilization of horizontal (East–West) torus links.
    pub horizontal_util: f64,
    /// Mean utilization of vertical (North–South) torus links.
    pub vertical_util: f64,
    /// Per-CPU statistics.
    pub nodes: Vec<NodeStat>,
    /// Mid-run Xmesh samples (empty unless
    /// [`LoadTestConfig::sample_interval_ns`] was set).
    pub samples: Vec<UtilSample>,
}

/// A machine prepared for load testing: a network plus the memory sites
/// behind it.
pub struct LoadTest<T: Topology> {
    net: NetworkSim<T>,
    /// Memory site (node holding the Zbox) of each CPU's memory.
    site_of_cpu: Vec<NodeId>,
    /// CPU endpoints that generate traffic.
    cpus: Vec<NodeId>,
    /// One controller per distinct memory site.
    zboxes: BTreeMap<usize, Zbox>,
    /// Front-end (cache miss detect) charge reported per transaction.
    front_overhead: SimDuration,
    /// Directory processing time at the home before memory is accessed.
    directory_overhead: SimDuration,
}

impl<T: Topology> LoadTest<T> {
    /// Assemble a load test over `net`.
    ///
    /// `site_of_cpu[i]` is the node where CPU `i`'s memory lives (itself on
    /// the GS1280; the QBB switch on the GS320); each distinct site gets one
    /// controller configured as `zbox`.
    ///
    /// # Panics
    ///
    /// Panics if `site_of_cpu` is empty or shorter than the CPU list.
    pub fn new(
        net: NetworkSim<T>,
        site_of_cpu: Vec<NodeId>,
        zbox: ZboxConfig,
        front_overhead: SimDuration,
        directory_overhead: SimDuration,
    ) -> Self {
        let cpus = net.topology().endpoints();
        assert!(!cpus.is_empty(), "no CPU endpoints");
        assert!(
            site_of_cpu.len() >= cpus.len(),
            "need a memory site per CPU"
        );
        let mut zboxes = BTreeMap::new();
        for site in &site_of_cpu {
            zboxes
                .entry(site.index())
                .or_insert_with(|| Zbox::new(zbox));
        }
        LoadTest {
            net,
            site_of_cpu,
            cpus,
            zboxes,
            front_overhead,
            directory_overhead,
        }
    }

    fn pick_target(&self, cfg: &LoadTestConfig, cpu: usize, rng: &mut DetRng, seq: u64) -> usize {
        match cfg.pattern {
            TrafficPattern::UniformRemote => {
                if self.cpus.len() == 1 {
                    0
                } else {
                    rng.index_excluding(self.cpus.len(), cpu)
                }
            }
            TrafficPattern::HotSpot(hot) => hot,
            TrafficPattern::StripedHotSpot(hot, partner) => {
                if seq.is_multiple_of(2) {
                    hot
                } else {
                    partner
                }
            }
        }
    }

    /// Run the closed loop to completion.
    pub fn run(mut self, cfg: &LoadTestConfig) -> LoadTestResult {
        assert!(cfg.outstanding >= 1, "need at least one outstanding read");
        let ncpus = self.cpus.len();
        let mut rngs: Vec<DetRng> = (0..ncpus)
            .map(|i| DetRng::seeded(cfg.seed).split(i as u64))
            .collect();
        let mut issued = vec![0u64; ncpus];
        let mut start_of: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut total_latency = SimDuration::ZERO;
        let mut completed = 0u64;

        // Prime the windows.
        let mut to_inject: Vec<(usize, SimTime)> = Vec::new();
        for cpu in 0..ncpus {
            for _ in 0..cfg.outstanding.min(cfg.requests_per_cpu) {
                to_inject.push((cpu, SimTime::ZERO));
            }
        }
        for (cpu, at) in to_inject {
            self.inject(cfg, cpu, at, &mut rngs, &mut issued, &mut start_of);
        }

        let mut samples: Vec<UtilSample> = Vec::new();
        let mut sampler = cfg.sample_interval_ns.map(|interval_ns| Sampler {
            interval: SimDuration::from_ns(interval_ns),
            next_at: SimTime::ZERO + SimDuration::from_ns(interval_ns),
            prev_zbox_busy: vec![SimDuration::ZERO; ncpus],
            prev_ew_busy: SimDuration::ZERO,
            prev_ns_busy: SimDuration::ZERO,
        });

        while let Some(step) = self.net.step() {
            if let Some(s) = sampler.as_mut() {
                while self.net.now() >= s.next_at {
                    samples.push(s.capture(&self.net, &self.cpus, &self.site_of_cpu, &self.zboxes));
                }
            }
            let Step::Delivered(d) = step else { continue };
            match d.class {
                MessageClass::Request => self.serve_at_home(&d),
                MessageClass::BlockResponse => {
                    let cpu = (d.tag >> 32) as usize;
                    let started = start_of.remove(&d.tag).expect("unknown response tag");
                    total_latency += d.delivered_at.since(started) + self.front_overhead;
                    completed += 1;
                    if issued[cpu] < cfg.requests_per_cpu as u64 {
                        let now = self.net.now();
                        self.inject(cfg, cpu, now, &mut rngs, &mut issued, &mut start_of);
                    }
                }
                other => panic!("unexpected class {other:?}"),
            }
        }

        let elapsed = self.net.now().since(SimTime::ZERO);
        let delivered_gbps = if elapsed > SimDuration::ZERO {
            completed as f64 * 64.0 / elapsed.as_secs() / 1e9
        } else {
            0.0
        };
        let now = self.net.now();
        let nodes = self
            .cpus
            .iter()
            .map(|&cpu| NodeStat {
                node: cpu.index(),
                zbox_utilization: self
                    .zboxes
                    .get(&self.site_of_cpu[cpu.index()].index())
                    .map_or(0.0, |z| z.utilization(now)),
                ip_utilization: self.net.node_ip_utilization(cpu),
            })
            .collect();
        LoadTestResult {
            mean_latency: if completed == 0 {
                SimDuration::ZERO
            } else {
                total_latency / completed
            },
            delivered_gbps,
            completed,
            elapsed,
            horizontal_util: self
                .net
                .mean_utilization_where(|d| d.is_some_and(|d| d.is_horizontal())),
            vertical_util: self
                .net
                .mean_utilization_where(|d| d.is_some_and(|d| !d.is_horizontal())),
            nodes,
            samples,
        }
    }

    fn inject(
        &mut self,
        cfg: &LoadTestConfig,
        cpu: usize,
        at: SimTime,
        rngs: &mut [DetRng],
        issued: &mut [u64],
        start_of: &mut BTreeMap<u64, SimTime>,
    ) {
        let seq = issued[cpu];
        issued[cpu] += 1;
        let target = self.pick_target(cfg, cpu, &mut rngs[cpu], seq);
        let site = self.site_of_cpu[self.cpus[target].index()];
        let tag = ((cpu as u64) << 32) | seq;
        start_of.insert(tag, at);
        self.net
            .send(at, self.cpus[cpu], site, MessageClass::Request, 16, tag);
    }

    /// A request reached the home: directory + memory, then the response.
    fn serve_at_home(&mut self, d: &Delivery) {
        let now = self.net.now();
        let zbox = self
            .zboxes
            .get_mut(&d.dst.index())
            .expect("request delivered to a non-memory site");
        // Synthesize a random-ish line address from the tag so the page
        // table sees load-test-like (page-unfriendly) behaviour.
        let addr = Addr::new((d.tag.wrapping_mul(0x9E3779B97F4A7C15) >> 16) & 0x3FFF_FFC0);
        let acc = zbox.access(now + self.directory_overhead, addr, 64);
        let requester = NodeId::new((d.tag >> 32) as usize);
        let requester = self.cpus[requester.index()];
        self.net.send(
            acc.completed,
            d.dst,
            requester,
            MessageClass::BlockResponse,
            80,
            d.tag,
        );
    }
}

/// Interval-sampling state for the Xmesh strip charts.
struct Sampler {
    interval: SimDuration,
    next_at: SimTime,
    prev_zbox_busy: Vec<SimDuration>,
    prev_ew_busy: SimDuration,
    prev_ns_busy: SimDuration,
}

impl Sampler {
    fn capture<T: Topology>(
        &mut self,
        net: &NetworkSim<T>,
        cpus: &[NodeId],
        site_of_cpu: &[NodeId],
        zboxes: &BTreeMap<usize, Zbox>,
    ) -> UtilSample {
        let window = self.interval.as_ps() as f64;
        let mut zbox = Vec::with_capacity(cpus.len());
        for (i, &cpu) in cpus.iter().enumerate() {
            let busy = zboxes
                .get(&site_of_cpu[cpu.index()].index())
                .map_or(SimDuration::ZERO, Zbox::busy_time);
            let delta = busy - self.prev_zbox_busy[i].min(busy);
            self.prev_zbox_busy[i] = busy;
            zbox.push((delta.as_ps() as f64 / window).min(1.0));
        }
        let ew = net.mean_busy_where(|d| d.is_some_and(|d| d.is_horizontal()));
        let ns = net.mean_busy_where(|d| d.is_some_and(|d| !d.is_horizontal()));
        let ew_delta = ew - self.prev_ew_busy.min(ew);
        let ns_delta = ns - self.prev_ns_busy.min(ns);
        self.prev_ew_busy = ew;
        self.prev_ns_busy = ns;
        let sample = UtilSample {
            at_ns: SimTime::from_ps(self.next_at.as_ps()).as_ns(),
            zbox,
            east_west: (ew_delta.as_ps() as f64 / window).min(1.0),
            north_south: (ns_delta.as_ps() as f64 / window).min(1.0),
        };
        self.next_at += self.interval;
        sample
    }
}

/// Convenience: a load test over a GS1280.
pub fn gs1280_load_test(machine: &crate::Gs1280) -> LoadTest<crate::gs1280::FabricTopo> {
    let calib = machine.calibration();
    let cpus = machine.cpus();
    // Both Zboxes of a node serve the load test: double the per-controller
    // bandwidth.
    let zbox = ZboxConfig {
        bandwidth_gbps: calib.zbox.bandwidth_gbps * 2.0,
        ..calib.zbox
    };
    LoadTest::new(
        machine.network(),
        (0..cpus).map(NodeId::new).collect(),
        zbox,
        calib.local_fixed,
        calib.remote_fixed,
    )
}

/// Convenience: a load test over a GS320.
pub fn gs320_load_test(machine: &crate::Gs320) -> LoadTest<alphasim_topology::QbbTree> {
    let calib = machine.calibration();
    let sites = (0..machine.cpus())
        .map(|c| machine.memory_site(NodeId::new(c)))
        .collect();
    LoadTest::new(
        machine.network(),
        sites,
        calib.zbox,
        calib.local_fixed,
        calib.remote_fixed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gs1280, Gs320};

    fn run16(outstanding: usize) -> LoadTestResult {
        let m = Gs1280::builder().cpus(16).build();
        gs1280_load_test(&m).run(&LoadTestConfig {
            outstanding,
            requests_per_cpu: 100,
            ..Default::default()
        })
    }

    #[test]
    fn all_requests_complete() {
        let r = run16(4);
        assert_eq!(r.completed, 16 * 100);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn single_outstanding_latency_is_near_unloaded_average() {
        let r = run16(1);
        // Unloaded random-pair average on 16P is ~190 ns (Fig. 12); the
        // event-driven path adds serialization and closed-page penalties, so
        // accept a generous band.
        let ns = r.mean_latency.as_ns();
        assert!((150.0..320.0).contains(&ns), "latency {ns}");
    }

    #[test]
    fn bandwidth_grows_with_window_then_latency_rises() {
        let light = run16(1);
        let heavy = run16(16);
        assert!(heavy.delivered_gbps > light.delivered_gbps * 3.0);
        assert!(heavy.mean_latency > light.mean_latency);
    }

    #[test]
    fn gs320_saturates_far_below_gs1280() {
        let g = Gs320::new(16);
        let r320 = gs320_load_test(&g).run(&LoadTestConfig {
            outstanding: 8,
            requests_per_cpu: 60,
            ..Default::default()
        });
        let r1280 = run16(8);
        assert!(
            r1280.delivered_gbps > 4.0 * r320.delivered_gbps,
            "GS1280 {} vs GS320 {}",
            r1280.delivered_gbps,
            r320.delivered_gbps
        );
        assert!(r320.mean_latency > r1280.mean_latency * 2);
    }

    #[test]
    fn hot_spot_saturates_one_node() {
        let m = Gs1280::builder().cpus(16).build();
        let r = gs1280_load_test(&m).run(&LoadTestConfig {
            outstanding: 8,
            requests_per_cpu: 60,
            pattern: TrafficPattern::HotSpot(0),
            ..Default::default()
        });
        let hot = r.nodes[0].zbox_utilization;
        let others: f64 = r.nodes[1..].iter().map(|n| n.zbox_utilization).sum::<f64>() / 15.0;
        assert!(hot > 0.3, "hot node util {hot}");
        assert_eq!(others, 0.0, "only node 0 serves memory");
    }

    #[test]
    fn striped_hot_spot_outperforms_plain_hot_spot() {
        // Fig. 26: striping spreads a hot spot over two CPUs.
        let m = Gs1280::builder().cpus(16).build();
        let plain = gs1280_load_test(&m).run(&LoadTestConfig {
            outstanding: 12,
            requests_per_cpu: 60,
            pattern: TrafficPattern::HotSpot(0),
            ..Default::default()
        });
        let striped = gs1280_load_test(&m).run(&LoadTestConfig {
            outstanding: 12,
            requests_per_cpu: 60,
            pattern: TrafficPattern::StripedHotSpot(0, 4),
            ..Default::default()
        });
        assert!(
            striped.delivered_gbps > plain.delivered_gbps * 1.2,
            "striped {} plain {}",
            striped.delivered_gbps,
            plain.delivered_gbps
        );
        assert!(striped.mean_latency < plain.mean_latency);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run16(4);
        let b = run16(4);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.delivered_gbps, b.delivered_gbps);
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;
    use crate::Gs1280;

    #[test]
    fn sampler_produces_periodic_interval_utilizations() {
        let m = Gs1280::builder().cpus(16).build();
        let r = gs1280_load_test(&m).run(&LoadTestConfig {
            outstanding: 8,
            requests_per_cpu: 150,
            sample_interval_ns: Some(1_000.0),
            ..Default::default()
        });
        assert!(r.samples.len() >= 3, "{} samples", r.samples.len());
        for (i, s) in r.samples.iter().enumerate() {
            assert_eq!(s.zbox.len(), 16);
            assert!((s.at_ns - 1_000.0 * (i + 1) as f64).abs() < 1e-6);
            for &u in &s.zbox {
                assert!((0.0..=1.0).contains(&u));
            }
            assert!((0.0..=1.0).contains(&s.east_west));
            assert!((0.0..=1.0).contains(&s.north_south));
        }
        // Under sustained uniform load the mid-run samples show traffic.
        let mid = &r.samples[r.samples.len() / 2];
        assert!(
            mid.east_west + mid.north_south > 0.01,
            "links idle mid-run: {mid:?}"
        );
    }

    #[test]
    fn no_sampling_by_default() {
        let m = Gs1280::builder().cpus(8).build();
        let r = gs1280_load_test(&m).run(&LoadTestConfig {
            outstanding: 2,
            requests_per_cpu: 20,
            ..Default::default()
        });
        assert!(r.samples.is_empty());
    }
}
