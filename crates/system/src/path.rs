//! Minimum-latency paths over a fabric: Dijkstra with per-link-class hop
//! weights. The adaptive router picks among minimal paths; for unloaded
//! latency probes the cheapest one is what a dependent load observes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alphasim_kernel::SimDuration;
use alphasim_net::LinkTiming;
use alphasim_topology::{NodeId, Topology};

/// One-way minimum latency from `src` to every node, where each hop costs
/// `timing.hop(link class)`.
pub fn one_way_latencies<T: Topology + ?Sized>(
    topo: &T,
    timing: &LinkTiming,
    src: NodeId,
) -> Vec<SimDuration> {
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0u64, src.index())));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for p in topo.ports(NodeId::new(u)) {
            let w = timing.hop(p.class).as_ps();
            let nd = d + w;
            if nd < dist[p.to.index()] {
                dist[p.to.index()] = nd;
                heap.push(Reverse((nd, p.to.index())));
            }
        }
    }
    dist.into_iter()
        .map(|d| {
            assert!(d != u64::MAX, "fabric is disconnected");
            SimDuration::from_ps(d)
        })
        .collect()
}

/// One-way minimum latency between two nodes.
pub fn one_way_latency<T: Topology + ?Sized>(
    topo: &T,
    timing: &LinkTiming,
    src: NodeId,
    dst: NodeId,
) -> SimDuration {
    one_way_latencies(topo, timing, src)[dst.index()]
}

/// All-pairs one-way latencies (indexed `[src][dst]`).
pub fn all_pairs<T: Topology + ?Sized>(topo: &T, timing: &LinkTiming) -> Vec<Vec<SimDuration>> {
    (0..topo.node_count())
        .map(|s| one_way_latencies(topo, timing, NodeId::new(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_topology::{Coord, Torus2D};

    #[test]
    fn one_hop_costs_match_link_class() {
        let t = Torus2D::new(4, 4);
        let timing = LinkTiming::ev7_torus();
        let from0 = one_way_latencies(&t, &timing, NodeId::new(0));
        // East board neighbor: 20.5 ns; module neighbor (0,1): 17.5 ns;
        // wrap cable neighbors: 25 ns.
        assert_eq!(from0[t.node_at(Coord::new(1, 0)).index()].as_ns(), 20.5);
        assert_eq!(from0[t.node_at(Coord::new(0, 1)).index()].as_ns(), 17.5);
        assert_eq!(from0[t.node_at(Coord::new(3, 0)).index()].as_ns(), 25.0);
        assert_eq!(from0[t.node_at(Coord::new(0, 3)).index()].as_ns(), 25.0);
    }

    #[test]
    fn paths_are_symmetric_on_the_torus() {
        let t = Torus2D::new(8, 4);
        let timing = LinkTiming::ev7_torus();
        let ap = all_pairs(&t, &timing);
        for (a, row) in ap.iter().enumerate() {
            for (b, &ab) in row.iter().enumerate() {
                assert_eq!(ab, ap[b][a]);
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let t = Torus2D::new(4, 4);
        let timing = LinkTiming::ev7_torus();
        let ap = all_pairs(&t, &timing);
        for a in 0..16 {
            for b in 0..16 {
                for c in 0..16 {
                    assert!(ap[a][c] <= ap[a][b] + ap[b][c]);
                }
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let t = Torus2D::new(4, 2);
        let timing = LinkTiming::ev7_torus();
        for s in 0..8 {
            assert_eq!(
                one_way_latency(&t, &timing, NodeId::new(s), NodeId::new(s)),
                SimDuration::ZERO
            );
        }
    }
}
