//! The I/O subsystem (paper §2, §7).
//!
//! Each EV7 drives an I/O chip over a full-duplex link "capable of
//! 3.1 GB/s"; on the GS1280 every CPU can host an I/O port, so aggregate
//! I/O bandwidth scales with the machine — one of Fig. 28's ~8× rows.
//! On the GS320 a handful of PCI bridges hang off the QBBs; on the ES45 a
//! single box shares its host bridges.

use serde::{Deserialize, Serialize};

use crate::calibration::{Calibration, MachineKind};

/// An I/O subsystem configuration: how many ports and what each sustains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoSubsystem {
    /// Machine this belongs to.
    pub kind: MachineKind,
    /// Number of I/O ports (per-CPU on GS1280, per-QBB on GS320, per-box
    /// otherwise).
    pub ports: usize,
    /// Sustained bandwidth per port, GB/s, each direction.
    pub per_port_gbps: f64,
    /// Memory bandwidth headroom per port's host, GB/s — DMA ultimately
    /// lands in memory, so a port cannot stream faster than its host
    /// controller sustains (the CPU is idle during pure streaming).
    pub host_headroom_gbps: f64,
}

impl IoSubsystem {
    /// The I/O subsystem of a machine with `cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn for_machine(calib: &Calibration, cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        let ports = match calib.kind {
            MachineKind::Gs1280 => cpus,
            MachineKind::Gs320 => cpus.div_ceil(4),
            MachineKind::Es45 | MachineKind::Sc45 => cpus.div_ceil(4),
        };
        IoSubsystem {
            kind: calib.kind,
            ports,
            per_port_gbps: calib.io_gbps_per_site,
            host_headroom_gbps: calib.sustained_mem_gbps,
        }
    }

    /// Effective per-port streaming bandwidth: the link, capped by what the
    /// host memory system can absorb.
    pub fn effective_port_gbps(&self) -> f64 {
        self.per_port_gbps.min(self.host_headroom_gbps)
    }

    /// Aggregate sustainable I/O bandwidth, GB/s.
    pub fn aggregate_gbps(&self) -> f64 {
        self.ports as f64 * self.effective_port_gbps()
    }

    /// Time in seconds to stream `bytes` through all ports in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the subsystem has zero aggregate bandwidth.
    pub fn stream_seconds(&self, bytes: u64) -> f64 {
        let agg = self.aggregate_gbps();
        assert!(agg > 0.0, "I/O subsystem has no bandwidth");
        bytes as f64 / (agg * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gs1280_io_scales_per_cpu() {
        let c = Calibration::gs1280();
        let io16 = IoSubsystem::for_machine(&c, 16);
        let io32 = IoSubsystem::for_machine(&c, 32);
        assert_eq!(io16.ports, 16);
        assert_eq!(io32.ports, 32);
        assert!((io32.aggregate_gbps() - 2.0 * io16.aggregate_gbps()).abs() < 1e-9);
    }

    #[test]
    fn fig28_io_ratio_near_8x_at_32p() {
        let g = IoSubsystem::for_machine(&Calibration::gs1280(), 32);
        let q = IoSubsystem::for_machine(&Calibration::gs320(), 32);
        let ratio = g.aggregate_gbps() / q.aggregate_gbps();
        assert!((6.0..=10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn port_cannot_outrun_host_memory() {
        let mut io = IoSubsystem::for_machine(&Calibration::gs1280(), 4);
        io.host_headroom_gbps = 1.0;
        assert_eq!(io.effective_port_gbps(), 1.0);
    }

    #[test]
    fn stream_time_matches_bandwidth() {
        let io = IoSubsystem::for_machine(&Calibration::gs1280(), 8);
        let secs = io.stream_seconds(24_800_000_000);
        // 8 x 3.1 GB/s = 24.8 GB/s: one second for 24.8 GB.
        assert!((secs - 1.0).abs() < 1e-9);
    }
}
