//! The ES45 4-way SMP and the SC45 cluster built from it.

use alphasim_kernel::SimDuration;
use alphasim_topology::{NodeId, StarCluster};

use crate::calibration::Calibration;
use crate::path;

/// An ES45: four Alpha 21264 CPUs sharing one memory system over a crossbar
/// (paper §1, ref.\[4\]). All memory is equidistant; there is no remote level.
///
/// # Examples
///
/// ```
/// use alphasim_system::Es45;
/// let m = Es45::new(4);
/// assert_eq!(m.local_latency(true).as_ns(), 185.0);
/// ```
#[derive(Debug, Clone)]
pub struct Es45 {
    calib: Calibration,
    cpus: usize,
}

impl Es45 {
    /// An ES45 with `cpus` processors (1..=4).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or greater than 4.
    pub fn new(cpus: usize) -> Self {
        assert!((1..=4).contains(&cpus), "ES45 holds 1..=4 CPUs");
        Es45 {
            calib: Calibration::es45(),
            cpus,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The machine's calibration bundle.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Memory load-to-use latency (Fig. 4's ~185 ns plateau).
    pub fn local_latency(&self, page_hit: bool) -> SimDuration {
        let dram = if page_hit {
            self.calib.zbox.open_page_latency
        } else {
            self.calib.zbox.closed_page_latency
        };
        self.calib.local_fixed + dram
    }

    /// Read latency between CPUs is the same as local — one shared memory.
    pub fn read_clean(&self, _requester: NodeId, _home: NodeId) -> SimDuration {
        self.local_latency(true)
    }

    /// Dirty reads snoop the owner's off-chip cache over the shared fabric.
    pub fn read_dirty(&self) -> SimDuration {
        self.local_latency(true) + self.calib.dirty_serve + self.calib.dirty_penalty
    }

    /// Counted STREAM-triad bandwidth with `active` CPUs: per-CPU MSHR
    /// demand against the box's shared sustained bandwidth (Fig. 7's
    /// 2.1 → 2.8 GB/s).
    pub fn stream_triad_gbps(&self, active: usize) -> f64 {
        assert!(
            active >= 1 && active <= self.cpus,
            "active CPUs out of range"
        );
        let latency = self.local_latency(true);
        let per_cpu = self.calib.mshrs as f64 * 64.0 / latency.as_secs() / 1e9;
        (active as f64 * per_cpu).min(self.calib.sustained_mem_gbps) * 0.75
    }
}

/// An SC45: ES45 boxes joined by a Quadrics-style cluster interconnect.
/// Shared-memory behaviour exists only within a box; cross-box communication
/// is message passing over the cluster fabric.
#[derive(Debug, Clone)]
pub struct Sc45 {
    calib: Calibration,
    topo: StarCluster,
    one_way: Vec<Vec<SimDuration>>,
}

impl Sc45 {
    /// An SC45 with `cpus` processors (multiples of 4).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is not a positive multiple of 4.
    pub fn new(cpus: usize) -> Self {
        let calib = Calibration::sc45();
        let topo = StarCluster::new(cpus);
        let one_way = path::all_pairs(&topo, &calib.timing);
        Sc45 {
            calib,
            topo,
            one_way,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.topo.cpus()
    }

    /// The machine's calibration bundle.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// The cluster topology.
    pub fn topology(&self) -> &StarCluster {
        &self.topo
    }

    /// Local (in-box) memory latency.
    pub fn local_latency(&self, page_hit: bool) -> SimDuration {
        Es45::new(4).local_latency(page_hit)
    }

    /// One-way cost of an MPI-style message between two CPUs: in-box
    /// exchanges go through shared memory; cross-box messages cross the
    /// cluster switch (microseconds).
    pub fn message_latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        if self.topo.same_box(from, to) {
            // Shared-memory exchange: a couple of cache-to-cache transfers.
            return SimDuration::from_ns(500.0);
        }
        self.one_way[from.index()][to.index()]
    }

    /// Counted STREAM-triad bandwidth: boxes scale linearly, CPUs within a
    /// box share (Fig. 6's SC45 estimate).
    pub fn stream_triad_gbps(&self, active: usize) -> f64 {
        assert!(
            active >= 1 && active <= self.cpus(),
            "active CPUs out of range"
        );
        let mut remaining = active;
        let mut total = 0.0;
        let per_box = Es45::new(4);
        while remaining > 0 {
            let here = remaining.min(4);
            total += per_box.stream_triad_gbps(here);
            remaining -= here;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn es45_latency_matches_fig4() {
        let m = Es45::new(4);
        assert_eq!(m.local_latency(true).as_ns(), 185.0);
        assert!(m.local_latency(false) > m.local_latency(true));
        assert_eq!(
            m.read_clean(NodeId::new(0), NodeId::new(3)),
            m.local_latency(true)
        );
    }

    #[test]
    fn es45_stream_matches_fig7() {
        let m = Es45::new(4);
        let one = m.stream_triad_gbps(1);
        let four = m.stream_triad_gbps(4);
        assert!((one - 2.08).abs() < 0.1, "1-CPU {one}");
        assert!((four - 2.775).abs() < 0.1, "4-CPU {four}");
        assert!(four < 2.0 * one, "bus sharing must bite");
    }

    #[test]
    fn machine_ordering_on_stream() {
        // Fig. 7: GS1280 > ES45 > GS320 at both 1 and 4 CPUs.
        use crate::gs1280::Gs1280;
        use crate::gs320::Gs320;
        let g1280 = Gs1280::builder().cpus(4).build();
        let gs320 = Gs320::new(4);
        let es45 = Es45::new(4);
        for n in [1usize, 4] {
            let a = g1280.stream_triad_gbps(n);
            let b = es45.stream_triad_gbps(n);
            let c = gs320.stream_triad_gbps(n);
            assert!(a > b && b > c, "n={n}: {a} {b} {c}");
        }
    }

    #[test]
    fn sc45_messages_cost_more_across_boxes() {
        let m = Sc45::new(16);
        let inbox = m.message_latency(NodeId::new(0), NodeId::new(3));
        let cross = m.message_latency(NodeId::new(0), NodeId::new(4));
        assert!(cross > inbox * 4, "in {inbox} cross {cross}");
    }

    #[test]
    fn sc45_stream_scales_by_box() {
        let m = Sc45::new(16);
        let four = m.stream_triad_gbps(4);
        let sixteen = m.stream_triad_gbps(16);
        assert!((sixteen - 4.0 * four).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn es45_rejects_large_counts() {
        let _ = Es45::new(5);
    }
}
