//! The HP AlphaServer GS1280 machine model.

use alphasim_cache::Addr;
use alphasim_kernel::SimDuration;
use alphasim_mem::{AddressMap, Interleave};
use alphasim_net::{LinkTiming, NetworkSim};
use alphasim_topology::route::RoutePolicy;
use alphasim_topology::{Coord, NodeId, Port, ShuffleTorus, Topology, Torus2D};
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::path;

/// The GS1280's fabric: a plain torus, or the shuffle rewiring of §4.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FabricTopo {
    /// Standard 2-D torus.
    Torus(Torus2D),
    /// Shuffle (twisted torus).
    Shuffle(ShuffleTorus),
}

impl Topology for FabricTopo {
    fn name(&self) -> String {
        match self {
            FabricTopo::Torus(t) => t.name(),
            FabricTopo::Shuffle(s) => s.name(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            FabricTopo::Torus(t) => t.node_count(),
            FabricTopo::Shuffle(s) => s.node_count(),
        }
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        match self {
            FabricTopo::Torus(t) => t.ports(node),
            FabricTopo::Shuffle(s) => s.ports(node),
        }
    }

    fn is_endpoint(&self, _node: NodeId) -> bool {
        true
    }

    fn coord(&self, node: NodeId) -> Option<Coord> {
        match self {
            FabricTopo::Torus(t) => t.coord(node),
            FabricTopo::Shuffle(s) => s.coord(node),
        }
    }
}

/// Builder for a [`Gs1280`].
///
/// # Examples
///
/// ```
/// use alphasim_system::Gs1280;
/// let machine = Gs1280::builder().cpus(16).build();
/// assert_eq!(machine.cpus(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Gs1280Builder {
    cpus: usize,
    shape: Option<(usize, usize)>,
    shuffle: Option<RoutePolicy>,
    striping: bool,
    mem_per_cpu: u64,
    shards: usize,
    threads: usize,
}

impl Gs1280Builder {
    /// Number of CPUs (one of the paper's machine sizes: 2–64, plus the
    /// projected 128 and 256). Clears any explicit [`shape`](Self::shape).
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self.shape = None;
        self
    }

    /// Explicit torus dimensions (`cols` × `rows` CPUs), for shapes
    /// outside the standard [`cpus`](Self::cpus) table — e.g. resilience
    /// studies that scale the fabric one axis at a time.
    pub fn shape(mut self, cols: usize, rows: usize) -> Self {
        self.cpus = cols * rows;
        self.shape = Some((cols, rows));
        self
    }

    /// Rewire into the shuffle interconnect, routing shuffle links under
    /// `policy` (Fig. 18's "1-hop" / "2-hop" experiments).
    pub fn shuffle(mut self, policy: RoutePolicy) -> Self {
        self.shuffle = Some(policy);
        self
    }

    /// Enable memory striping across module pairs (§6).
    pub fn striping(mut self, on: bool) -> Self {
        self.striping = on;
        self
    }

    /// Memory per CPU in bytes (default 1 GiB).
    pub fn mem_per_cpu(mut self, bytes: u64) -> Self {
        self.mem_per_cpu = bytes;
        self
    }

    /// Event-queue region shards for every [`network`](Gs1280::network)
    /// this machine hands out (`0`, the default, resolves via
    /// [`alphasim_kernel::par::shards`]). Sharding repartitions the queue
    /// by torus row band without changing any result byte.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Worker threads for every fault campaign this machine hands out
    /// (`0`, the default, resolves via
    /// [`alphasim_kernel::par::threads`]). Threads drive the region shards
    /// on real cores without changing any result byte.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Construct the machine.
    ///
    /// # Panics
    ///
    /// Panics on unsupported CPU counts, or when shuffle is requested for a
    /// shape the rewiring does not support (fewer than 4 columns).
    pub fn build(self) -> Gs1280 {
        let torus = match self.shape {
            Some((cols, rows)) => Torus2D::new(cols, rows),
            None => Torus2D::for_cpus(self.cpus),
        };
        let (fabric, policy) = match self.shuffle {
            None => (FabricTopo::Torus(torus), RoutePolicy::Minimal),
            Some(policy) => (
                FabricTopo::Shuffle(ShuffleTorus::new(torus.cols(), torus.rows())),
                policy,
            ),
        };
        let calib = Calibration::gs1280();
        let one_way = path::all_pairs(&fabric, &calib.timing);
        let interleave = if self.striping {
            Interleave::StripedPairs
        } else {
            Interleave::PerCpu
        };
        Gs1280 {
            calib,
            fabric,
            policy,
            map: AddressMap::new(self.cpus, self.mem_per_cpu, interleave),
            one_way,
            shards: self.shards,
            threads: self.threads,
        }
    }
}

/// A configured GS1280: fabric, calibration, address map, and the analytic
/// latency probes behind Figs. 4–5 and 12–14.
#[derive(Debug, Clone)]
pub struct Gs1280 {
    calib: Calibration,
    fabric: FabricTopo,
    policy: RoutePolicy,
    map: AddressMap,
    one_way: Vec<Vec<SimDuration>>,
    shards: usize,
    threads: usize,
}

impl Gs1280 {
    /// Start building a machine (defaults: 16 CPUs, plain torus, no
    /// striping, 1 GiB/CPU).
    pub fn builder() -> Gs1280Builder {
        Gs1280Builder {
            cpus: 16,
            shape: None,
            shuffle: None,
            striping: false,
            mem_per_cpu: 1 << 30,
            shards: 0,
            threads: 0,
        }
    }

    /// Configured worker-thread count (`0` = resolve via
    /// [`alphasim_kernel::par::threads`] at run time).
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.fabric.node_count()
    }

    /// The machine's calibration bundle.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// The fabric topology.
    pub fn fabric(&self) -> &FabricTopo {
        &self.fabric
    }

    /// The machine's physical address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Whether memory striping is enabled.
    pub fn striping(&self) -> bool {
        self.map.interleave() == Interleave::StripedPairs
    }

    /// A fresh network simulator over this machine's fabric and routing
    /// policy, for the loaded experiments (Figs. 15, 18, 23–26).
    pub fn network(&self) -> NetworkSim<FabricTopo> {
        let mut net = NetworkSim::with_policy(self.fabric.clone(), self.calib.timing, self.policy);
        let shards = if self.shards == 0 {
            alphasim_kernel::par::shards()
        } else {
            self.shards
        };
        if shards > 1 {
            net.set_shards(shards);
        }
        net
    }

    /// The fabric timing in force.
    pub fn timing(&self) -> &LinkTiming {
        &self.calib.timing
    }

    /// A network simulator over the fabric with the given links failed —
    /// failure-injection studies run the same load tests on the wounded
    /// machine (minimal adaptive routing detours around the cut).
    ///
    /// # Panics
    ///
    /// Panics if a named link does not exist.
    pub fn degraded_network(
        &self,
        failed: &[(NodeId, NodeId)],
    ) -> NetworkSim<alphasim_topology::Degraded<FabricTopo>> {
        NetworkSim::with_policy(
            alphasim_topology::Degraded::new(self.fabric.clone(), failed),
            self.calib.timing,
            self.policy,
        )
    }

    /// Local memory load-to-use latency (83 ns open-page, 130 ns
    /// closed-page; Figs. 5 and 13).
    pub fn local_latency(&self, page_hit: bool) -> SimDuration {
        if page_hit {
            self.calib.local_open_latency()
        } else {
            self.calib.local_closed_latency()
        }
    }

    /// One-way fabric latency between two CPUs.
    pub fn one_way(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.one_way[from.index()][to.index()]
    }

    /// Read-clean latency: `requester` loads a line homed at `home` that no
    /// cache holds dirty. Local reads cost the 83 ns open-page path; remote
    /// reads add the directory overhead and a round trip.
    pub fn read_clean(&self, requester: NodeId, home: NodeId) -> SimDuration {
        if requester == home {
            return self.local_latency(true);
        }
        self.local_latency(true)
            + self.calib.remote_fixed
            + self.one_way(requester, home)
            + self.one_way(home, requester)
    }

    /// Read-dirty latency: the line is Exclusive in `owner`'s cache; the
    /// directory at `home` forwards and the owner responds straight to the
    /// requester (3-hop path, paper §2 / Fig. 12).
    pub fn read_dirty(&self, requester: NodeId, home: NodeId, owner: NodeId) -> SimDuration {
        self.calib.local_fixed
            + self.calib.remote_fixed
            + self.calib.dirty_serve
            + self.calib.dirty_penalty
            + self.one_way(requester, home)
            + self.one_way(home, owner)
            + self.one_way(owner, requester)
    }

    /// The Fig. 13 latency map: read-clean from `from` to every CPU, in
    /// nanoseconds, as a `rows × cols` grid.
    pub fn latency_grid(&self, from: NodeId) -> Vec<Vec<f64>> {
        let (cols, rows) = match &self.fabric {
            FabricTopo::Torus(t) => (t.cols(), t.rows()),
            FabricTopo::Shuffle(s) => (s.cols(), s.rows()),
        };
        (0..rows)
            .map(|y| {
                (0..cols)
                    .map(|x| {
                        let node = NodeId::new(y * cols + x);
                        self.read_clean(from, node).as_ns()
                    })
                    .collect()
            })
            .collect()
    }

    /// Mean read-clean latency from node 0 to every CPU including itself
    /// (the "average" bar of Fig. 12).
    pub fn average_latency_from0(&self) -> SimDuration {
        let n = self.cpus();
        let total: SimDuration = (0..n)
            .map(|k| self.read_clean(NodeId::new(0), NodeId::new(k)))
            .sum();
        total / n as u64
    }

    /// Mean read-clean latency over all ordered pairs (Fig. 14's
    /// load-to-use curve).
    pub fn average_latency_all_pairs(&self) -> SimDuration {
        let n = self.cpus();
        let total: SimDuration = (0..n)
            .flat_map(|a| (0..n).map(move |k| (a, k)))
            .map(|(a, k)| self.read_clean(NodeId::new(a), NodeId::new(k)))
            .sum();
        total / (n * n) as u64
    }

    /// Mean read-dirty latency over random (requester, home, owner)
    /// triples with all three distinct.
    pub fn average_dirty_latency(&self) -> SimDuration {
        let n = self.cpus();
        let mut total = SimDuration::ZERO;
        let mut count = 0u64;
        for r in 0..n {
            for h in 0..n {
                for o in 0..n {
                    if r != h && h != o && r != o {
                        total += self.read_dirty(NodeId::new(r), NodeId::new(h), NodeId::new(o));
                        count += 1;
                    }
                }
            }
        }
        total / count.max(1)
    }

    /// The average latency a CPU sees for lines of its *own* region under
    /// the current interleave: 83 ns unstriped; with striping half the
    /// lines live on the module partner (§6's extra burden on pair links).
    pub fn effective_local_latency(&self) -> SimDuration {
        if !self.striping() {
            return self.local_latency(true);
        }
        // Sample the rotation: lines 0..4 of CPU 0's region.
        let partner = match &self.fabric {
            FabricTopo::Torus(t) => t.module_partner(NodeId::new(0)),
            FabricTopo::Shuffle(s) => s.base().module_partner(NodeId::new(0)),
        }
        .expect("striped machines pair CPUs");
        let local = self.local_latency(true);
        let remote = self.read_clean(NodeId::new(0), partner);
        (local + remote) / 2
    }

    /// Counted STREAM-triad bandwidth (GB/s) with `active` CPUs running one
    /// stream each: per-CPU demand is MSHR-limited, supply is the per-CPU
    /// sustained Zbox bandwidth, and McCalpin counts 24 of every 32 moved
    /// bytes (write-allocate overhead). Scaling is linear — each CPU streams
    /// its own local memory (Figs. 6–7).
    pub fn stream_triad_gbps(&self, active: usize) -> f64 {
        assert!(
            active >= 1 && active <= self.cpus(),
            "active CPUs out of range"
        );
        let latency = self.effective_local_latency();
        let line = 64.0;
        let demand = self.calib.mshrs as f64 * line / latency.as_secs() / 1e9;
        let mut per_cpu = demand.min(self.calib.sustained_mem_gbps);
        if self.striping() {
            // §6: half of every stream now crosses the module pair link
            // (3.1 GB/s per direction, ~80% data payload after headers) —
            // "additional burden on the IP links between pairs of CPUs".
            let pair_link_cap = self.calib.timing.bandwidth_gbps * 0.8 / 0.5;
            per_cpu = per_cpu.min(pair_link_cap);
        }
        per_cpu * 0.75 * active as f64
    }

    /// The home CPU of an address under the machine's interleave.
    pub fn home_of(&self, addr: Addr) -> NodeId {
        NodeId::new(self.map.target_of(addr).cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m16() -> Gs1280 {
        Gs1280::builder().cpus(16).build()
    }

    #[test]
    fn fig13_latency_grid_matches_paper() {
        // Paper Fig. 13 (ns):
        //   83 145 186 154
        //  139 175 221 182
        //  181 221 259 222
        //  154 191 235 195
        let paper = [
            [83.0, 145.0, 186.0, 154.0],
            [139.0, 175.0, 221.0, 182.0],
            [181.0, 221.0, 259.0, 222.0],
            [154.0, 191.0, 235.0, 195.0],
        ];
        let grid = m16().latency_grid(NodeId::new(0));
        for y in 0..4 {
            for x in 0..4 {
                let got = grid[y][x];
                let want = paper[y][x];
                assert!(
                    (got - want).abs() / want < 0.06,
                    "cell ({x},{y}): got {got:.0} want {want}"
                );
            }
        }
    }

    #[test]
    fn local_latencies() {
        let m = m16();
        assert_eq!(m.local_latency(true).as_ns(), 83.0);
        assert_eq!(m.local_latency(false).as_ns(), 130.0);
    }

    #[test]
    fn one_hop_neighbors_ordered_by_link_class() {
        let m = m16();
        let module = m.read_clean(NodeId::new(0), NodeId::new(4)); // (0,1)
        let board = m.read_clean(NodeId::new(0), NodeId::new(1)); // (1,0)
        let cable = m.read_clean(NodeId::new(0), NodeId::new(3)); // wrap
        assert!(module < board && board < cable);
        assert_eq!(module.as_ns(), 139.0);
        assert_eq!(board.as_ns(), 145.0);
        assert_eq!(cable.as_ns(), 154.0);
    }

    #[test]
    fn dirty_three_hop_exceeds_clean_round_trip_between_same_nodes() {
        let m = m16();
        let clean = m.read_clean(NodeId::new(0), NodeId::new(5));
        let dirty = m.read_dirty(NodeId::new(0), NodeId::new(5), NodeId::new(10));
        assert!(dirty > clean);
    }

    #[test]
    fn average_latency_grows_with_machine_size() {
        let sizes = [4usize, 8, 16, 32, 64];
        let avgs: Vec<f64> = sizes
            .iter()
            .map(|&n| {
                Gs1280::builder()
                    .cpus(n)
                    .build()
                    .average_latency_all_pairs()
                    .as_ns()
            })
            .collect();
        for w in avgs.windows(2) {
            assert!(w[0] < w[1], "{avgs:?}");
        }
        // 64P stays well under 300 ns (Fig. 14's GS1280 curve).
        assert!(avgs[4] < 300.0, "{avgs:?}");
    }

    #[test]
    fn shuffle_reduces_average_latency_at_8p() {
        let torus = Gs1280::builder().cpus(8).build();
        let shuffle = Gs1280::builder()
            .cpus(8)
            .shuffle(RoutePolicy::Minimal)
            .build();
        assert!(shuffle.average_latency_all_pairs() < torus.average_latency_all_pairs());
    }

    #[test]
    fn striping_raises_effective_local_latency() {
        let plain = Gs1280::builder().cpus(16).build();
        let striped = Gs1280::builder().cpus(16).striping(true).build();
        assert_eq!(plain.effective_local_latency().as_ns(), 83.0);
        assert_eq!(
            striped.effective_local_latency().as_ns(),
            (83.0 + 139.0) / 2.0
        );
        assert!(striped.striping());
    }

    #[test]
    fn stream_triad_is_linear_and_near_4_4_gbps_per_cpu() {
        let m = Gs1280::builder().cpus(64).build();
        let one = m.stream_triad_gbps(1);
        assert!((one - 4.4).abs() < 0.3, "1-CPU triad {one}");
        let four = m.stream_triad_gbps(4);
        assert!((four - 4.0 * one).abs() < 1e-9, "linear scaling");
        assert!(m.stream_triad_gbps(64) > 200.0);
    }

    #[test]
    fn striping_degrades_stream() {
        let plain = Gs1280::builder().cpus(16).build();
        let striped = Gs1280::builder().cpus(16).striping(true).build();
        let degradation = 1.0 - striped.stream_triad_gbps(16) / plain.stream_triad_gbps(16);
        assert!(
            (0.05..=0.40).contains(&degradation),
            "degradation {degradation}"
        );
    }

    #[test]
    fn home_of_respects_interleave() {
        let m = Gs1280::builder().cpus(4).mem_per_cpu(1 << 20).build();
        assert_eq!(m.home_of(Addr::new(0)).index(), 0);
        assert_eq!(m.home_of(Addr::new(3 << 20)).index(), 3);
        let s = Gs1280::builder()
            .cpus(4)
            .mem_per_cpu(1 << 20)
            .striping(true)
            .build();
        assert_eq!(s.home_of(Addr::new(2 * 64)).index(), 1);
    }

    #[test]
    fn network_round_trip_is_close_to_analytic_probe() {
        use alphasim_kernel::SimTime;
        use alphasim_net::MessageClass;
        let m = m16();
        let mut net = m.network();
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            16,
            0,
        );
        let d = net.drain_deliveries();
        // One board hop ≈ 20.5 ns + serialization.
        let ns = d[0].latency().as_ns();
        assert!((20.0..35.0).contains(&ns), "unloaded hop {ns}");
    }
}
