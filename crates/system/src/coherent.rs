//! A trace-driven coherent machine: per-CPU cache hierarchies, the global
//! directory protocol, and the fabric's latency model composed end to end.
//!
//! This is the machine a downstream user programs against: feed it an
//! interleaved stream of per-CPU loads and stores and it answers with the
//! latency each access would see on the GS1280 — L1/L2 hits, local or
//! remote memory, 3-hop read-dirty forwards, and invalidations — while
//! keeping every CPU's cache contents and the directory consistent.
//!
//! The sharing microbenchmarks in `alphasim-workloads` (producer/consumer
//! ping-pong, migratory sharing) run on this machine, reproducing the
//! paper's observation that the GS1280's efficient read-dirty path is what
//! wins on "applications that require high amount of data sharing".

use alphasim_cache::{Addr, CacheHierarchy, HitLevel};
use alphasim_coherence::{AccessKind, Directory, ServedBy, Transaction};
use alphasim_kernel::SimDuration;
use alphasim_topology::NodeId;
use serde::{Deserialize, Serialize};

use crate::gs1280::Gs1280;
use crate::gs320::Gs320;

/// Where a coherent access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceClass {
    /// The requesting CPU's own L1.
    L1,
    /// The requesting CPU's own L2.
    L2,
    /// The requester's local memory (its own Zboxes).
    LocalMemory,
    /// A remote node's memory (read-clean).
    RemoteClean,
    /// Another CPU's cache via the 3-hop forwarding path (read-dirty).
    RemoteDirty,
}

/// The outcome of one coherent access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherentOutcome {
    /// Load-to-use latency of the access.
    pub latency: SimDuration,
    /// How it was served.
    pub service: ServiceClass,
    /// Invalidations sent to other CPUs by this access.
    pub invalidations: u32,
}

/// Per-machine aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoherentStats {
    /// Accesses served per class, indexed like [`ServiceClass`].
    pub l1: u64,
    /// See [`ServiceClass::L2`].
    pub l2: u64,
    /// See [`ServiceClass::LocalMemory`].
    pub local: u64,
    /// See [`ServiceClass::RemoteClean`].
    pub remote_clean: u64,
    /// See [`ServiceClass::RemoteDirty`].
    pub remote_dirty: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Bytes put on the fabric (commands + blocks, critical + side legs).
    pub fabric_bytes: u64,
    /// Dirty L2 victims written back across all CPUs.
    pub writebacks: u64,
}

impl CoherentStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.local + self.remote_clean + self.remote_dirty
    }
}

/// The latency model a coherent machine runs over: the GS1280's torus or
/// the GS320's hierarchical switch (same directory protocol, very
/// different path costs — the paper's §3.4 comparison).
#[derive(Debug, Clone)]
pub enum MachineModel {
    /// The Alpha 21364 torus machine.
    Gs1280(Gs1280),
    /// The previous-generation switch machine.
    Gs320(Gs320),
}

impl MachineModel {
    fn cpus(&self) -> usize {
        match self {
            MachineModel::Gs1280(m) => m.cpus(),
            MachineModel::Gs320(m) => m.cpus(),
        }
    }

    fn hierarchy(&self) -> alphasim_cache::HierarchyConfig {
        match self {
            MachineModel::Gs1280(m) => m.calibration().hierarchy,
            MachineModel::Gs320(m) => m.calibration().hierarchy,
        }
    }

    fn home_of(&self, addr: Addr) -> usize {
        match self {
            MachineModel::Gs1280(m) => m.home_of(addr).index(),
            // GS320 memory interleaves across QBBs by region, like the
            // torus machine's per-CPU regions scaled to 1 GiB.
            MachineModel::Gs320(m) => ((addr.get() >> 30) as usize) % m.cpus(),
        }
    }

    fn local_latency(&self) -> SimDuration {
        match self {
            MachineModel::Gs1280(m) => m.local_latency(true),
            MachineModel::Gs320(m) => m.local_latency(true),
        }
    }

    fn read_clean(&self, requester: usize, home: usize) -> SimDuration {
        match self {
            MachineModel::Gs1280(m) => m.read_clean(NodeId::new(requester), NodeId::new(home)),
            MachineModel::Gs320(m) => m.read_clean(NodeId::new(requester), NodeId::new(home)),
        }
    }

    fn read_dirty(&self, requester: usize, home: usize, owner: usize) -> SimDuration {
        match self {
            MachineModel::Gs1280(m) => m.read_dirty(
                NodeId::new(requester),
                NodeId::new(home),
                NodeId::new(owner),
            ),
            MachineModel::Gs320(m) => m.read_dirty(
                NodeId::new(requester),
                NodeId::new(home),
                NodeId::new(owner),
            ),
        }
    }
}

/// The trace-driven coherent machine.
#[derive(Debug)]
pub struct CoherentMachine {
    machine: MachineModel,
    hierarchies: Vec<CacheHierarchy>,
    directory: Directory,
    stats: CoherentStats,
    total_latency: SimDuration,
}

impl CoherentMachine {
    /// A coherent machine over a GS1280, with one cold cache hierarchy per
    /// CPU.
    pub fn new(machine: Gs1280) -> Self {
        Self::over(MachineModel::Gs1280(machine))
    }

    /// A coherent machine over a GS320 — the same directory protocol over
    /// the older fabric, for sharing-workload comparisons.
    pub fn new_gs320(machine: Gs320) -> Self {
        Self::over(MachineModel::Gs320(machine))
    }

    /// A coherent machine over any supported model.
    pub fn over(machine: MachineModel) -> Self {
        let hierarchies = (0..machine.cpus())
            .map(|_| CacheHierarchy::new(machine.hierarchy()))
            .collect();
        CoherentMachine {
            machine,
            hierarchies,
            directory: Directory::new(),
            stats: CoherentStats::default(),
            total_latency: SimDuration::ZERO,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.machine.cpus()
    }

    /// The underlying GS1280, if this machine is one.
    pub fn machine(&self) -> Option<&Gs1280> {
        match &self.machine {
            MachineModel::Gs1280(m) => Some(m),
            MachineModel::Gs320(_) => None,
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> CoherentStats {
        CoherentStats {
            writebacks: self.hierarchies.iter().map(|h| h.writebacks()).sum(),
            ..self.stats
        }
    }

    /// Mean access latency so far.
    pub fn mean_latency(&self) -> SimDuration {
        let n = self.stats.total();
        if n == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency / n
        }
    }

    /// Protocol-level directory state (for inspection/tests).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Perform one load (`write == false`) or store (`write == true`) by
    /// `cpu` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range or `addr` beyond the machine's
    /// memory.
    pub fn access(&mut self, cpu: usize, addr: Addr, write: bool) -> CoherentOutcome {
        assert!(cpu < self.machine.cpus(), "CPU out of range");
        let line = addr.line(64);
        let home = self.machine.home_of(addr);

        // A store needs write rights even on a cache hit; loads can be
        // served entirely by the local hierarchy.
        let local_hit = self.hierarchies[cpu].probe(addr);
        if let (Some(level), false) = (local_hit, write) {
            // Pure load hit: no directory involvement.
            let outcome = self.hierarchies[cpu].load(addr, SimDuration::ZERO);
            debug_assert_eq!(outcome.level, level);
            let service = match level {
                HitLevel::L1 => {
                    self.stats.l1 += 1;
                    ServiceClass::L1
                }
                HitLevel::L2 => {
                    self.stats.l2 += 1;
                    ServiceClass::L2
                }
                HitLevel::Memory => unreachable!("probe said hit"),
            };
            self.total_latency += outcome.latency;
            return CoherentOutcome {
                latency: outcome.latency,
                service,
                invalidations: 0,
            };
        }

        // Consult the directory.
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let txn = self.directory.access(home, cpu, line, kind);
        self.stats.fabric_bytes += txn.fabric_bytes();
        let invalidations = self.apply_side_effects(&txn, cpu, addr);

        let (latency, service) = self.transaction_latency(cpu, home, &txn, local_hit.is_some());
        // Fill the local hierarchy (memory-latency parameter is already
        // accounted; load()/store() charge it on the miss path). Stores
        // leave the line dirty so later evictions write back.
        if write {
            let _ = self.hierarchies[cpu].store(addr, latency);
        } else {
            let _ = self.hierarchies[cpu].load(addr, latency);
        }
        self.total_latency += latency;
        match service {
            ServiceClass::L1 => self.stats.l1 += 1,
            ServiceClass::L2 => self.stats.l2 += 1,
            ServiceClass::LocalMemory => self.stats.local += 1,
            ServiceClass::RemoteClean => self.stats.remote_clean += 1,
            ServiceClass::RemoteDirty => self.stats.remote_dirty += 1,
        }
        CoherentOutcome {
            latency,
            service,
            invalidations,
        }
    }

    /// Invalidate other CPUs' copies named by the transaction's side legs.
    fn apply_side_effects(&mut self, txn: &Transaction, requester: usize, addr: Addr) -> u32 {
        let mut invalidations = 0;
        for leg in &txn.side {
            if leg.class == alphasim_net::MessageClass::Forward && leg.to != requester {
                self.hierarchies[leg.to].invalidate(addr);
                invalidations += 1;
                self.stats.invalidations += 1;
            }
        }
        // A read-dirty downgrades the owner but leaves its copy readable;
        // a write-steal invalidates the previous owner's copy.
        if txn.served_by == ServedBy::OwnerCache {
            if let Some(forward) = txn
                .critical
                .iter()
                .find(|l| l.class == alphasim_net::MessageClass::Forward)
            {
                let owner = forward.to;
                if owner != requester && txn.critical.last().map(|l| l.from) == Some(owner) {
                    // Only writes steal; detect by directory state: if the
                    // requester is now exclusive, the owner lost its copy.
                    if self.directory.state(addr.line(64))
                        == alphasim_coherence::LineState::Exclusive(requester)
                    {
                        self.hierarchies[owner].invalidate(addr);
                        invalidations += 1;
                        self.stats.invalidations += 1;
                    }
                }
            }
        }
        invalidations
    }

    /// Compose the latency of a directory transaction from the machine's
    /// calibrated path costs.
    fn transaction_latency(
        &self,
        cpu: usize,
        home: usize,
        txn: &Transaction,
        had_readable_copy: bool,
    ) -> (SimDuration, ServiceClass) {
        let hierarchy = self.machine.hierarchy();
        match txn.served_by {
            ServedBy::AlreadyHeld => {
                // Upgrade-in-place (e.g. store to an Exclusive line) — L2
                // cost at most.
                let lat = if had_readable_copy {
                    hierarchy.l2_latency
                } else {
                    hierarchy.l1_latency
                };
                (lat, ServiceClass::L2)
            }
            ServedBy::Memory => {
                if cpu == home {
                    (self.machine.local_latency(), ServiceClass::LocalMemory)
                } else {
                    (
                        self.machine.read_clean(cpu, home),
                        ServiceClass::RemoteClean,
                    )
                }
            }
            ServedBy::OwnerCache => {
                let owner = txn.critical.last().expect("owner responds last").from;
                (
                    self.machine.read_dirty(cpu, home, owner),
                    ServiceClass::RemoteDirty,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> CoherentMachine {
        CoherentMachine::new(Gs1280::builder().cpus(16).mem_per_cpu(1 << 22).build())
    }

    fn local_addr(cpu: usize, off: u64) -> Addr {
        Addr::new(cpu as u64 * (1 << 22) + off)
    }

    #[test]
    fn cold_local_load_costs_83ns_then_hits_l1() {
        let mut m = machine();
        let a = local_addr(0, 4096);
        let first = m.access(0, a, false);
        assert_eq!(first.service, ServiceClass::LocalMemory);
        assert_eq!(first.latency.as_ns(), 83.0);
        let second = m.access(0, a, false);
        assert_eq!(second.service, ServiceClass::L1);
        assert!(second.latency.as_ns() < 4.0);
    }

    #[test]
    fn remote_clean_load_matches_fig13() {
        let mut m = machine();
        // CPU 0 reads CPU 4's memory: (0,1) is the module partner, 139 ns.
        let a = local_addr(4, 0);
        let out = m.access(0, a, false);
        assert_eq!(out.service, ServiceClass::RemoteClean);
        assert_eq!(out.latency.as_ns(), 139.0);
    }

    #[test]
    fn write_then_foreign_read_is_dirty_three_hop() {
        let mut m = machine();
        let a = local_addr(8, 64);
        m.access(3, a, true); // CPU 3 dirties a line homed at CPU 8
        let out = m.access(12, a, false);
        assert_eq!(out.service, ServiceClass::RemoteDirty);
        let expect = m.machine().expect("built over a GS1280").read_dirty(
            NodeId::new(12),
            NodeId::new(8),
            NodeId::new(3),
        );
        assert_eq!(out.latency, expect);
    }

    #[test]
    fn store_invalidates_sharers_caches() {
        let mut m = machine();
        let a = local_addr(0, 128);
        for cpu in [1usize, 2, 5] {
            m.access(cpu, a, false);
        }
        let out = m.access(7, a, true);
        assert_eq!(out.invalidations, 3);
        // Sharers' caches no longer hold the line: their next load misses.
        let reread = m.access(2, a, false);
        assert_ne!(reread.service, ServiceClass::L1);
        assert_ne!(reread.service, ServiceClass::L2);
    }

    #[test]
    fn write_steal_invalidates_previous_owner() {
        let mut m = machine();
        let a = local_addr(0, 256);
        m.access(1, a, true);
        m.access(2, a, true); // steals ownership
        let back = m.access(1, a, false);
        assert_eq!(
            back.service,
            ServiceClass::RemoteDirty,
            "previous owner must refetch from the new owner"
        );
    }

    #[test]
    fn repeated_store_by_owner_is_cheap() {
        let mut m = machine();
        let a = local_addr(0, 512);
        m.access(0, a, true);
        let again = m.access(0, a, true);
        assert!(again.latency.as_ns() <= 11.0, "{}", again.latency.as_ns());
        assert_eq!(again.invalidations, 0);
    }

    #[test]
    fn stats_add_up() {
        let mut m = machine();
        for i in 0..50u64 {
            m.access(
                (i % 4) as usize,
                local_addr((i % 8) as usize, i * 64),
                i % 3 == 0,
            );
        }
        let s = m.stats();
        assert_eq!(s.total(), 50);
        assert!(m.mean_latency() > SimDuration::ZERO);
        assert!(s.fabric_bytes > 0);
    }

    #[test]
    fn read_dirty_is_faster_than_gs320_equivalent() {
        // The paper's data-sharing argument, end to end: the GS1280's
        // 3-hop dirty read is several times faster than the GS320's.
        let mut m = machine();
        let a = local_addr(8, 1024);
        m.access(3, a, true);
        let gs1280 = m.access(12, a, false).latency;
        let gs320 =
            crate::Gs320::new(16).read_dirty(NodeId::new(12), NodeId::new(8), NodeId::new(3));
        assert!(gs320 > gs1280 * 4, "{gs320} vs {gs1280}");
    }
}
