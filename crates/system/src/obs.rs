//! Time-resolved observability for fault campaigns.
//!
//! [`crate::faulty::FaultCampaign::run_observed`] runs the same
//! epoch-parallel closed loop as every other entry point while three
//! zero-cost-when-off collectors ride along:
//!
//! * a per-worker [`ObsAcc`] — fixed-width sim-time windows
//!   ([`Timeline`]) of injections, completions, retries, poisons and
//!   Zbox service, plus per-node memory accumulators;
//! * the fabric's [`NetHeat`] — per-node delivery and per-link
//!   occupancy accumulators with their own windowed series;
//! * the executor's [`EpochProfile`] — per-epoch per-shard busy/merge
//!   spans from the conservative scheduler.
//!
//! Every accumulator is owned by exactly one region and merged in region
//! (input) order after the run, the same argument that makes the
//! campaign's registries byte-identical at any `--threads`/`--shards`
//! combination. [`CampaignObservability`] is the merged result: the
//! timeline, the latency pairs, P×Q topology heatmaps, and the profile.

use alphasim_kernel::shard::EpochProfile;
use alphasim_net::partition::NetHeat;
use alphasim_telemetry::{Heatmap, Timeline};
use alphasim_topology::{NodeId, Topology};

/// What [`crate::faulty::FaultCampaign::run_observed`] collects beyond the
/// plain result and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveOptions {
    /// Fixed window width of every timeline, in simulated picoseconds.
    pub window_ps: u64,
    /// Also collect the Chrome trace (message/link/memory lanes plus one
    /// profiler lane per shard).
    pub trace: bool,
    /// Also measure per-shard wall-clock busy time in the epoch profile.
    /// Measurement only: sim results and every sim-time field are
    /// byte-identical either way, and wall values never reach checked
    /// artifacts.
    pub wall: bool,
}

impl ObserveOptions {
    /// Windows of `window_ps`, no trace, no wall clock.
    pub fn windowed(window_ps: u64) -> Self {
        ObserveOptions {
            window_ps,
            trace: false,
            wall: false,
        }
    }
}

/// One region's observability accumulators (campaign-plane metrics; the
/// fabric-plane ones live in [`NetHeat`]).
pub(crate) struct ObsAcc {
    /// Windowed counters `campaign.injected` / `campaign.completed` /
    /// `campaign.retries` / `campaign.poisoned` / `campaign.zbox_reads` /
    /// `campaign.dram_busy_ps`, histogram `campaign.latency_ns`.
    pub(crate) timeline: Timeline,
    /// `(completed_at_ps, e2e_ps)` per completion, for exact windowed
    /// latency quantiles.
    pub(crate) latencies: Vec<(u64, u64)>,
    /// Reads served per home node.
    pub(crate) zbox_reads: Vec<u64>,
    /// DRAM service picoseconds per home node.
    pub(crate) zbox_busy_ps: Vec<u64>,
}

impl ObsAcc {
    pub(crate) fn new(window_ps: u64, nodes: usize) -> Self {
        ObsAcc {
            timeline: Timeline::new(window_ps),
            latencies: Vec::new(),
            zbox_reads: vec![0; nodes],
            zbox_busy_ps: vec![0; nodes],
        }
    }

    pub(crate) fn note_injected(&mut self, at_ps: u64) {
        self.timeline.counter_add(at_ps, "campaign.injected", 1);
    }

    pub(crate) fn note_completion(&mut self, at_ps: u64, e2e_ps: u64) {
        self.timeline.counter_add(at_ps, "campaign.completed", 1);
        self.timeline
            .record(at_ps, "campaign.latency_ns", e2e_ps / 1_000);
        self.latencies.push((at_ps, e2e_ps));
    }

    pub(crate) fn note_retry(&mut self, at_ps: u64) {
        self.timeline.counter_add(at_ps, "campaign.retries", 1);
    }

    pub(crate) fn note_poisoned(&mut self, at_ps: u64) {
        self.timeline.counter_add(at_ps, "campaign.poisoned", 1);
    }

    pub(crate) fn note_zbox_read(&mut self, at_ps: u64, node: usize, dram_ps: u64) {
        self.zbox_reads[node] += 1;
        self.zbox_busy_ps[node] += dram_ps;
        self.timeline.counter_add(at_ps, "campaign.zbox_reads", 1);
        self.timeline
            .counter_add(at_ps, "campaign.dram_busy_ps", dram_ps);
    }

    /// Fold another region's accumulators into this one (regions partition
    /// the requesters and home nodes, so adds are exact).
    pub(crate) fn merge(&mut self, other: &ObsAcc) {
        self.timeline.merge(&other.timeline);
        self.latencies.extend_from_slice(&other.latencies);
        for (a, b) in self.zbox_reads.iter_mut().zip(&other.zbox_reads) {
            *a += b;
        }
        for (a, b) in self.zbox_busy_ps.iter_mut().zip(&other.zbox_busy_ps) {
            *a += b;
        }
    }
}

/// Everything a `run_observed` campaign measured, merged into canonical
/// (shard-count-invariant) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignObservability {
    /// Window width of [`timeline`](Self::timeline), in picoseconds.
    pub window_ps: u64,
    /// The merged windowed metrics: campaign counters (`campaign.*`),
    /// fabric counters (`net.*`), the `campaign.pending_depth` gauge, and
    /// the `campaign.latency_ns` / `net.latency_ns` histograms. The
    /// window sums equal the corresponding registry totals exactly.
    pub timeline: Timeline,
    /// `(completed_at_ps, e2e_ps)` of every completion, sorted — the exact
    /// samples behind per-window p50/p99 latency series.
    pub latencies: Vec<(u64, u64)>,
    /// Messages delivered per node, as a P×Q grid.
    pub node_delivered: Heatmap,
    /// Outgoing-link occupancy picoseconds folded onto each sending node,
    /// as a P×Q grid — the router-utilization view.
    pub link_busy: Heatmap,
    /// Reads served per home Zbox, as a P×Q grid.
    pub zbox_reads: Heatmap,
    /// DRAM service picoseconds per home Zbox, as a P×Q grid.
    pub zbox_busy: Heatmap,
    /// Payload bytes granted per directed link, indexed by global link id.
    pub link_bytes: Vec<u64>,
    /// Deepest queue observed behind each directed link.
    pub link_peak_backlog: Vec<u64>,
    /// Per-epoch per-shard busy/merge spans from the conservative
    /// scheduler (plus optional wall-clock, when requested).
    pub profile: EpochProfile,
}

/// Lay per-node `values` onto the topology's coordinate grid. Nodes
/// without planar coordinates (or a sparse coordinate cover) fall back to
/// one row in node-id order, so the grid never silently drops a node.
pub(crate) fn node_grid<T: Topology>(topo: &T, values: &[u64]) -> Heatmap {
    let coords: Option<Vec<(usize, usize)>> = (0..topo.node_count())
        .map(|n| {
            topo.coord(NodeId::new(n))
                .map(|c| (c.x as usize, c.y as usize))
        })
        .collect();
    if let Some(coords) = coords {
        let cols = coords.iter().map(|&(x, _)| x + 1).max().unwrap_or(1);
        let rows = coords.iter().map(|&(_, y)| y + 1).max().unwrap_or(1);
        let mut grid = Heatmap::new(cols, rows);
        for (&(x, y), &v) in coords.iter().zip(values) {
            grid.add(y * cols + x, v);
        }
        grid
    } else {
        Heatmap::from_values(values.len().max(1), 1, values)
    }
}

/// Assemble the merged per-region accumulators into the public result.
///
/// `link_from[id]` is the sending node of directed link `id` (for folding
/// link occupancy onto the router grid); `pending_deltas` is the merged,
/// sorted pending-set occupancy log, replayed here into the
/// `campaign.pending_depth` windowed gauge.
pub(crate) fn assemble<T: Topology>(
    topo: &T,
    window_ps: u64,
    heat: NetHeat,
    mut obs: ObsAcc,
    profile: EpochProfile,
    link_from: &[usize],
    pending_deltas: &[(u64, i8)],
) -> CampaignObservability {
    obs.timeline.merge(&heat.timeline);
    let mut occupancy = 0i64;
    for &(at_ps, d) in pending_deltas {
        occupancy += i64::from(d);
        obs.timeline
            .gauge_max(at_ps, "campaign.pending_depth", occupancy.max(0) as u64);
    }
    obs.latencies.sort_unstable();
    let mut link_busy_by_node = vec![0u64; topo.node_count()];
    for (id, &busy) in heat.link_busy_ps.iter().enumerate() {
        link_busy_by_node[link_from[id]] += busy;
    }
    CampaignObservability {
        window_ps,
        node_delivered: node_grid(topo, &heat.node_delivered),
        link_busy: node_grid(topo, &link_busy_by_node),
        zbox_reads: node_grid(topo, &obs.zbox_reads),
        zbox_busy: node_grid(topo, &obs.zbox_busy_ps),
        link_bytes: heat.link_bytes,
        link_peak_backlog: heat.link_peak_backlog,
        timeline: obs.timeline,
        latencies: obs.latencies,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_topology::Torus2D;

    #[test]
    fn obs_merge_in_region_order_matches_sequential() {
        let mut whole = ObsAcc::new(1_000, 4);
        let mut a = ObsAcc::new(1_000, 4);
        let mut b = ObsAcc::new(1_000, 4);
        for i in 0..10u64 {
            let at = i * 700;
            whole.note_completion(at, 50 + i);
            whole.note_zbox_read(at, (i % 4) as usize, 10 * i);
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            part.note_completion(at, 50 + i);
            part.note_zbox_read(at, (i % 4) as usize, 10 * i);
        }
        let mut merged = ObsAcc::new(1_000, 4);
        merged.merge(&a);
        merged.merge(&b);
        merged.latencies.sort_unstable();
        whole.latencies.sort_unstable();
        assert_eq!(merged.timeline, whole.timeline);
        assert_eq!(merged.latencies, whole.latencies);
        assert_eq!(merged.zbox_reads, whole.zbox_reads);
        assert_eq!(merged.zbox_busy_ps, whole.zbox_busy_ps);
        assert_eq!(
            merged.timeline.totals().counter("campaign.completed"),
            10,
            "window sums equal the run total"
        );
    }

    #[test]
    fn node_grid_uses_planar_coords() {
        let topo = Torus2D::new(4, 4);
        let mut values = vec![0u64; 16];
        values[0] = 3; // (0, 0)
        values[7] = 9; // (3, 1) in row-major 4x4
        let grid = node_grid(&topo, &values);
        assert_eq!((grid.cols(), grid.rows()), (4, 4));
        assert_eq!(grid.at(0, 0), 3);
        assert_eq!(grid.total(), 12);
        assert_eq!(grid.peak(), 9);
    }
}
