//! Closed-loop load testing under live fault injection.
//!
//! [`FaultCampaign`] drives the same windowed read loop as
//! [`loadtest`](crate::loadtest) while a [`FaultPlan`] wounds the machine
//! mid-run: links die (losing the packets on their wires), CPUs drain,
//! RDRAM channels fail. The coherence layer's timeout-and-retry machinery
//! ([`RetryPolicy`], [`PendingSet`], [`Watchdog`]) guarantees the
//! robustness contract: **every transaction either completes (possibly
//! after bounded-backoff retries) or is poisoned with a named cause** —
//! nothing hangs silently, and a kernel-level watchdog reports the stuck
//! set if delivery progress ever stops for a whole window.
//!
//! [`FaultCampaign::run_monitored`] arms the always-on invariant monitors
//! on top of the same loop: hung-transaction detection (with watchdog
//! escalation so a broken recovery path cannot hang the harness), the
//! retry bound, poison hygiene, window-refill integrity, route-table and
//! conservative-lookahead audits after every strike, and the telemetry
//! exact-sum identity. A [`RecoveryMutation`] deliberately breaks one
//! recovery path so the chaos engine can prove those monitors catch real
//! bugs and that the shrinker minimizes the schedule that exposed them.

use alphasim_cache::Addr;
use alphasim_coherence::{LivelockReport, PendingSet, PendingTx, RetryPolicy, Watchdog};
use alphasim_kernel::stats::MeanP99;
use alphasim_kernel::{DetRng, FaultKind, FaultPlan, SimDuration, SimTime};
use alphasim_mem::{Zbox, ZboxAccess, ZboxConfig};
use alphasim_net::{Delivery, MessageClass, NetworkSim, Step};
use alphasim_telemetry::trace::PID_MEMORY;
use alphasim_telemetry::{BreakdownTable, HopBreakdown, Registry, TraceSink};
use alphasim_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Reserved timer tag for the watchdog tick (request tags are
/// `cpu << 32 | seq` and can never collide with it).
const WATCHDOG_TAG: u64 = u64::MAX;

/// Consecutive no-progress watchdog windows a monitored run tolerates
/// before declaring the pending set hung and stopping. Healthy retry
/// chains deliver something well inside one window, so three silent
/// windows in a row can only mean transactions that will never move.
const STUCK_WINDOW_LIMIT: u32 = 3;

/// A deliberately broken recovery path. Chaos campaigns run each mutation
/// to prove the invariant monitors catch the breakage and the shrinker
/// minimizes the schedule that exposed it — mutation testing for the
/// robustness contract itself. Only honoured by
/// [`FaultCampaign::run_monitored`]; the plain entry points refuse
/// mutations because a broken recovery path can hang an unmonitored run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMutation {
    /// Timer expiries are ignored: lost transactions are never retried or
    /// poisoned and hang forever.
    IgnoreTimeouts,
    /// Poisoning skips the pending-set removal: the abandoned entry leaks.
    LeakPoison,
    /// A poisoned read does not refill its CPU's window slot, silently
    /// shrinking the issue window.
    SkipWindowRefill,
    /// Transactions get one more attempt than the retry policy allows.
    OffByOneRetry,
}

impl RecoveryMutation {
    /// Every mutation, in a fixed order.
    pub const ALL: [RecoveryMutation; 4] = [
        RecoveryMutation::IgnoreTimeouts,
        RecoveryMutation::LeakPoison,
        RecoveryMutation::SkipWindowRefill,
        RecoveryMutation::OffByOneRetry,
    ];

    /// Stable identifier (CLI argument, reproducer field).
    pub fn id(self) -> &'static str {
        match self {
            RecoveryMutation::IgnoreTimeouts => "ignore-timeouts",
            RecoveryMutation::LeakPoison => "leak-poison",
            RecoveryMutation::SkipWindowRefill => "skip-window-refill",
            RecoveryMutation::OffByOneRetry => "off-by-one-retry",
        }
    }

    /// Parse a stable identifier back to the mutation.
    pub fn from_id(id: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.id() == id)
    }
}

/// One invariant violation observed by the always-on monitors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which monitor fired (`hung-transactions`, `retry-bound`,
    /// `poison-leak`, `window-refill`, `issue-quota`, `route-consistency`,
    /// `lookahead-oracle`, `telemetry-balance`, `accounting`).
    pub monitor: String,
    /// What it saw.
    pub detail: String,
}

/// What the always-on monitors observed over one monitored run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Every violation, in detection order. Empty on a healthy machine.
    pub violations: Vec<Violation>,
    /// Highest attempt count any transaction reached (bounded by
    /// `max_retries + 1` when the retry machinery is intact).
    pub max_attempts: u32,
}

impl MonitorReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Monitor scratch state threaded through a monitored run.
struct MonitorState {
    violations: Vec<Violation>,
    consecutive_stuck_windows: u32,
    /// Per-CPU: whether the node was ever drained (exempts it from the
    /// window-refill and issue-quota checks).
    ever_drained: Vec<bool>,
}

impl MonitorState {
    fn violate(&mut self, monitor: &str, detail: String) {
        self.violations.push(Violation {
            monitor: monitor.to_string(),
            detail,
        });
    }
}

/// How campaign CPUs pick the home of each read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPattern {
    /// Each request goes to a uniformly random *other* CPU.
    UniformRemote,
    /// Every CPU reads from its mirror across the vertical bisection of the
    /// torus, so all traffic crosses the bisection — the pattern behind the
    /// resilience sweep's achieved-bisection-bandwidth curve.
    Bisection,
}

/// Parameters of one fault campaign.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// Outstanding reads per CPU.
    pub outstanding: usize,
    /// Reads each CPU completes before the run ends.
    pub requests_per_cpu: usize,
    /// Traffic pattern.
    pub pattern: CampaignPattern,
    /// RNG seed.
    pub seed: u64,
    /// The fault schedule (empty plan = healthy baseline run).
    pub plan: FaultPlan,
    /// Timeout / backoff / poison policy for lost transactions.
    pub retry: RetryPolicy,
    /// Watchdog no-progress window (should exceed the retry timeout, or
    /// ordinary timeouts read as livelock).
    pub watchdog_window: SimDuration,
    /// Event-queue region shards for the run (`0` = resolve via
    /// [`alphasim_kernel::par::shards`]). Results are byte-identical at
    /// any value; the shard map only repartitions the queue.
    pub shards: usize,
    /// Deliberately broken recovery path for mutation testing (`None` =
    /// intact machinery). Only honoured by
    /// [`FaultCampaign::run_monitored`].
    pub mutation: Option<RecoveryMutation>,
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            outstanding: 4,
            requests_per_cpu: 100,
            pattern: CampaignPattern::UniformRemote,
            seed: 0xFA117,
            plan: FaultPlan::new(),
            retry: RetryPolicy::gs1280_default(),
            watchdog_window: SimDuration::from_us(200.0),
            shards: 0,
            mutation: None,
        }
    }
}

/// A transaction abandoned after exhausting its retries (the NAK path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonedTx {
    /// Correlation tag.
    pub tag: u64,
    /// Requesting CPU.
    pub cpu: usize,
    /// Home node of the read.
    pub home: usize,
    /// Issue attempts spent.
    pub attempts: u32,
    /// Why it was abandoned.
    pub cause: String,
}

/// The outcome of one fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Reads completed (every issued read completes or is poisoned).
    pub completed: u64,
    /// Retries issued by the timeout/drop machinery.
    pub retries: u64,
    /// Messages lost with failed wires.
    pub dropped: u64,
    /// Queued messages evicted from failing links and re-routed.
    pub rerouted: u64,
    /// Transactions abandoned with a named cause.
    pub poisoned: Vec<PoisonedTx>,
    /// Livelock reports (normally empty: retries keep making progress).
    pub watchdog_reports: Vec<LivelockReport>,
    /// Faults that actually struck, in strike order.
    pub faults_applied: Vec<FaultKind>,
    /// Link-layer CRC retransmissions triggered by transient flit
    /// corruption.
    pub crc_retransmits: u64,
    /// Mean end-to-end read latency (first issue to data return, across
    /// every retry).
    pub mean_latency: SimDuration,
    /// 99th-percentile read latency.
    pub p99_latency: SimDuration,
    /// Aggregate delivered read bandwidth, GB/s (64 B per completed read),
    /// measured to the last delivery (stale retry timers do not inflate
    /// the denominator). Includes the recovery tail: after the unwounded
    /// CPUs finish their quota, the machine idles while the wounded rows
    /// grind out their remainder, so this understates the sustained rate.
    pub delivered_gbps: f64,
    /// Steady-state delivered bandwidth, GB/s: bytes completed by the
    /// 90th-percentile completion, over that interval. Trimming the
    /// straggler tail measures the rate the wounded machine actually
    /// sustains while all CPUs are active.
    pub steady_gbps: f64,
    /// Time of the last delivery.
    pub elapsed: SimDuration,
}

/// Telemetry gathered by an instrumented campaign run
/// ([`FaultCampaign::run_instrumented`]): the component counters, the
/// per-hop latency breakdown, and (when requested) the Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct CampaignTelemetry {
    /// Component counters, gauges, and histograms (coherence retry
    /// machinery, Zbox page behaviour, network drop/reroute counts).
    pub registry: Registry,
    /// Where every picosecond of load-to-use latency went, stage by stage.
    pub breakdown: BreakdownTable,
    /// Chrome-trace sink, present when tracing was enabled.
    pub trace: Option<TraceSink>,
}

/// Stage names of the load-to-use pipeline, in pipeline order. The
/// collector pre-charges all of them with zero so the breakdown table's
/// row order never depends on which transaction happens to finish first.
const PIPELINE_STAGES: [&str; 16] = [
    "request: queue + arbitration",
    "request: router pipeline",
    "request: wire flight",
    "request: link serialization",
    "request: congestion penalty",
    "directory lookup (fixed)",
    "zbox queue",
    "dram open page",
    "dram closed page",
    "response: queue + arbitration",
    "response: router pipeline",
    "response: wire flight",
    "response: link serialization",
    "response: congestion penalty",
    "front end (fixed)",
    "unattributed (retry / backoff)",
];

/// Request-leg attribution parked between the request's arrival at the
/// home node and its response's arrival back at the requester.
struct RequestLeg {
    request: HopBreakdown,
    zbox_queue_ps: u64,
    dram_ps: u64,
    page_hit: bool,
}

/// Accumulates per-transaction attribution during an instrumented run.
struct TelemetryCollector {
    registry: Registry,
    breakdown: BreakdownTable,
    legs: BTreeMap<u64, RequestLeg>,
}

impl TelemetryCollector {
    fn new() -> Self {
        let mut breakdown = BreakdownTable::default();
        for stage in PIPELINE_STAGES {
            breakdown.charge(stage, 0);
        }
        TelemetryCollector {
            registry: Registry::default(),
            breakdown,
            legs: BTreeMap::new(),
        }
    }

    /// The home node served a request from its Zbox: park the request leg
    /// until the response closes the transaction. Retried requests simply
    /// overwrite the leg — the response that completes the read is the one
    /// produced by the last request served.
    fn on_request_served(&mut self, d: &Delivery, acc: &ZboxAccess, served_from: SimTime) {
        self.legs.insert(
            d.tag,
            RequestLeg {
                request: d.breakdown,
                zbox_queue_ps: acc.started.since(served_from).as_ps(),
                dram_ps: acc.completed.since(acc.started).as_ps(),
                page_hit: acc.page_hit,
            },
        );
    }

    /// A read completed: charge every attributable picosecond of its
    /// end-to-end latency to a pipeline stage. On a healthy run the stages
    /// sum exactly to `e2e_ps`; anything the stages cannot explain (retry
    /// backoff, time lost with a dropped packet) lands in the
    /// `unattributed` stage, so the table always balances.
    ///
    /// The response-leg stages, the directory lookup that produced this
    /// response, and the front end always lie on the completing path. The
    /// parked request leg might not: retransmits reuse the transaction tag,
    /// so a racing retry served while the first attempt's response was
    /// already in flight overwrites the leg with stages that ran
    /// *concurrently* with the completing trip. Charging those would
    /// overshoot `e2e_ps` and break the exact-sum invariant (found by the
    /// chaos fuzzer under hair-trigger timeouts), so a leg that no longer
    /// fits inside the end-to-end budget is left unattributed instead.
    fn on_complete(
        &mut self,
        tag: u64,
        response: &HopBreakdown,
        directory_ps: u64,
        front_ps: u64,
        e2e_ps: u64,
    ) {
        let mut known = 0u64;
        for (stage, ps) in [
            ("response: queue + arbitration", response.queued_ps),
            ("response: router pipeline", response.router_ps),
            ("response: wire flight", response.wire_ps),
            ("response: link serialization", response.serialization_ps),
            ("response: congestion penalty", response.congestion_ps),
            ("directory lookup (fixed)", directory_ps),
            ("front end (fixed)", front_ps),
        ] {
            self.breakdown.charge(stage, ps);
            known += ps;
        }
        if let Some(leg) = self.legs.remove(&tag) {
            let leg_total = leg.request.queued_ps
                + leg.request.router_ps
                + leg.request.wire_ps
                + leg.request.serialization_ps
                + leg.request.congestion_ps
                + leg.zbox_queue_ps
                + leg.dram_ps;
            if known + leg_total <= e2e_ps {
                for (stage, ps) in [
                    ("request: queue + arbitration", leg.request.queued_ps),
                    ("request: router pipeline", leg.request.router_ps),
                    ("request: wire flight", leg.request.wire_ps),
                    ("request: link serialization", leg.request.serialization_ps),
                    ("request: congestion penalty", leg.request.congestion_ps),
                    ("zbox queue", leg.zbox_queue_ps),
                    (
                        if leg.page_hit {
                            "dram open page"
                        } else {
                            "dram closed page"
                        },
                        leg.dram_ps,
                    ),
                ] {
                    self.breakdown.charge(stage, ps);
                    known += ps;
                }
            }
        }
        self.breakdown.charge(
            "unattributed (retry / backoff)",
            e2e_ps.saturating_sub(known),
        );
        self.breakdown.complete_transaction(e2e_ps);
    }
}

/// Mutable per-run state, grouped so the injection and retry paths can
/// share it.
struct RunState {
    rngs: Vec<DetRng>,
    issued: Vec<u64>,
    pending: PendingSet,
    dog_armed: bool,
    poisoned: Vec<PoisonedTx>,
    /// Highest attempt count any transaction reached (always tracked; it
    /// is one integer max per retry).
    max_attempts: u32,
    /// Present on monitored runs only.
    monitor: Option<MonitorState>,
}

/// A machine prepared for fault-injection load testing: a network with
/// drop-on-failure semantics plus one memory controller per CPU node.
pub struct FaultCampaign<T: Topology> {
    net: NetworkSim<T>,
    cpus: Vec<NodeId>,
    /// One controller per CPU node, indexed by node id (deterministic).
    zboxes: Vec<Zbox>,
    front_overhead: SimDuration,
    directory_overhead: SimDuration,
}

impl<T: Topology> FaultCampaign<T> {
    /// Assemble a campaign over `net`; each CPU's memory lives on its own
    /// node (the GS1280 arrangement).
    pub fn new(
        mut net: NetworkSim<T>,
        zbox: ZboxConfig,
        front_overhead: SimDuration,
        directory_overhead: SimDuration,
    ) -> Self {
        net.set_drop_in_flight(true);
        let cpus = net.topology().endpoints();
        assert!(!cpus.is_empty(), "no CPU endpoints");
        let nodes = net.topology().node_count();
        let zboxes = (0..nodes).map(|_| Zbox::new(zbox)).collect();
        FaultCampaign {
            net,
            cpus,
            zboxes,
            front_overhead,
            directory_overhead,
        }
    }

    /// The bisection mirror of `cpu`: same row, column reflected across the
    /// vertical cut.
    fn bisection_partner(&self, cpu: usize) -> usize {
        let coord = |i: usize| {
            self.net
                .topology()
                .coord(self.cpus[i])
                .expect("bisection pattern needs planar coordinates")
        };
        let cols = (0..self.cpus.len())
            .map(|i| coord(i).x as usize)
            .max()
            .expect("fault campaign has at least one CPU")
            + 1;
        let c = coord(cpu);
        let mx = cols - 1 - c.x as usize;
        (0..self.cpus.len())
            .find(|&i| {
                let o = coord(i);
                o.x as usize == mx && o.y == c.y
            })
            .expect("mirror CPU exists")
    }

    fn pick_target(&self, cfg: &FaultCampaignConfig, cpu: usize, rng: &mut DetRng) -> usize {
        match cfg.pattern {
            CampaignPattern::UniformRemote => {
                if self.cpus.len() == 1 {
                    0
                } else {
                    rng.index_excluding(self.cpus.len(), cpu)
                }
            }
            CampaignPattern::Bisection => self.bisection_partner(cpu),
        }
    }

    /// Run the campaign to completion. Panics (loudly, by design) if the
    /// fault plan would partition the fabric, or if `cfg` carries a
    /// [`RecoveryMutation`] — a broken recovery path can hang an
    /// unmonitored run, so mutations require
    /// [`run_monitored`](Self::run_monitored).
    pub fn run(self, cfg: &FaultCampaignConfig) -> CampaignResult {
        assert!(
            cfg.mutation.is_none(),
            "recovery mutations require run_monitored"
        );
        self.run_inner(cfg, None, false).0
    }

    /// Run the campaign with the always-on invariant monitors armed: hung
    /// transactions (with watchdog escalation, so even a broken recovery
    /// path terminates), the retry bound, poison hygiene, window-refill
    /// integrity, issue quotas, route-table and conservative-lookahead
    /// audits after every strike, the telemetry exact-sum identity, and
    /// issue accounting. Violations are reported rather than panicked so
    /// the chaos engine can shrink the schedule that exposed them.
    /// `cfg.mutation` is honoured here, and only here.
    pub fn run_monitored(
        self,
        cfg: &FaultCampaignConfig,
    ) -> (CampaignResult, CampaignTelemetry, MonitorReport) {
        let (result, telemetry, report) =
            self.run_inner(cfg, Some(TelemetryCollector::new()), true);
        (
            result,
            telemetry.expect("collector was provided"),
            report.expect("monitoring was requested"),
        )
    }

    /// Run the campaign with telemetry collection: component counters, the
    /// per-hop latency breakdown, and (with `trace`) a Chrome-trace sink
    /// with message, link, and DRAM lanes. Telemetry never perturbs the
    /// simulation — an instrumented run returns the same
    /// [`CampaignResult`] as [`run`](Self::run).
    pub fn run_instrumented(
        mut self,
        cfg: &FaultCampaignConfig,
        trace: bool,
    ) -> (CampaignResult, CampaignTelemetry) {
        assert!(
            cfg.mutation.is_none(),
            "recovery mutations require run_monitored"
        );
        if trace {
            self.net.enable_trace();
            if let Some(sink) = self.net.trace_mut() {
                sink.name_process(PID_MEMORY, "memory: zbox dram service");
            }
        }
        let (result, telemetry, _) = self.run_inner(cfg, Some(TelemetryCollector::new()), false);
        (result, telemetry.expect("collector was provided"))
    }

    fn run_inner(
        mut self,
        cfg: &FaultCampaignConfig,
        mut collector: Option<TelemetryCollector>,
        monitored: bool,
    ) -> (
        CampaignResult,
        Option<CampaignTelemetry>,
        Option<MonitorReport>,
    ) {
        assert!(cfg.outstanding >= 1, "need at least one outstanding read");
        assert!(
            cfg.watchdog_window > cfg.retry.timeout,
            "watchdog window must exceed the retry timeout"
        );
        let shards = if cfg.shards == 0 {
            alphasim_kernel::par::shards()
        } else {
            cfg.shards
        };
        if shards > 1 {
            self.net.set_shards(shards);
        }
        self.net.install_fault_plan(&cfg.plan);
        let ncpus = self.cpus.len();
        let mut st = RunState {
            rngs: (0..ncpus)
                .map(|i| DetRng::seeded(cfg.seed).split(i as u64))
                .collect(),
            issued: vec![0u64; ncpus],
            pending: PendingSet::new(),
            dog_armed: false,
            poisoned: Vec::new(),
            max_attempts: 0,
            monitor: monitored.then(|| MonitorState {
                violations: Vec::new(),
                consecutive_stuck_windows: 0,
                ever_drained: vec![false; ncpus],
            }),
        };
        let mut dog = Watchdog::new(cfg.watchdog_window);
        let mut latencies = MeanP99::new();
        let mut completion_times: Vec<SimTime> = Vec::new();
        let mut reports: Vec<LivelockReport> = Vec::new();
        let mut faults_applied: Vec<FaultKind> = Vec::new();
        let mut last_delivery = SimTime::ZERO;

        for cpu in 0..ncpus {
            for _ in 0..cfg.outstanding.min(cfg.requests_per_cpu) {
                self.inject(cfg, cpu, SimTime::ZERO, &mut st);
            }
        }

        while let Some(step) = self.net.step() {
            let now = self.net.now();
            match step {
                Step::Delivered(d) => {
                    dog.note_progress(now);
                    if let Some(m) = st.monitor.as_mut() {
                        m.consecutive_stuck_windows = 0;
                    }
                    last_delivery = last_delivery.max(now);
                    match d.class {
                        MessageClass::Request => {
                            if self.net.is_drained(d.dst) {
                                // The home's whole node drained: its memory
                                // is unreachable, so the request dies here
                                // and the requester's timeout poisons it.
                                continue;
                            }
                            // Serve even if no longer pending (a poisoned or
                            // retried duplicate); the dup response is
                            // discarded at the requester.
                            let addr = Addr::new(
                                (d.tag.wrapping_mul(0x9E3779B97F4A7C15) >> 16) & 0x3FFF_FFC0,
                            );
                            let served_from = now + self.directory_overhead;
                            let acc = self.zboxes[d.dst.index()].access(served_from, addr, 64);
                            if let Some(c) = collector.as_mut() {
                                c.on_request_served(&d, &acc, served_from);
                            }
                            if let Some(sink) = self.net.trace_mut() {
                                let tid = d.dst.index() as u32;
                                sink.complete(
                                    "dram read",
                                    "mem",
                                    PID_MEMORY,
                                    tid,
                                    served_from.as_ps(),
                                    acc.completed.since(served_from).as_ps(),
                                    &[("tag", d.tag), ("page_hit", u64::from(acc.page_hit))],
                                );
                            }
                            let requester = self.cpus[(d.tag >> 32) as usize];
                            self.net.send(
                                acc.completed,
                                d.dst,
                                requester,
                                MessageClass::BlockResponse,
                                80,
                                d.tag,
                            );
                        }
                        MessageClass::BlockResponse => {
                            let Some(tx) = st.pending.complete(d.tag) else {
                                continue; // duplicate response from a retry
                            };
                            let e2e = now.since(tx.first_issued) + self.front_overhead;
                            latencies.record(e2e);
                            completion_times.push(now);
                            if let Some(c) = collector.as_mut() {
                                c.on_complete(
                                    d.tag,
                                    &d.breakdown,
                                    self.directory_overhead.as_ps(),
                                    self.front_overhead.as_ps(),
                                    e2e.as_ps(),
                                );
                            }
                            let cpu = (d.tag >> 32) as usize;
                            self.inject_next(cfg, cpu, now, &mut st);
                        }
                        other => panic!("unexpected class {other:?}"),
                    }
                }
                Step::Dropped(d) => {
                    // The wire took the packet with it; retry immediately
                    // rather than waiting out the timeout.
                    self.retry_or_poison(cfg, d.tag, &mut st);
                }
                Step::Timer(WATCHDOG_TAG) => {
                    st.dog_armed = false;
                    if !st.pending.is_empty() {
                        let stuck = match dog.check(now, &st.pending) {
                            Some(report) => {
                                reports.push(report);
                                true
                            }
                            None => false,
                        };
                        // Watchdog escalation: a monitored run stops after
                        // enough silent windows instead of re-arming
                        // forever, so a hung pending set is reported as a
                        // violation rather than hanging the harness.
                        if let Some(m) = st.monitor.as_mut() {
                            if stuck {
                                m.consecutive_stuck_windows += 1;
                                if m.consecutive_stuck_windows >= STUCK_WINDOW_LIMIT {
                                    let tags: Vec<u64> =
                                        st.pending.iter().map(|(tag, _)| tag).collect();
                                    m.violate(
                                        "hung-transactions",
                                        format!(
                                            "no delivery for {STUCK_WINDOW_LIMIT} watchdog \
                                             windows; stuck tags {tags:x?}"
                                        ),
                                    );
                                    break;
                                }
                            } else {
                                m.consecutive_stuck_windows = 0;
                            }
                        }
                        self.net.set_timer(now + cfg.watchdog_window, WATCHDOG_TAG);
                        st.dog_armed = true;
                    }
                }
                Step::Timer(tag) => {
                    let overdue = st.pending.get(tag).is_some_and(|tx| tx.deadline <= now);
                    // IgnoreTimeouts mutation: the expiry is dropped on the
                    // floor, so lost transactions hang — which the
                    // hung-transaction monitor must catch.
                    if overdue && cfg.mutation != Some(RecoveryMutation::IgnoreTimeouts) {
                        self.retry_or_poison(cfg, tag, &mut st);
                    }
                }
                Step::Fault(kind) => {
                    match kind {
                        FaultKind::ChannelDown { node } => self.zboxes[node].fail_channel(),
                        // Repair symmetry for the RDRAM channel loss;
                        // tolerate a stray repair on a healthy Zbox.
                        FaultKind::ChannelUp { node }
                            if self.zboxes[node].failed_channels() > 0 =>
                        {
                            self.zboxes[node].restore_channel();
                        }
                        FaultKind::NodeDrain { node } => {
                            if let Some(m) = st.monitor.as_mut() {
                                if let Some(cpu) = self.cpus.iter().position(|c| c.index() == node)
                                {
                                    m.ever_drained[cpu] = true;
                                }
                            }
                        }
                        FaultKind::NodeUndrain { node } => {
                            // The node resumes service: refill its issue
                            // window so it works toward its quota again.
                            if let Some(cpu) = self.cpus.iter().position(|c| c.index() == node) {
                                let inflight = st
                                    .pending
                                    .iter()
                                    .filter(|&(tag, _)| (tag >> 32) as usize == cpu)
                                    .count();
                                for _ in inflight..cfg.outstanding {
                                    self.inject_next(cfg, cpu, now, &mut st);
                                }
                            }
                        }
                        _ => {}
                    }
                    faults_applied.push(kind);
                    // After every strike the route tables and the sharded
                    // queue's conservative lookahead must agree with their
                    // brute-force oracles.
                    if st.monitor.is_some() {
                        if let Err(why) = self.net.audit_routes() {
                            if let Some(m) = st.monitor.as_mut() {
                                m.violate("route-consistency", why);
                            }
                        }
                        if let Err(why) = self.net.audit_lookahead() {
                            if let Some(m) = st.monitor.as_mut() {
                                m.violate("lookahead-oracle", why);
                            }
                        }
                    }
                }
                Step::Internal => {}
            }
        }

        if let Some(m) = st.monitor.as_mut() {
            if !st.pending.is_empty() && m.consecutive_stuck_windows < STUCK_WINDOW_LIMIT {
                let tags: Vec<u64> = st.pending.iter().map(|(tag, _)| tag).collect();
                m.violate(
                    "hung-transactions",
                    format!("survived the drain: tags {tags:x?}"),
                );
            }
            // Issue quota: a CPU that was never drained must have issued
            // its full budget (a silently shrinking window stalls early).
            for cpu in 0..ncpus {
                if !m.ever_drained[cpu]
                    && !self.net.is_drained(self.cpus[cpu])
                    && st.issued[cpu] < cfg.requests_per_cpu as u64
                {
                    m.violate(
                        "issue-quota",
                        format!(
                            "cpu {cpu} issued {} of {} reads without ever draining",
                            st.issued[cpu], cfg.requests_per_cpu
                        ),
                    );
                }
            }
            // Accounting: every issued read is completed, poisoned, or
            // (already reported above) still pending.
            let accounted = st.pending.completed()
                + st.poisoned.len() as u64
                + st.pending.iter().count() as u64;
            let issued: u64 = st.issued.iter().sum();
            if accounted != issued {
                m.violate(
                    "accounting",
                    format!("completed + poisoned + pending = {accounted} but issued = {issued}"),
                );
            }
        } else {
            assert!(
                st.pending.is_empty(),
                "hung transactions survived the drain: {:?}",
                st.pending.iter().map(|(tag, _)| tag).collect::<Vec<_>>()
            );
        }

        let completed = st.pending.completed();
        let (mean_latency, p99_latency) = latencies.finish();
        let elapsed = last_delivery.since(SimTime::ZERO);
        let delivered_gbps = if elapsed > SimDuration::ZERO {
            completed as f64 * 64.0 / elapsed.as_secs() / 1e9
        } else {
            0.0
        };
        // Completions arrive in time order, so the p90 completion is a
        // direct index; no sort needed.
        let steady_gbps = match completion_times.len() {
            0 => 0.0,
            n => {
                let idx = ((n * 9) / 10).min(n - 1);
                let t = completion_times[idx].since(SimTime::ZERO);
                if t > SimDuration::ZERO {
                    (idx + 1) as f64 * 64.0 / t.as_secs() / 1e9
                } else {
                    0.0
                }
            }
        };
        let telemetry = collector.map(|mut c| {
            st.pending.export_metrics(&mut c.registry);
            dog.export_metrics(&mut c.registry);
            for z in &self.zboxes {
                z.export_metrics(&mut c.registry);
            }
            c.registry
                .counter_add("net.dropped", self.net.dropped_count());
            c.registry
                .counter_add("net.rerouted", self.net.rerouted_count());
            c.registry
                .counter_add("campaign.poisoned", st.poisoned.len() as u64);
            c.registry
                .counter_add("campaign.faults_applied", faults_applied.len() as u64);
            c.registry
                .gauge_max("sim.event_queue_peak", self.net.event_queue_peak() as u64);
            CampaignTelemetry {
                registry: c.registry,
                breakdown: c.breakdown,
                trace: self.net.take_trace(),
            }
        });
        // Telemetry exact-sum: the breakdown must balance to the last
        // picosecond even on a wounded run (shortfall lands in the
        // unattributed bucket, never vanishes).
        if let (Some(m), Some(t)) = (st.monitor.as_mut(), telemetry.as_ref()) {
            if t.breakdown.charged_ps() != t.breakdown.end_to_end_ps() {
                m.violate(
                    "telemetry-balance",
                    format!(
                        "charged {} ps != end-to-end {} ps",
                        t.breakdown.charged_ps(),
                        t.breakdown.end_to_end_ps()
                    ),
                );
            }
        }
        let report = st.monitor.take().map(|m| MonitorReport {
            violations: m.violations,
            max_attempts: st.max_attempts,
        });
        let result = CampaignResult {
            completed,
            retries: st.pending.retries(),
            dropped: self.net.dropped_count(),
            rerouted: self.net.rerouted_count(),
            poisoned: st.poisoned,
            watchdog_reports: reports,
            faults_applied,
            crc_retransmits: self.net.crc_retransmit_count(),
            mean_latency,
            p99_latency,
            delivered_gbps,
            steady_gbps,
            elapsed,
        };
        (result, telemetry, report)
    }

    fn inject(&mut self, cfg: &FaultCampaignConfig, cpu: usize, at: SimTime, st: &mut RunState) {
        let seq = st.issued[cpu];
        st.issued[cpu] += 1;
        let target = self.pick_target(cfg, cpu, &mut st.rngs[cpu]);
        let home = self.cpus[target];
        let tag = ((cpu as u64) << 32) | seq;
        let deadline = at + cfg.retry.timeout;
        st.pending.insert(
            tag,
            PendingTx {
                src: self.cpus[cpu].index(),
                home: home.index(),
                first_issued: at,
                deadline,
                attempts: 1,
            },
        );
        self.net
            .send(at, self.cpus[cpu], home, MessageClass::Request, 16, tag);
        self.net.set_timer(deadline, tag);
        if !st.dog_armed {
            self.net.set_timer(at + cfg.watchdog_window, WATCHDOG_TAG);
            st.dog_armed = true;
        }
    }

    /// Issue `cpu`'s next read, if it still has budget and has not drained.
    /// Called when a read completes *or* is poisoned, so a CPU's window
    /// never silently shrinks as faults eat its transactions.
    fn inject_next(
        &mut self,
        cfg: &FaultCampaignConfig,
        cpu: usize,
        at: SimTime,
        st: &mut RunState,
    ) {
        if st.issued[cpu] < cfg.requests_per_cpu as u64 && !self.net.is_drained(self.cpus[cpu]) {
            self.inject(cfg, cpu, at, st);
        }
    }

    /// A transaction timed out or its packet died with a wire: re-issue the
    /// request after bounded exponential backoff, or poison it with a named
    /// cause past `max_retries` (or when either end has drained). A poisoned
    /// read frees its window slot, so the CPU issues its next read.
    fn retry_or_poison(&mut self, cfg: &FaultCampaignConfig, tag: u64, st: &mut RunState) {
        let Some(tx) = st.pending.get(tag).copied() else {
            return; // completed in the meantime (e.g. drop of a dup response)
        };
        let now = self.net.now();
        let src = NodeId::new(tx.src);
        // OffByOneRetry mutation: the poison threshold slips by one, so
        // transactions overrun the retry bound — which the retry-bound
        // monitor must catch on the extra attempt.
        let max_retries = if cfg.mutation == Some(RecoveryMutation::OffByOneRetry) {
            cfg.retry.max_retries + 1
        } else {
            cfg.retry.max_retries
        };
        let cause = if self.net.is_drained(src) {
            Some(format!("source cpu {} drained mid-flight", tx.src))
        } else if self.net.is_drained(NodeId::new(tx.home)) {
            Some(format!("home node {} drained; memory unreachable", tx.home))
        } else if tx.attempts > max_retries {
            Some(format!(
                "exhausted {} retries (timeout {} per attempt)",
                cfg.retry.max_retries, cfg.retry.timeout
            ))
        } else {
            None
        };
        if let Some(cause) = cause {
            st.max_attempts = st.max_attempts.max(tx.attempts);
            if cfg.mutation == Some(RecoveryMutation::LeakPoison) {
                // Deliberately broken: the abandoned entry stays pending.
            } else {
                st.pending.poison(tag).expect("checked above");
            }
            if let Some(m) = st.monitor.as_mut() {
                if st.pending.get(tag).is_some() {
                    m.violate(
                        "poison-leak",
                        format!("tag {tag:#x} still pending after poisoning"),
                    );
                }
            }
            st.poisoned.push(PoisonedTx {
                tag,
                cpu: (tag >> 32) as usize,
                home: tx.home,
                attempts: tx.attempts,
                cause,
            });
            let cpu = (tag >> 32) as usize;
            if cfg.mutation == Some(RecoveryMutation::SkipWindowRefill) {
                // Deliberately broken: the freed window slot is not refilled.
            } else {
                self.inject_next(cfg, cpu, now, st);
            }
            // Window integrity: a live, never-drained CPU with quota left
            // must run a full window after the slot is recycled.
            let ever_drained = st.monitor.as_ref().is_some_and(|m| m.ever_drained[cpu]);
            if st.monitor.is_some()
                && !ever_drained
                && !self.net.is_drained(self.cpus[cpu])
                && st.issued[cpu] < cfg.requests_per_cpu as u64
            {
                let inflight = st
                    .pending
                    .iter()
                    .filter(|&(t, _)| (t >> 32) as usize == cpu)
                    .count();
                if inflight < cfg.outstanding {
                    if let Some(m) = st.monitor.as_mut() {
                        m.violate(
                            "window-refill",
                            format!(
                                "cpu {cpu} runs {inflight} of {} window slots after a poison",
                                cfg.outstanding
                            ),
                        );
                    }
                }
            }
            return;
        }
        let backoff = cfg.retry.backoff(tx.attempts);
        let resend_at = now + backoff;
        let deadline = resend_at + cfg.retry.timeout;
        let attempts = st.pending.retry(tag, deadline);
        st.max_attempts = st.max_attempts.max(attempts);
        if attempts > cfg.retry.max_retries + 1 {
            if let Some(m) = st.monitor.as_mut() {
                m.violate(
                    "retry-bound",
                    format!(
                        "tag {tag:#x} reached attempt {attempts}; the policy allows {}",
                        cfg.retry.max_retries + 1
                    ),
                );
            }
        }
        self.net.send(
            resend_at,
            src,
            NodeId::new(tx.home),
            MessageClass::Request,
            16,
            tag,
        );
        self.net.set_timer(deadline, tag);
    }
}

/// Convenience: a fault campaign over a GS1280 (both Zboxes of each node
/// serve, as in the load test).
pub fn gs1280_fault_campaign(machine: &crate::Gs1280) -> FaultCampaign<crate::gs1280::FabricTopo> {
    let calib = machine.calibration();
    let zbox = ZboxConfig {
        bandwidth_gbps: calib.zbox.bandwidth_gbps * 2.0,
        ..calib.zbox
    };
    FaultCampaign::new(
        machine.network(),
        zbox,
        calib.local_fixed,
        calib.remote_fixed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gs1280;

    fn campaign16() -> FaultCampaign<crate::gs1280::FabricTopo> {
        gs1280_fault_campaign(&Gs1280::builder().cpus(16).build())
    }

    #[test]
    fn zero_retry_policy_poisons_at_the_exact_boundary_with_named_cause() {
        // max_retries = 0 with a timeout far below any remote round trip:
        // every remote read times out on its original send, and the
        // `attempts > max_retries` threshold poisons it immediately — the
        // exact boundary, with the retry count named in the cause. No
        // faults are injected; the policy alone drives the NAK path.
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 20,
            retry: RetryPolicy {
                timeout: SimDuration::from_ps(1),
                max_retries: 0,
                ..RetryPolicy::gs1280_default()
            },
            ..Default::default()
        });
        assert_eq!(
            r.completed + r.poisoned.len() as u64,
            16 * 20,
            "every read completes or is poisoned"
        );
        assert!(!r.poisoned.is_empty(), "a 1 ps timeout must poison reads");
        assert_eq!(r.retries, 0, "max_retries = 0 leaves no room for retries");
        for p in &r.poisoned {
            assert_eq!(p.attempts, 1, "poisoned on the original send");
            assert!(
                p.cause.contains("exhausted 0 retries"),
                "cause must name the exact retry budget: {}",
                p.cause
            );
        }
    }

    #[test]
    fn healthy_baseline_matches_issue_count() {
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 50,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 50);
        assert!(r.poisoned.is_empty());
        assert_eq!(r.retries, 0);
        assert_eq!(r.dropped, 0);
        assert!(r.watchdog_reports.is_empty());
        assert!(r.delivered_gbps > 0.0);
        assert!(r.p99_latency >= r.mean_latency);
    }

    #[test]
    fn fault_campaign_smoke() {
        // The CI smoke job: a small torus, two mid-run link failures,
        // watchdog enabled. Every transaction must complete or be poisoned
        // with a named cause — zero hung transactions.
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::LinkDown { a: 0, b: 1 },
        );
        plan.push(
            SimTime::ZERO + SimDuration::from_us(2.0),
            FaultKind::LinkDown { a: 5, b: 6 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 8,
            requests_per_cpu: 100,
            plan,
            ..Default::default()
        });
        assert_eq!(
            r.completed + r.poisoned.len() as u64,
            16 * 100,
            "every read completes or is poisoned — none hang"
        );
        assert_eq!(r.faults_applied.len(), 2);
        assert!(r.dropped + r.rerouted > 0, "the cuts hit live traffic");
        for p in &r.poisoned {
            assert!(!p.cause.is_empty(), "poisoned tx must name its cause");
        }
    }

    #[test]
    fn dropped_requests_are_retried_to_completion() {
        // One cut through a bisection-heavy pattern: drops occur, retries
        // recover them, everything completes.
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.5),
            FaultKind::LinkDown { a: 1, b: 2 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 80,
            pattern: CampaignPattern::Bisection,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed + r.poisoned.len() as u64, 16 * 80);
        if r.dropped > 0 {
            assert!(r.retries > 0, "drops must trigger retries");
        }
    }

    #[test]
    fn drained_node_poisons_its_outstanding_reads() {
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::NodeDrain { node: 3 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 4,
            requests_per_cpu: 200,
            plan,
            ..Default::default()
        });
        // Node 3 stops issuing and its memory goes dark: reads touching it
        // are poisoned with a named cause, everything else completes, and
        // nothing hangs.
        assert!(r.completed < 16 * 200);
        assert!(r.completed > 15 * 200 / 2, "other CPUs keep running");
        assert!(!r.poisoned.is_empty(), "reads to the dead node must poison");
        for p in &r.poisoned {
            assert!(
                p.cpu == 3 || p.home == 3,
                "only reads touching the drained node may poison: {p:?}"
            );
            assert!(p.cause.contains("drained"), "{}", p.cause);
        }
    }

    #[test]
    fn channel_failure_is_applied_to_the_zbox() {
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::ChannelDown { node: 0 },
        );
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.2),
            FaultKind::ChannelDown { node: 0 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 60,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 60);
        assert_eq!(r.faults_applied.len(), 2);
    }

    #[test]
    fn deterministic_given_seed_and_plan() {
        let run = || {
            let mut plan = FaultPlan::new();
            plan.push(
                SimTime::ZERO + SimDuration::from_us(1.0),
                FaultKind::LinkDown { a: 0, b: 1 },
            );
            campaign16().run(&FaultCampaignConfig {
                outstanding: 6,
                requests_per_cpu: 60,
                plan,
                ..Default::default()
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn healthy_instrumented_run_attributes_every_picosecond() {
        let cfg = FaultCampaignConfig {
            requests_per_cpu: 40,
            ..Default::default()
        };
        let (r, t) = campaign16().run_instrumented(&cfg, false);
        assert_eq!(r.completed, 16 * 40);
        assert_eq!(t.breakdown.transactions(), r.completed);
        // On a healthy run the pipeline stages explain the entire
        // load-to-use latency with nothing left over: the table's charged
        // total equals the end-to-end total exactly (integer picoseconds),
        // and the unattributed bucket is empty.
        assert_eq!(t.breakdown.charged_ps(), t.breakdown.end_to_end_ps());
        assert_eq!(t.breakdown.stage_ps("unattributed (retry / backoff)"), 0);
        // Fixed overheads are charged once per completed read.
        let dir_ps = t.breakdown.stage_ps("directory lookup (fixed)");
        assert_eq!(
            dir_ps,
            campaign16().directory_overhead.as_ps() * r.completed,
            "directory overhead charged exactly once per read"
        );
        // Counters mirror the campaign result and the zbox totals.
        assert_eq!(t.registry.counter("coherence.completed"), r.completed);
        assert_eq!(t.registry.counter("coherence.retries"), 0);
        assert_eq!(t.registry.counter("net.dropped"), 0);
        assert_eq!(t.registry.counter("zbox.accesses"), r.completed);
        assert_eq!(
            t.registry.counter("zbox.page_hits") + t.registry.counter("zbox.page_misses"),
            r.completed
        );
        assert!(t.registry.gauge("sim.event_queue_peak") > 0);
        assert!(t.registry.gauge("coherence.pending_peak") >= cfg.outstanding as u64);
        assert!(t.trace.is_none(), "tracing was not requested");
    }

    #[test]
    fn instrumentation_never_perturbs_the_simulation() {
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::LinkDown { a: 0, b: 1 },
        );
        let cfg = FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 60,
            plan,
            ..Default::default()
        };
        let plain = campaign16().run(&cfg);
        let (instrumented, t) = campaign16().run_instrumented(&cfg, true);
        assert_eq!(plain.completed, instrumented.completed);
        assert_eq!(plain.retries, instrumented.retries);
        assert_eq!(plain.dropped, instrumented.dropped);
        assert_eq!(plain.mean_latency, instrumented.mean_latency);
        assert_eq!(plain.p99_latency, instrumented.p99_latency);
        assert_eq!(plain.elapsed, instrumented.elapsed);
        // The wounded run still balances its breakdown: whatever the
        // stages cannot explain (backoff, lost flights) is charged to the
        // unattributed bucket, never silently dropped.
        assert_eq!(t.breakdown.charged_ps(), t.breakdown.end_to_end_ps());
        let trace = t.trace.expect("tracing was requested");
        assert!(!trace.is_empty(), "traced run must record events");
    }

    #[test]
    fn bisection_pattern_mirrors_across_the_cut() {
        let c = campaign16();
        // 4x4 torus: (x, y) -> (3 - x, y).
        assert_eq!(c.bisection_partner(0), 3);
        assert_eq!(c.bisection_partner(1), 2);
        assert_eq!(c.bisection_partner(5), 6);
        assert_eq!(c.bisection_partner(12), 15);
    }

    fn at_us(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn link_flapping_across_retry_boundaries_recovers() {
        // fail -> heal -> fail -> heal on two links, with the second cut
        // landing a full retry timeout (10 us) after the first repair, so
        // transactions cross every phase of the cycle. Everything must
        // complete; the healed machine must finish the drain.
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(at_us(2.0), FaultKind::LinkDown { a: 5, b: 6 });
        plan.push(at_us(3.0), FaultKind::LinkUp { a: 0, b: 1 });
        plan.push(at_us(6.0), FaultKind::LinkUp { a: 5, b: 6 });
        plan.push(at_us(14.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(at_us(16.0), FaultKind::LinkUp { a: 0, b: 1 });
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 8,
            requests_per_cpu: 550,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 550, "healed links drain everything");
        assert!(r.poisoned.is_empty(), "flaps recover without poisons");
        assert_eq!(r.faults_applied.len(), 6);
        assert!(r.dropped + r.rerouted > 0, "the flaps hit live traffic");
        assert!(r.retries > 0, "lost responses push reads into retry");
    }

    #[test]
    fn channel_loss_and_restore_cycles_under_load() {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::ChannelDown { node: 0 });
        plan.push(at_us(1.2), FaultKind::ChannelDown { node: 0 });
        plan.push(at_us(5.0), FaultKind::ChannelUp { node: 0 });
        plan.push(at_us(8.0), FaultKind::ChannelDown { node: 5 });
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 60,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 60, "channel churn slows, never loses");
        assert_eq!(r.faults_applied.len(), 4);
        assert!(r.poisoned.is_empty());
    }

    #[test]
    fn undrained_cpu_resumes_and_finishes_its_quota() {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::NodeDrain { node: 3 });
        plan.push(at_us(40.0), FaultKind::NodeUndrain { node: 3 });
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 4,
            requests_per_cpu: 80,
            plan,
            ..Default::default()
        });
        // The drain poisons some in-flight reads, but once the node comes
        // back its window refills and every CPU works off its whole quota.
        assert_eq!(
            r.completed + r.poisoned.len() as u64,
            16 * 80,
            "the undrained cpu must finish its quota"
        );
        assert!(
            !r.poisoned.is_empty(),
            "reads touching the node during the outage must poison"
        );
        assert_eq!(r.faults_applied.len(), 2);
    }

    #[test]
    fn heal_mid_backoff_resumes_without_watchdog_noise() {
        // The node drains at 1 us and heals at 30 us — before the 50 us
        // retry timeout of the reads black-holed during the outage. The
        // victims are still waiting out their timeout when the fault
        // clears; their retries then land on live memory, everything
        // completes with zero poisons, and the watchdog never reports
        // livelock.
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::NodeDrain { node: 3 });
        plan.push(at_us(30.0), FaultKind::NodeUndrain { node: 3 });
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 120,
            plan,
            retry: RetryPolicy {
                timeout: SimDuration::from_us(50.0),
                backoff_base: SimDuration::from_us(2.0),
                backoff_cap: SimDuration::from_us(32.0),
                max_retries: 6,
            },
            watchdog_window: SimDuration::from_us(250.0),
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 120, "healed retries complete everything");
        assert!(r.poisoned.is_empty(), "the heal beats every retry budget");
        assert!(r.retries > 0, "the outage must push reads into retry");
        assert!(
            r.watchdog_reports.is_empty(),
            "retries keep making progress"
        );
    }

    #[test]
    fn transient_corruption_retransmits_and_completes() {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::FlitCorrupt { from: 0, to: 1 });
        plan.push(at_us(2.0), FaultKind::LinkDegrade { a: 2, b: 3 });
        plan.push(
            at_us(3.0),
            FaultKind::RouterPause {
                node: 5,
                ps: SimDuration::from_us(2.0).as_ps(),
            },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 100,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 100);
        assert!(r.poisoned.is_empty(), "transients never lose transactions");
        assert_eq!(
            r.crc_retransmits, 1,
            "the armed flit is resent exactly once"
        );
        assert_eq!(r.faults_applied.len(), 3);
    }

    #[test]
    fn monitored_run_is_clean_and_matches_plain_run() {
        let cfg = || {
            let mut plan = FaultPlan::new();
            plan.push(at_us(1.0), FaultKind::LinkDown { a: 0, b: 1 });
            plan.push(at_us(20.0), FaultKind::LinkUp { a: 0, b: 1 });
            FaultCampaignConfig {
                outstanding: 6,
                requests_per_cpu: 60,
                plan,
                ..Default::default()
            }
        };
        let plain = campaign16().run(&cfg());
        let (monitored, t, report) = campaign16().run_monitored(&cfg());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.max_attempts <= RetryPolicy::gs1280_default().max_retries + 1);
        assert_eq!(plain.completed, monitored.completed);
        assert_eq!(plain.retries, monitored.retries);
        assert_eq!(plain.mean_latency, monitored.mean_latency);
        assert_eq!(plain.elapsed, monitored.elapsed);
        assert_eq!(t.breakdown.charged_ps(), t.breakdown.end_to_end_ps());
    }

    #[test]
    #[should_panic(expected = "require run_monitored")]
    fn plain_run_refuses_mutations() {
        campaign16().run(&FaultCampaignConfig {
            mutation: Some(RecoveryMutation::LeakPoison),
            ..Default::default()
        });
    }

    /// A config whose 1 ps timeout poisons every remote read on its first
    /// attempt — the deterministic stage for the poison-path mutations.
    fn instant_poison_cfg(mutation: RecoveryMutation) -> FaultCampaignConfig {
        FaultCampaignConfig {
            requests_per_cpu: 10,
            retry: RetryPolicy {
                timeout: SimDuration::from_ps(1),
                max_retries: 0,
                ..RetryPolicy::gs1280_default()
            },
            mutation: Some(mutation),
            ..Default::default()
        }
    }

    #[test]
    fn monitor_catches_off_by_one_retry() {
        let (_, _, report) =
            campaign16().run_monitored(&instant_poison_cfg(RecoveryMutation::OffByOneRetry));
        assert!(
            report.violations.iter().any(|v| v.monitor == "retry-bound"),
            "the extra attempt must trip the retry bound: {:?}",
            report.violations
        );
        assert!(
            report.max_attempts > 1,
            "the mutation grants a second attempt"
        );
    }

    #[test]
    fn monitor_catches_poison_leak() {
        let (_, _, report) =
            campaign16().run_monitored(&instant_poison_cfg(RecoveryMutation::LeakPoison));
        assert!(
            report.violations.iter().any(|v| v.monitor == "poison-leak"),
            "the leaked entry must be seen immediately: {:?}",
            report.violations
        );
    }

    #[test]
    fn monitor_catches_skipped_window_refill() {
        let (_, _, report) =
            campaign16().run_monitored(&instant_poison_cfg(RecoveryMutation::SkipWindowRefill));
        let monitors: Vec<&str> = report
            .violations
            .iter()
            .map(|v| v.monitor.as_str())
            .collect();
        assert!(
            monitors.contains(&"window-refill"),
            "the shrunken window must be seen at the poison: {monitors:?}"
        );
        assert!(
            monitors.contains(&"issue-quota"),
            "the stalled quota must be seen at the drain: {monitors:?}"
        );
    }

    #[test]
    fn monitor_catches_ignored_timeouts_as_hung_transactions() {
        // A drained home plus ignored timer expiries: reads to the dead
        // node are never retried or poisoned. The watchdog escalation must
        // stop the run and name the hang instead of spinning forever.
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::NodeDrain { node: 3 });
        let (r, _, report) = campaign16().run_monitored(&FaultCampaignConfig {
            requests_per_cpu: 60,
            plan,
            mutation: Some(RecoveryMutation::IgnoreTimeouts),
            ..Default::default()
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.monitor == "hung-transactions"),
            "violations: {:?}",
            report.violations
        );
        assert!(
            r.completed < 16 * 60,
            "wedged windows keep some quota unfinished"
        );
    }
}
