//! Closed-loop load testing under live fault injection.
//!
//! [`FaultCampaign`] drives the same windowed read loop as
//! [`loadtest`](crate::loadtest) while a [`FaultPlan`] wounds the machine
//! mid-run: links die (losing the packets on their wires), CPUs drain,
//! RDRAM channels fail. The coherence layer's timeout-and-retry machinery
//! ([`RetryPolicy`], [`alphasim_coherence::PendingSet`], [`Watchdog`])
//! guarantees the robustness contract: **every transaction either
//! completes (possibly after bounded-backoff retries) or is poisoned with
//! a named cause** — nothing hangs silently, and a kernel-level watchdog
//! reports the stuck set if delivery progress ever stops for a whole
//! window.
//!
//! Campaigns execute on the epoch-parallel engine (`crate::epoch`): the
//! fabric, the requester-partitioned pending sets, and the home-node
//! memory controllers are split into torus row-band regions driven by
//! [`alphasim_kernel::shard::EpochExecutor`] on real threads, with fault
//! strikes and watchdog ticks applied at epoch barriers. Every result
//! stream is merged into a canonical order after the run, so the outcome
//! is byte-identical at any `threads`/`shards` combination.
//!
//! [`FaultCampaign::run_monitored`] arms the always-on invariant monitors
//! on top of the same loop: hung-transaction detection (with watchdog
//! escalation so a broken recovery path cannot hang the harness), the
//! retry bound, poison hygiene, window-refill integrity, route-table and
//! conservative-lookahead audits after every strike, and the telemetry
//! exact-sum identity. A [`RecoveryMutation`] deliberately breaks one
//! recovery path so the chaos engine can prove those monitors catch real
//! bugs and that the shrinker minimizes the schedule that exposed them.

use alphasim_coherence::{LivelockReport, RetryPolicy, Watchdog};
use alphasim_kernel::shard::EpochExecutor;
use alphasim_kernel::stats::MeanP99;
use alphasim_kernel::{DetRng, FaultKind, FaultPlan, SimDuration, SimTime};
use alphasim_mem::{Zbox, ZboxConfig};
use alphasim_net::partition::{tb_inject, FabricTables, NetHeat, RegionNet};
use alphasim_net::NetworkSim;
use alphasim_telemetry::trace::{PID_LINKS, PID_MEMORY, PID_MESSAGES, PID_SHARDS};
use alphasim_telemetry::{BreakdownTable, Registry, TraceSink};
use alphasim_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::epoch::{fallback_lookahead, CampaignCfg, CampaignGuide, CampaignWorker, Ev};
use crate::obs::{assemble, CampaignObservability, ObsAcc, ObserveOptions};

/// Consecutive no-progress watchdog windows a monitored run tolerates
/// before declaring the pending set hung and stopping. Healthy retry
/// chains deliver something well inside one window, so three silent
/// windows in a row can only mean transactions that will never move.
pub(crate) const STUCK_WINDOW_LIMIT: u32 = 3;

/// A deliberately broken recovery path. Chaos campaigns run each mutation
/// to prove the invariant monitors catch the breakage and the shrinker
/// minimizes the schedule that exposed it — mutation testing for the
/// robustness contract itself. Only honoured by
/// [`FaultCampaign::run_monitored`]; the plain entry points refuse
/// mutations because a broken recovery path can hang an unmonitored run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMutation {
    /// Timer expiries are ignored: lost transactions are never retried or
    /// poisoned and hang forever.
    IgnoreTimeouts,
    /// Poisoning skips the pending-set removal: the abandoned entry leaks.
    LeakPoison,
    /// A poisoned read does not refill its CPU's window slot, silently
    /// shrinking the issue window.
    SkipWindowRefill,
    /// Transactions get one more attempt than the retry policy allows.
    OffByOneRetry,
}

impl RecoveryMutation {
    /// Every mutation, in a fixed order.
    pub const ALL: [RecoveryMutation; 4] = [
        RecoveryMutation::IgnoreTimeouts,
        RecoveryMutation::LeakPoison,
        RecoveryMutation::SkipWindowRefill,
        RecoveryMutation::OffByOneRetry,
    ];

    /// Stable identifier (CLI argument, reproducer field).
    pub fn id(self) -> &'static str {
        match self {
            RecoveryMutation::IgnoreTimeouts => "ignore-timeouts",
            RecoveryMutation::LeakPoison => "leak-poison",
            RecoveryMutation::SkipWindowRefill => "skip-window-refill",
            RecoveryMutation::OffByOneRetry => "off-by-one-retry",
        }
    }

    /// Parse a stable identifier back to the mutation.
    pub fn from_id(id: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.id() == id)
    }
}

/// One invariant violation observed by the always-on monitors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which monitor fired (`hung-transactions`, `retry-bound`,
    /// `poison-leak`, `window-refill`, `issue-quota`, `route-consistency`,
    /// `lookahead-oracle`, `telemetry-balance`, `accounting`).
    pub monitor: String,
    /// What it saw.
    pub detail: String,
}

/// What the always-on monitors observed over one monitored run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Every violation, in detection order. Empty on a healthy machine.
    pub violations: Vec<Violation>,
    /// Highest attempt count any transaction reached (bounded by
    /// `max_retries + 1` when the retry machinery is intact).
    pub max_attempts: u32,
}

impl MonitorReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// How campaign CPUs pick the home of each read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPattern {
    /// Each request goes to a uniformly random *other* CPU.
    UniformRemote,
    /// Every CPU reads from its mirror across the vertical bisection of the
    /// torus, so all traffic crosses the bisection — the pattern behind the
    /// resilience sweep's achieved-bisection-bandwidth curve.
    Bisection,
}

/// Parameters of one fault campaign.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// Outstanding reads per CPU.
    pub outstanding: usize,
    /// Reads each CPU completes before the run ends.
    pub requests_per_cpu: usize,
    /// Traffic pattern.
    pub pattern: CampaignPattern,
    /// RNG seed.
    pub seed: u64,
    /// The fault schedule (empty plan = healthy baseline run).
    pub plan: FaultPlan,
    /// Timeout / backoff / poison policy for lost transactions.
    pub retry: RetryPolicy,
    /// Watchdog no-progress window (should exceed the retry timeout, or
    /// ordinary timeouts read as livelock).
    pub watchdog_window: SimDuration,
    /// Event-queue region shards for the run (`0` = resolve via
    /// [`alphasim_kernel::par::shards`]). Results are byte-identical at
    /// any value; the shard map only repartitions the queue.
    pub shards: usize,
    /// Worker threads driving the region shards (`0` = resolve via the
    /// campaign's default, then [`alphasim_kernel::par::threads`]).
    /// Results are byte-identical at any value; threads only change which
    /// core advances each region.
    pub threads: usize,
    /// Deliberately broken recovery path for mutation testing (`None` =
    /// intact machinery). Only honoured by
    /// [`FaultCampaign::run_monitored`].
    pub mutation: Option<RecoveryMutation>,
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            outstanding: 4,
            requests_per_cpu: 100,
            pattern: CampaignPattern::UniformRemote,
            seed: 0xFA117,
            plan: FaultPlan::new(),
            retry: RetryPolicy::gs1280_default(),
            watchdog_window: SimDuration::from_us(200.0),
            shards: 0,
            threads: 0,
            mutation: None,
        }
    }
}

/// A transaction abandoned after exhausting its retries (the NAK path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonedTx {
    /// Correlation tag.
    pub tag: u64,
    /// Requesting CPU.
    pub cpu: usize,
    /// Home node of the read.
    pub home: usize,
    /// Issue attempts spent.
    pub attempts: u32,
    /// Why it was abandoned.
    pub cause: String,
}

/// The outcome of one fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Reads completed (every issued read completes or is poisoned).
    pub completed: u64,
    /// Retries issued by the timeout/drop machinery.
    pub retries: u64,
    /// Messages lost with failed wires.
    pub dropped: u64,
    /// Queued messages evicted from failing links and re-routed.
    pub rerouted: u64,
    /// Transactions abandoned with a named cause.
    pub poisoned: Vec<PoisonedTx>,
    /// Livelock reports (normally empty: retries keep making progress).
    pub watchdog_reports: Vec<LivelockReport>,
    /// Faults that actually struck, in strike order.
    pub faults_applied: Vec<FaultKind>,
    /// Link-layer CRC retransmissions triggered by transient flit
    /// corruption.
    pub crc_retransmits: u64,
    /// Mean end-to-end read latency (first issue to data return, across
    /// every retry).
    pub mean_latency: SimDuration,
    /// Median read latency (same nearest-rank rule as the p99).
    pub p50_latency: SimDuration,
    /// 99th-percentile read latency.
    pub p99_latency: SimDuration,
    /// Aggregate delivered read bandwidth, GB/s (64 B per completed read),
    /// measured to the last delivery (stale retry timers do not inflate
    /// the denominator). Includes the recovery tail: after the unwounded
    /// CPUs finish their quota, the machine idles while the wounded rows
    /// grind out their remainder, so this understates the sustained rate.
    pub delivered_gbps: f64,
    /// Steady-state delivered bandwidth, GB/s: bytes completed by the
    /// 90th-percentile completion, over that interval. Trimming the
    /// straggler tail measures the rate the wounded machine actually
    /// sustains while all CPUs are active.
    pub steady_gbps: f64,
    /// Time of the last delivery.
    pub elapsed: SimDuration,
}

/// Telemetry gathered by an instrumented campaign run
/// ([`FaultCampaign::run_instrumented`]): the component counters, the
/// per-hop latency breakdown, and (when requested) the Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct CampaignTelemetry {
    /// Component counters, gauges, and histograms (coherence retry
    /// machinery, Zbox page behaviour, network drop/reroute counts).
    pub registry: Registry,
    /// Where every picosecond of load-to-use latency went, stage by stage.
    pub breakdown: BreakdownTable,
    /// Chrome-trace sink, present when tracing was enabled.
    pub trace: Option<TraceSink>,
}

/// Stage names of the load-to-use pipeline, in pipeline order. The
/// aggregator pre-charges all of them with zero so the breakdown table's
/// row order never depends on which transaction happens to finish first
/// (or on which region it completed in).
pub(crate) const PIPELINE_STAGES: [&str; 16] = [
    "request: queue + arbitration",
    "request: router pipeline",
    "request: wire flight",
    "request: link serialization",
    "request: congestion penalty",
    "directory lookup (fixed)",
    "zbox queue",
    "dram open page",
    "dram closed page",
    "response: queue + arbitration",
    "response: router pipeline",
    "response: wire flight",
    "response: link serialization",
    "response: congestion penalty",
    "front end (fixed)",
    "unattributed (retry / backoff)",
];

/// A machine prepared for fault-injection load testing: a network with
/// drop-on-failure semantics plus one memory controller per CPU node.
pub struct FaultCampaign<T: Topology> {
    net: NetworkSim<T>,
    cpus: Vec<NodeId>,
    /// One controller per CPU node, indexed by node id (deterministic).
    zboxes: Vec<Zbox>,
    front_overhead: SimDuration,
    directory_overhead: SimDuration,
    /// Default worker-thread count when the config leaves `threads` at 0
    /// (machine builders pass their own knob through here).
    default_threads: usize,
}

impl<T: Topology> FaultCampaign<T> {
    /// Assemble a campaign over `net`; each CPU's memory lives on its own
    /// node (the GS1280 arrangement).
    pub fn new(
        mut net: NetworkSim<T>,
        zbox: ZboxConfig,
        front_overhead: SimDuration,
        directory_overhead: SimDuration,
    ) -> Self {
        net.set_drop_in_flight(true);
        let cpus = net.topology().endpoints();
        assert!(!cpus.is_empty(), "no CPU endpoints");
        let nodes = net.topology().node_count();
        let zboxes = (0..nodes).map(|_| Zbox::new(zbox)).collect();
        FaultCampaign {
            net,
            cpus,
            zboxes,
            front_overhead,
            directory_overhead,
            default_threads: 0,
        }
    }

    /// Default worker-thread count for runs whose config leaves `threads`
    /// at 0 (`0` = fall through to [`alphasim_kernel::par::threads`]).
    pub fn set_default_threads(&mut self, threads: usize) {
        self.default_threads = threads;
    }

    /// The bisection mirror of `cpu`: same row, column reflected across the
    /// vertical cut.
    fn bisection_partner(&self, cpu: usize) -> usize {
        let coord = |i: usize| {
            self.net
                .topology()
                .coord(self.cpus[i])
                .expect("bisection pattern needs planar coordinates")
        };
        let cols = (0..self.cpus.len())
            .map(|i| coord(i).x as usize)
            .max()
            .expect("fault campaign has at least one CPU")
            + 1;
        let c = coord(cpu);
        let mx = cols - 1 - c.x as usize;
        (0..self.cpus.len())
            .find(|&i| {
                let o = coord(i);
                o.x as usize == mx && o.y == c.y
            })
            .expect("mirror CPU exists")
    }
}

impl<T: Topology + Clone + Send + Sync + 'static> FaultCampaign<T> {
    /// Run the campaign to completion. Panics (loudly, by design) if the
    /// fault plan would partition the fabric, or if `cfg` carries a
    /// [`RecoveryMutation`] — a broken recovery path can hang an
    /// unmonitored run, so mutations require
    /// [`run_monitored`](Self::run_monitored).
    pub fn run(self, cfg: &FaultCampaignConfig) -> CampaignResult {
        assert!(
            cfg.mutation.is_none(),
            "recovery mutations require run_monitored"
        );
        self.run_inner(cfg, false, false, false, None).0
    }

    /// Run the campaign with the always-on invariant monitors armed: hung
    /// transactions (with watchdog escalation, so even a broken recovery
    /// path terminates), the retry bound, poison hygiene, window-refill
    /// integrity, issue quotas, route-table and conservative-lookahead
    /// audits after every strike, the telemetry exact-sum identity, and
    /// issue accounting. Violations are reported rather than panicked so
    /// the chaos engine can shrink the schedule that exposed them.
    /// `cfg.mutation` is honoured here, and only here.
    pub fn run_monitored(
        self,
        cfg: &FaultCampaignConfig,
    ) -> (CampaignResult, CampaignTelemetry, MonitorReport) {
        let (result, telemetry, report, _) = self.run_inner(cfg, true, false, true, None);
        (
            result,
            telemetry.expect("collection was requested"),
            report.expect("monitoring was requested"),
        )
    }

    /// Run the campaign with telemetry collection: component counters, the
    /// per-hop latency breakdown, and (with `trace`) a Chrome-trace sink
    /// with message, link, and DRAM lanes. Telemetry never perturbs the
    /// simulation — an instrumented run returns the same
    /// [`CampaignResult`] as [`run`](Self::run).
    pub fn run_instrumented(
        self,
        cfg: &FaultCampaignConfig,
        trace: bool,
    ) -> (CampaignResult, CampaignTelemetry) {
        assert!(
            cfg.mutation.is_none(),
            "recovery mutations require run_monitored"
        );
        let (result, telemetry, _, _) = self.run_inner(cfg, true, trace, false, None);
        (result, telemetry.expect("collection was requested"))
    }

    /// Run the campaign with full time-resolved observability on top of
    /// the instrumented telemetry: fixed-width windowed metric timelines,
    /// P×Q topology heatmaps, per-completion latency pairs, and the
    /// epoch-parallel profiler's per-shard spans (exported as Chrome-trace
    /// lanes when `opts.trace` is set).
    ///
    /// Like every other collector, observability never perturbs the
    /// simulation: the [`CampaignResult`] and every sim-time field are
    /// byte-identical to a plain [`run`](Self::run), at any
    /// `threads`/`shards` combination (the epoch profile is the one
    /// shard-*count*-dependent piece, since it describes the engine
    /// itself rather than the machine).
    pub fn run_observed(
        self,
        cfg: &FaultCampaignConfig,
        opts: ObserveOptions,
    ) -> (CampaignResult, CampaignTelemetry, CampaignObservability) {
        assert!(
            cfg.mutation.is_none(),
            "recovery mutations require run_monitored"
        );
        let (result, telemetry, _, obs) = self.run_inner(cfg, true, opts.trace, false, Some(opts));
        (
            result,
            telemetry.expect("collection was requested"),
            obs.expect("observation was requested"),
        )
    }

    fn run_inner(
        self,
        cfg: &FaultCampaignConfig,
        collect: bool,
        trace: bool,
        monitored: bool,
        observe: Option<ObserveOptions>,
    ) -> (
        CampaignResult,
        Option<CampaignTelemetry>,
        Option<MonitorReport>,
        Option<CampaignObservability>,
    ) {
        assert!(cfg.outstanding >= 1, "need at least one outstanding read");
        assert!(
            cfg.watchdog_window > cfg.retry.timeout,
            "watchdog window must exceed the retry timeout"
        );
        let shards = if cfg.shards == 0 {
            alphasim_kernel::par::shards()
        } else {
            cfg.shards
        };
        let threads = if cfg.threads != 0 {
            cfg.threads
        } else if self.default_threads != 0 {
            self.default_threads
        } else {
            alphasim_kernel::par::threads()
        };
        let ncpus = self.cpus.len();
        let partners: Vec<usize> = match cfg.pattern {
            CampaignPattern::Bisection => {
                (0..ncpus).map(|cpu| self.bisection_partner(cpu)).collect()
            }
            CampaignPattern::UniformRemote => Vec::new(),
        };
        let master = FabricTables::new(
            self.net.topology().clone(),
            *self.net.timing(),
            self.net.policy(),
            shards,
        );
        let regions = master.region_count();
        let node_count = self.zboxes.len();
        let ccfg = Arc::new(CampaignCfg {
            outstanding: cfg.outstanding,
            requests_per_cpu: cfg.requests_per_cpu as u64,
            retry: cfg.retry,
            mutation: cfg.mutation,
            pattern: cfg.pattern,
            partners,
            front_overhead: self.front_overhead,
            directory_overhead: self.directory_overhead,
            monitored,
        });
        let cpus = Arc::new(self.cpus.clone());
        // Partition the memory controllers by home region: exactly one
        // region owns each node's Zbox.
        let mut zparts: Vec<Vec<Option<Zbox>>> = (0..regions)
            .map(|_| (0..node_count).map(|_| None).collect())
            .collect();
        for (n, z) in self.zboxes.into_iter().enumerate() {
            zparts[master.region_of(NodeId::new(n))][n] = Some(z);
        }
        let shared = Arc::new(master.clone());
        let workers: Vec<CampaignWorker<T>> = zparts
            .into_iter()
            .enumerate()
            .map(|(region, zboxes)| {
                let mut net = RegionNet::new(region, shared.clone());
                if trace {
                    net.enable_trace();
                }
                if let Some(o) = observe {
                    net.enable_heat(o.window_ps);
                }
                CampaignWorker {
                    cfg: ccfg.clone(),
                    cpus: cpus.clone(),
                    net,
                    rngs: (0..ncpus)
                        .map(|i| DetRng::seeded(cfg.seed).split(i as u64))
                        .collect(),
                    issued: vec![0u64; ncpus],
                    pending: alphasim_coherence::PendingSet::new(),
                    poisoned: Vec::new(),
                    max_attempts: 0,
                    latency_samples: Vec::new(),
                    completions: Vec::new(),
                    pending_log: Vec::new(),
                    violations: Vec::new(),
                    last_delivery: SimTime::ZERO,
                    zboxes,
                    ever_drained: vec![false; ncpus],
                    breakdown: collect.then(BreakdownTable::default),
                    obs: observe.map(|o| Box::new(ObsAcc::new(o.window_ps, node_count))),
                    steps: Vec::new(),
                }
            })
            .collect();
        let lookahead = master
            .conservative_lookahead()
            .unwrap_or_else(fallback_lookahead);
        let mut exec = EpochExecutor::new(workers, lookahead, threads);
        if let Some(o) = observe {
            exec.enable_profile(o.wall);
        }
        // Prime every CPU's issue window at time zero. Faults scheduled at
        // zero strike first (the guide runs before any event fires), just
        // as the sequential engine ordered them.
        for cpu in 0..ncpus {
            exec.seed(
                master.region_of(cpus[cpu]),
                SimTime::ZERO,
                tb_inject(cpu),
                Ev::Inject { cpu },
            );
        }
        let mut guide = CampaignGuide {
            master,
            cpus: cpus.clone(),
            plan: cfg.plan.events().to_vec(),
            plan_idx: 0,
            window: cfg.watchdog_window,
            dog: Watchdog::new(cfg.watchdog_window),
            dog_next: SimTime::ZERO + cfg.watchdog_window,
            live: true,
            consecutive_stuck: 0,
            monitored,
            faults_applied: Vec::new(),
            reports: Vec::new(),
            violations: Vec::new(),
            dropped: 0,
            rerouted: 0,
        };
        let epoch_report = exec.run_guided(&mut guide);
        let profile = exec.take_profile();
        let mut workers = exec.into_workers();

        // ---- canonical aggregation ------------------------------------
        // Every stream below is merged into an order that is a pure
        // function of simulation identities (time, tag, node), never of
        // shard count or thread interleaving.
        let completed: u64 = workers.iter().map(|w| w.pending.completed()).sum();
        let retries: u64 = workers.iter().map(|w| w.pending.retries()).sum();
        let crc_retransmits: u64 = workers.iter().map(|w| w.net.crc_retransmits()).sum();
        let max_attempts = workers.iter().map(|w| w.max_attempts).max().unwrap_or(0);
        let last_delivery = workers
            .iter()
            .map(|w| w.last_delivery)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut poisoned: Vec<PoisonedTx> = workers
            .iter_mut()
            .flat_map(|w| w.poisoned.drain(..))
            .collect();
        poisoned.sort_by_key(|p| p.tag);
        let mut completions: Vec<(SimTime, u64)> = workers
            .iter_mut()
            .flat_map(|w| w.completions.drain(..))
            .collect();
        completions.sort_unstable();
        // The latency fold sorts its samples, so per-worker concatenation
        // order cannot leak into the mean/p99.
        let mut latencies = MeanP99::new();
        for w in &workers {
            for &sample in &w.latency_samples {
                latencies.record(sample);
            }
        }
        // Global pending-set peak: prefix-sum max over the merged
        // occupancy deltas (at equal times a release sorts before an
        // insert, the conservative reading).
        let mut deltas: Vec<(u64, i8)> = workers
            .iter_mut()
            .flat_map(|w| w.pending_log.drain(..))
            .collect();
        deltas.sort_unstable();
        let mut occupancy = 0i64;
        let mut pending_peak = 0i64;
        for &(_, d) in &deltas {
            occupancy += i64::from(d);
            pending_peak = pending_peak.max(occupancy);
        }
        let issued_total: u64 = workers.iter().map(|w| w.issued.iter().sum::<u64>()).sum();
        let pending_total: usize = workers.iter().map(|w| w.pending.len()).sum();

        let mut monitor_violations = monitored.then(|| {
            let mut timed: Vec<(u64, String, String)> = workers
                .iter_mut()
                .flat_map(|w| w.violations.drain(..))
                .chain(guide.violations.drain(..))
                .collect();
            timed.sort_unstable();
            let mut violations: Vec<Violation> = timed
                .into_iter()
                .map(|(_, monitor, detail)| Violation { monitor, detail })
                .collect();
            if pending_total > 0 && guide.consecutive_stuck < STUCK_WINDOW_LIMIT {
                let mut tags: Vec<u64> = workers
                    .iter()
                    .flat_map(|w| w.pending.iter().map(|(tag, _)| tag))
                    .collect();
                tags.sort_unstable();
                violations.push(Violation {
                    monitor: "hung-transactions".to_string(),
                    detail: format!("survived the drain: tags {tags:x?}"),
                });
            }
            // Issue quota: a CPU that was never drained must have issued
            // its full budget (a silently shrinking window stalls early).
            for cpu in 0..ncpus {
                let owner = guide.master.region_of(cpus[cpu]);
                let issued: u64 = workers.iter().map(|w| w.issued[cpu]).sum();
                if !workers[owner].ever_drained[cpu]
                    && !guide.master.is_drained(cpus[cpu])
                    && issued < cfg.requests_per_cpu as u64
                {
                    violations.push(Violation {
                        monitor: "issue-quota".to_string(),
                        detail: format!(
                            "cpu {cpu} issued {issued} of {} reads without ever draining",
                            cfg.requests_per_cpu
                        ),
                    });
                }
            }
            // Accounting: every issued read is completed, poisoned, or
            // (already reported above) still pending.
            let accounted = completed + poisoned.len() as u64 + pending_total as u64;
            if accounted != issued_total {
                violations.push(Violation {
                    monitor: "accounting".to_string(),
                    detail: format!(
                        "completed + poisoned + pending = {accounted} but issued = {issued_total}"
                    ),
                });
            }
            violations
        });
        if !monitored {
            assert!(
                pending_total == 0,
                "hung transactions survived the drain: {:?}",
                workers
                    .iter()
                    .flat_map(|w| w.pending.iter().map(|(tag, _)| tag))
                    .collect::<Vec<_>>()
            );
        }

        let (mean_latency, p50_latency, p99_latency) = latencies.finish_full();
        let elapsed = last_delivery.since(SimTime::ZERO);
        let delivered_gbps = if elapsed > SimDuration::ZERO {
            completed as f64 * 64.0 / elapsed.as_secs() / 1e9
        } else {
            0.0
        };
        let steady_gbps = match completions.len() {
            0 => 0.0,
            n => {
                let idx = ((n * 9) / 10).min(n - 1);
                let t = completions[idx].0.since(SimTime::ZERO);
                if t > SimDuration::ZERO {
                    (idx + 1) as f64 * 64.0 / t.as_secs() / 1e9
                } else {
                    0.0
                }
            }
        };
        let telemetry = collect.then(|| {
            let mut registry = Registry::default();
            registry.counter_add("coherence.completed", completed);
            registry.counter_add("coherence.retries", retries);
            registry.gauge_max("coherence.pending_peak", pending_peak as u64);
            guide.dog.export_metrics(&mut registry);
            for n in 0..node_count {
                let owner = guide.master.region_of(NodeId::new(n));
                workers[owner].zboxes[n]
                    .as_ref()
                    .expect("every node's zbox has exactly one owner region")
                    .export_metrics(&mut registry);
            }
            registry.counter_add("net.dropped", guide.dropped);
            registry.counter_add("net.rerouted", guide.rerouted);
            registry.counter_add("campaign.poisoned", poisoned.len() as u64);
            registry.counter_add("campaign.faults_applied", guide.faults_applied.len() as u64);
            registry.counter_add(
                "sim.events_processed",
                epoch_report.processed.iter().sum::<u64>(),
            );
            // Engine-shape metrics are registered only when the config
            // pins the knob: a CLI-resolved shard or thread count must
            // never leak into byte-checked artifacts. Gauges (max-merge),
            // so merging same-shape campaign registries stays idempotent.
            if cfg.shards != 0 {
                registry.gauge_max("engine.shards", shards as u64);
                for (i, &peak) in epoch_report.shard_peaks.iter().enumerate() {
                    registry
                        .gauge_max(&format!("engine.shard{i:02}.peak_queue_depth"), peak as u64);
                }
            }
            if cfg.threads != 0 {
                registry.gauge_max("engine.threads", threads as u64);
            }
            // Pre-charge the stage rows so the merged table's row order is
            // the pipeline order, never completion order.
            let mut breakdown = BreakdownTable::default();
            for stage in PIPELINE_STAGES {
                breakdown.charge(stage, 0);
            }
            for w in &workers {
                if let Some(bd) = w.breakdown.as_ref() {
                    breakdown.merge(bd);
                }
            }
            let trace_sink = trace.then(|| {
                let mut sink = TraceSink::new();
                sink.name_process(PID_MESSAGES, "network: message lifetimes");
                sink.name_process(PID_LINKS, "network: link occupancy");
                for cpu in cpus.iter() {
                    sink.name_thread(
                        PID_MESSAGES,
                        cpu.index() as u32,
                        &format!("node {}", cpu.index()),
                    );
                }
                sink.name_process(PID_MEMORY, "memory: zbox dram service");
                for w in workers.iter_mut() {
                    if let Some(region_sink) = w.net.take_trace() {
                        sink.merge_from(region_sink);
                    }
                }
                // One profiler lane per shard: each epoch a shard worked
                // in becomes a complete event spanning the epoch's
                // sim-time bounds, carrying its event counts.
                if let Some(p) = profile.as_ref() {
                    sink.name_process(PID_SHARDS, "engine: epoch shards");
                    for s in 0..p.shard_count() {
                        sink.name_thread(PID_SHARDS, s as u32, &format!("shard {s}"));
                    }
                    for sample in &p.samples {
                        for (s, (&ev, &mg)) in
                            sample.processed.iter().zip(&sample.merged).enumerate()
                        {
                            if ev == 0 && mg == 0 {
                                continue;
                            }
                            sink.complete(
                                "epoch",
                                "shard",
                                PID_SHARDS,
                                s as u32,
                                sample.start_ps,
                                sample.end_ps.saturating_sub(sample.start_ps),
                                &[("events", ev), ("merged", mg)],
                            );
                        }
                    }
                }
                sink.canonical_sort();
                sink
            });
            CampaignTelemetry {
                registry,
                breakdown,
                trace: trace_sink,
            }
        });
        // Telemetry exact-sum: the breakdown must balance to the last
        // picosecond even on a wounded run (shortfall lands in the
        // unattributed bucket, never vanishes).
        if let (Some(violations), Some(t)) = (monitor_violations.as_mut(), telemetry.as_ref()) {
            if t.breakdown.charged_ps() != t.breakdown.end_to_end_ps() {
                violations.push(Violation {
                    monitor: "telemetry-balance".to_string(),
                    detail: format!(
                        "charged {} ps != end-to-end {} ps",
                        t.breakdown.charged_ps(),
                        t.breakdown.end_to_end_ps()
                    ),
                });
            }
        }
        let report = monitor_violations.map(|violations| MonitorReport {
            violations,
            max_attempts,
        });
        // Fold the per-region observability accumulators (heat, windows,
        // latency pairs) in region order and lay them onto the topology
        // grid; the merged pending-delta log replays into the windowed
        // pending-depth gauge.
        let observability = observe.map(|o| {
            let link_count = guide.master.link_count();
            let link_from: Vec<usize> = (0..link_count)
                .map(|id| guide.master.link_meta(id).0.index())
                .collect();
            let mut heat = NetHeat::new(o.window_ps, node_count, link_count);
            let mut acc = ObsAcc::new(o.window_ps, node_count);
            for w in workers.iter_mut() {
                heat.merge(&w.net.take_heat().expect("heat was enabled"));
                acc.merge(w.obs.as_deref().expect("observation was enabled"));
            }
            assemble(
                guide.master.topology(),
                o.window_ps,
                heat,
                acc,
                profile.expect("profiling was enabled"),
                &link_from,
                &deltas,
            )
        });
        let result = CampaignResult {
            completed,
            retries,
            dropped: guide.dropped,
            rerouted: guide.rerouted,
            poisoned,
            watchdog_reports: guide.reports,
            faults_applied: guide.faults_applied,
            crc_retransmits,
            mean_latency,
            p50_latency,
            p99_latency,
            delivered_gbps,
            steady_gbps,
            elapsed,
        };
        (result, telemetry, report, observability)
    }
}

/// Convenience: a fault campaign over a GS1280 (both Zboxes of each node
/// serve, as in the load test).
pub fn gs1280_fault_campaign(machine: &crate::Gs1280) -> FaultCampaign<crate::gs1280::FabricTopo> {
    let calib = machine.calibration();
    let zbox = ZboxConfig {
        bandwidth_gbps: calib.zbox.bandwidth_gbps * 2.0,
        ..calib.zbox
    };
    let mut campaign = FaultCampaign::new(
        machine.network(),
        zbox,
        calib.local_fixed,
        calib.remote_fixed,
    );
    campaign.set_default_threads(machine.worker_threads());
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gs1280;

    fn campaign16() -> FaultCampaign<crate::gs1280::FabricTopo> {
        gs1280_fault_campaign(&Gs1280::builder().cpus(16).build())
    }

    #[test]
    fn zero_retry_policy_poisons_at_the_exact_boundary_with_named_cause() {
        // max_retries = 0 with a timeout far below any remote round trip:
        // every remote read times out on its original send, and the
        // `attempts > max_retries` threshold poisons it immediately — the
        // exact boundary, with the retry count named in the cause. No
        // faults are injected; the policy alone drives the NAK path.
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 20,
            retry: RetryPolicy {
                timeout: SimDuration::from_ps(1),
                max_retries: 0,
                ..RetryPolicy::gs1280_default()
            },
            ..Default::default()
        });
        assert_eq!(
            r.completed + r.poisoned.len() as u64,
            16 * 20,
            "every read completes or is poisoned"
        );
        assert!(!r.poisoned.is_empty(), "a 1 ps timeout must poison reads");
        assert_eq!(r.retries, 0, "max_retries = 0 leaves no room for retries");
        for p in &r.poisoned {
            assert_eq!(p.attempts, 1, "poisoned on the original send");
            assert!(
                p.cause.contains("exhausted 0 retries"),
                "cause must name the exact retry budget: {}",
                p.cause
            );
        }
    }

    #[test]
    fn healthy_baseline_matches_issue_count() {
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 50,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 50);
        assert!(r.poisoned.is_empty());
        assert_eq!(r.retries, 0);
        assert_eq!(r.dropped, 0);
        assert!(r.watchdog_reports.is_empty());
        assert!(r.delivered_gbps > 0.0);
        assert!(r.p99_latency >= r.mean_latency);
    }

    #[test]
    fn fault_campaign_smoke() {
        // The CI smoke job: a small torus, two mid-run link failures,
        // watchdog enabled. Every transaction must complete or be poisoned
        // with a named cause — zero hung transactions.
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::LinkDown { a: 0, b: 1 },
        );
        plan.push(
            SimTime::ZERO + SimDuration::from_us(2.0),
            FaultKind::LinkDown { a: 5, b: 6 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 8,
            requests_per_cpu: 100,
            plan,
            ..Default::default()
        });
        assert_eq!(
            r.completed + r.poisoned.len() as u64,
            16 * 100,
            "every read completes or is poisoned — none hang"
        );
        assert_eq!(r.faults_applied.len(), 2);
        assert!(r.dropped + r.rerouted > 0, "the cuts hit live traffic");
        for p in &r.poisoned {
            assert!(!p.cause.is_empty(), "poisoned tx must name its cause");
        }
    }

    #[test]
    fn dropped_requests_are_retried_to_completion() {
        // One cut through a bisection-heavy pattern: drops occur, retries
        // recover them, everything completes.
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.5),
            FaultKind::LinkDown { a: 1, b: 2 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 80,
            pattern: CampaignPattern::Bisection,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed + r.poisoned.len() as u64, 16 * 80);
        if r.dropped > 0 {
            assert!(r.retries > 0, "drops must trigger retries");
        }
    }

    #[test]
    fn drained_node_poisons_its_outstanding_reads() {
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::NodeDrain { node: 3 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 4,
            requests_per_cpu: 200,
            plan,
            ..Default::default()
        });
        // Node 3 stops issuing and its memory goes dark: reads touching it
        // are poisoned with a named cause, everything else completes, and
        // nothing hangs.
        assert!(r.completed < 16 * 200);
        assert!(r.completed > 15 * 200 / 2, "other CPUs keep running");
        assert!(!r.poisoned.is_empty(), "reads to the dead node must poison");
        for p in &r.poisoned {
            assert!(
                p.cpu == 3 || p.home == 3,
                "only reads touching the drained node may poison: {p:?}"
            );
            assert!(p.cause.contains("drained"), "{}", p.cause);
        }
    }

    #[test]
    fn channel_failure_is_applied_to_the_zbox() {
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::ChannelDown { node: 0 },
        );
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.2),
            FaultKind::ChannelDown { node: 0 },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 60,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 60);
        assert_eq!(r.faults_applied.len(), 2);
    }

    #[test]
    fn deterministic_given_seed_and_plan() {
        let run = || {
            let mut plan = FaultPlan::new();
            plan.push(
                SimTime::ZERO + SimDuration::from_us(1.0),
                FaultKind::LinkDown { a: 0, b: 1 },
            );
            campaign16().run(&FaultCampaignConfig {
                outstanding: 6,
                requests_per_cpu: 60,
                plan,
                ..Default::default()
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn healthy_instrumented_run_attributes_every_picosecond() {
        let cfg = FaultCampaignConfig {
            requests_per_cpu: 40,
            ..Default::default()
        };
        let (r, t) = campaign16().run_instrumented(&cfg, false);
        assert_eq!(r.completed, 16 * 40);
        assert_eq!(t.breakdown.transactions(), r.completed);
        // On a healthy run the pipeline stages explain the entire
        // load-to-use latency with nothing left over: the table's charged
        // total equals the end-to-end total exactly (integer picoseconds),
        // and the unattributed bucket is empty.
        assert_eq!(t.breakdown.charged_ps(), t.breakdown.end_to_end_ps());
        assert_eq!(t.breakdown.stage_ps("unattributed (retry / backoff)"), 0);
        // Fixed overheads are charged once per completed read.
        let dir_ps = t.breakdown.stage_ps("directory lookup (fixed)");
        assert_eq!(
            dir_ps,
            campaign16().directory_overhead.as_ps() * r.completed,
            "directory overhead charged exactly once per read"
        );
        // Counters mirror the campaign result and the zbox totals.
        assert_eq!(t.registry.counter("coherence.completed"), r.completed);
        assert_eq!(t.registry.counter("coherence.retries"), 0);
        assert_eq!(t.registry.counter("net.dropped"), 0);
        assert_eq!(t.registry.counter("zbox.accesses"), r.completed);
        assert_eq!(
            t.registry.counter("zbox.page_hits") + t.registry.counter("zbox.page_misses"),
            r.completed
        );
        assert!(t.registry.counter("sim.events_processed") > 0);
        assert!(t.registry.gauge("coherence.pending_peak") >= cfg.outstanding as u64);
        assert!(t.trace.is_none(), "tracing was not requested");
    }

    #[test]
    fn instrumentation_never_perturbs_the_simulation() {
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_us(1.0),
            FaultKind::LinkDown { a: 0, b: 1 },
        );
        let cfg = FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 60,
            plan,
            ..Default::default()
        };
        let plain = campaign16().run(&cfg);
        let (instrumented, t) = campaign16().run_instrumented(&cfg, true);
        assert_eq!(plain.completed, instrumented.completed);
        assert_eq!(plain.retries, instrumented.retries);
        assert_eq!(plain.dropped, instrumented.dropped);
        assert_eq!(plain.mean_latency, instrumented.mean_latency);
        assert_eq!(plain.p99_latency, instrumented.p99_latency);
        assert_eq!(plain.elapsed, instrumented.elapsed);
        // The wounded run still balances its breakdown: whatever the
        // stages cannot explain (backoff, lost flights) is charged to the
        // unattributed bucket, never silently dropped.
        assert_eq!(t.breakdown.charged_ps(), t.breakdown.end_to_end_ps());
        let trace = t.trace.expect("tracing was requested");
        assert!(!trace.is_empty(), "traced run must record events");
    }

    #[test]
    fn bisection_pattern_mirrors_across_the_cut() {
        let c = campaign16();
        // 4x4 torus: (x, y) -> (3 - x, y).
        assert_eq!(c.bisection_partner(0), 3);
        assert_eq!(c.bisection_partner(1), 2);
        assert_eq!(c.bisection_partner(5), 6);
        assert_eq!(c.bisection_partner(12), 15);
    }

    fn at_us(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn link_flapping_across_retry_boundaries_recovers() {
        // fail -> heal -> fail -> heal on two links, with the second cut
        // landing a full retry timeout (10 us) after the first repair, so
        // transactions cross every phase of the cycle. Everything must
        // complete; the healed machine must finish the drain.
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(at_us(2.0), FaultKind::LinkDown { a: 5, b: 6 });
        plan.push(at_us(3.0), FaultKind::LinkUp { a: 0, b: 1 });
        plan.push(at_us(6.0), FaultKind::LinkUp { a: 5, b: 6 });
        plan.push(at_us(14.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(at_us(16.0), FaultKind::LinkUp { a: 0, b: 1 });
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 8,
            requests_per_cpu: 550,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 550, "healed links drain everything");
        assert!(r.poisoned.is_empty(), "flaps recover without poisons");
        assert_eq!(r.faults_applied.len(), 6);
        assert!(r.dropped + r.rerouted > 0, "the flaps hit live traffic");
        assert!(r.retries > 0, "lost responses push reads into retry");
    }

    #[test]
    fn channel_loss_and_restore_cycles_under_load() {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::ChannelDown { node: 0 });
        plan.push(at_us(1.2), FaultKind::ChannelDown { node: 0 });
        plan.push(at_us(5.0), FaultKind::ChannelUp { node: 0 });
        plan.push(at_us(8.0), FaultKind::ChannelDown { node: 5 });
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 60,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 60, "channel churn slows, never loses");
        assert_eq!(r.faults_applied.len(), 4);
        assert!(r.poisoned.is_empty());
    }

    #[test]
    fn undrained_cpu_resumes_and_finishes_its_quota() {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::NodeDrain { node: 3 });
        plan.push(at_us(40.0), FaultKind::NodeUndrain { node: 3 });
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 4,
            requests_per_cpu: 80,
            plan,
            ..Default::default()
        });
        // The drain poisons some in-flight reads, but once the node comes
        // back its window refills and every CPU works off its whole quota.
        assert_eq!(
            r.completed + r.poisoned.len() as u64,
            16 * 80,
            "the undrained cpu must finish its quota"
        );
        assert!(
            !r.poisoned.is_empty(),
            "reads touching the node during the outage must poison"
        );
        assert_eq!(r.faults_applied.len(), 2);
    }

    #[test]
    fn heal_mid_backoff_resumes_without_watchdog_noise() {
        // The node drains at 1 us and heals at 30 us — before the 50 us
        // retry timeout of the reads black-holed during the outage. The
        // victims are still waiting out their timeout when the fault
        // clears; their retries then land on live memory, everything
        // completes with zero poisons, and the watchdog never reports
        // livelock.
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::NodeDrain { node: 3 });
        plan.push(at_us(30.0), FaultKind::NodeUndrain { node: 3 });
        let r = campaign16().run(&FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 120,
            plan,
            retry: RetryPolicy {
                timeout: SimDuration::from_us(50.0),
                backoff_base: SimDuration::from_us(2.0),
                backoff_cap: SimDuration::from_us(32.0),
                max_retries: 6,
            },
            watchdog_window: SimDuration::from_us(250.0),
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 120, "healed retries complete everything");
        assert!(r.poisoned.is_empty(), "the heal beats every retry budget");
        assert!(r.retries > 0, "the outage must push reads into retry");
        assert!(
            r.watchdog_reports.is_empty(),
            "retries keep making progress"
        );
    }

    #[test]
    fn transient_corruption_retransmits_and_completes() {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::FlitCorrupt { from: 0, to: 1 });
        plan.push(at_us(2.0), FaultKind::LinkDegrade { a: 2, b: 3 });
        plan.push(
            at_us(3.0),
            FaultKind::RouterPause {
                node: 5,
                ps: SimDuration::from_us(2.0).as_ps(),
            },
        );
        let r = campaign16().run(&FaultCampaignConfig {
            requests_per_cpu: 100,
            plan,
            ..Default::default()
        });
        assert_eq!(r.completed, 16 * 100);
        assert!(r.poisoned.is_empty(), "transients never lose transactions");
        assert_eq!(
            r.crc_retransmits, 1,
            "the armed flit is resent exactly once"
        );
        assert_eq!(r.faults_applied.len(), 3);
    }

    #[test]
    fn monitored_run_is_clean_and_matches_plain_run() {
        let cfg = || {
            let mut plan = FaultPlan::new();
            plan.push(at_us(1.0), FaultKind::LinkDown { a: 0, b: 1 });
            plan.push(at_us(20.0), FaultKind::LinkUp { a: 0, b: 1 });
            FaultCampaignConfig {
                outstanding: 6,
                requests_per_cpu: 60,
                plan,
                ..Default::default()
            }
        };
        let plain = campaign16().run(&cfg());
        let (monitored, t, report) = campaign16().run_monitored(&cfg());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.max_attempts <= RetryPolicy::gs1280_default().max_retries + 1);
        assert_eq!(plain.completed, monitored.completed);
        assert_eq!(plain.retries, monitored.retries);
        assert_eq!(plain.mean_latency, monitored.mean_latency);
        assert_eq!(plain.elapsed, monitored.elapsed);
        assert_eq!(t.breakdown.charged_ps(), t.breakdown.end_to_end_ps());
    }

    /// The observed-run stage: a mid-run cut through bisection traffic, so
    /// drops, retries, reroutes, and (with a short retry budget) poisons
    /// all leave windowed footprints.
    fn observed_cfg(shards: usize, threads: usize) -> FaultCampaignConfig {
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::LinkDown { a: 0, b: 1 });
        plan.push(at_us(20.0), FaultKind::LinkUp { a: 0, b: 1 });
        FaultCampaignConfig {
            outstanding: 6,
            requests_per_cpu: 60,
            pattern: CampaignPattern::Bisection,
            plan,
            shards,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn observed_run_matches_plain_and_window_sums_equal_registry_totals() {
        let cfg = observed_cfg(2, 1);
        let plain = campaign16().run(&cfg);
        // A deliberately awkward window width (prime picoseconds, aligned
        // to nothing): windows straddle epoch barriers, fault strikes and
        // watchdog ticks, and the sums must still balance exactly.
        let (r, t, obs) = campaign16().run_observed(&cfg, ObserveOptions::windowed(333_337));
        assert_eq!(plain.completed, r.completed);
        assert_eq!(plain.retries, r.retries);
        assert_eq!(plain.dropped, r.dropped);
        assert_eq!(plain.mean_latency, r.mean_latency);
        assert_eq!(plain.p99_latency, r.p99_latency);
        assert_eq!(plain.elapsed, r.elapsed);
        // Exact-sum: every windowed counter folds back to its registry (or
        // result) total — nothing double-counted, nothing dropped.
        let totals = obs.timeline.totals();
        assert_eq!(
            totals.counter("campaign.completed"),
            t.registry.counter("coherence.completed")
        );
        assert_eq!(
            totals.counter("campaign.retries"),
            t.registry.counter("coherence.retries")
        );
        assert_eq!(totals.counter("campaign.poisoned"), r.poisoned.len() as u64);
        assert_eq!(
            totals.counter("campaign.zbox_reads"),
            t.registry.counter("zbox.accesses")
        );
        assert_eq!(totals.counter("net.delivered"), obs.node_delivered.total());
        assert_eq!(totals.counter("campaign.injected"), 16 * 60 + r.retries);
        assert_eq!(obs.latencies.len() as u64, r.completed);
        assert_eq!(
            totals.histogram("campaign.latency_ns").map(|h| h.count()),
            Some(r.completed)
        );
        // The pinned engine shape is registered, making the registry
        // authoritative for how the artifact was produced.
        assert_eq!(t.registry.gauge("engine.shards"), 2);
        assert_eq!(t.registry.gauge("engine.threads"), 1);
        assert!(t.registry.gauge("engine.shard00.peak_queue_depth") > 0);
        // The profiler's busy totals are the engine's processed totals.
        assert_eq!(
            obs.profile.busy_per_shard().iter().sum::<u64>(),
            t.registry.counter("sim.events_processed")
        );
        assert_eq!(obs.profile.shard_count(), 2);
        assert!(obs.profile.imbalance_milli() >= 1000);
        // Heat landed where the traffic went.
        assert!(obs.link_busy.total() > 0);
        assert_eq!(obs.zbox_reads.total(), t.registry.counter("zbox.accesses"));
    }

    #[test]
    fn observed_windows_are_shard_and_thread_invariant() {
        let reference =
            campaign16().run_observed(&observed_cfg(1, 1), ObserveOptions::windowed(20_000_000));
        for shards in [2usize, 4] {
            for threads in [1usize, 4] {
                let (r, _, obs) = campaign16().run_observed(
                    &observed_cfg(shards, threads),
                    ObserveOptions::windowed(20_000_000),
                );
                assert_eq!(r.completed, reference.0.completed);
                assert_eq!(r.mean_latency, reference.0.mean_latency);
                // Every machine-plane observable is byte-identical; only
                // the profile (which describes the engine itself) differs.
                assert_eq!(
                    obs.timeline, reference.2.timeline,
                    "{shards}x{threads} timeline diverged"
                );
                assert_eq!(obs.latencies, reference.2.latencies);
                assert_eq!(obs.node_delivered, reference.2.node_delivered);
                assert_eq!(obs.link_busy, reference.2.link_busy);
                assert_eq!(obs.zbox_reads, reference.2.zbox_reads);
                assert_eq!(obs.zbox_busy, reference.2.zbox_busy);
                assert_eq!(obs.link_bytes, reference.2.link_bytes);
                assert_eq!(obs.link_peak_backlog, reference.2.link_peak_backlog);
            }
        }
    }

    #[test]
    fn observed_trace_carries_profiler_lanes_and_wall_clock_is_optional() {
        let opts = ObserveOptions {
            window_ps: 20_000_000,
            trace: true,
            wall: true,
        };
        let (r, t, obs) = campaign16().run_observed(&observed_cfg(2, 2), opts);
        assert_eq!(r.completed + r.poisoned.len() as u64, 16 * 60);
        let trace = t.trace.expect("tracing was requested");
        assert!(!trace.is_empty());
        assert!(obs.profile.wall_clock());
        for s in &obs.profile.samples {
            assert_eq!(s.wall_ns.as_ref().map(Vec::len), Some(2));
        }
        // Wall measurement never leaks into sim-time fields: the same run
        // without it produces the identical profile modulo wall_ns.
        let (_, _, plain) =
            campaign16().run_observed(&observed_cfg(2, 2), ObserveOptions::windowed(20_000_000));
        assert_eq!(plain.profile.epochs(), obs.profile.epochs());
        for (a, b) in plain.profile.samples.iter().zip(&obs.profile.samples) {
            assert_eq!((a.start_ps, a.end_ps), (b.start_ps, b.end_ps));
            assert_eq!(a.processed, b.processed);
            assert_eq!(a.merged, b.merged);
        }
    }

    #[test]
    #[should_panic(expected = "require run_monitored")]
    fn plain_run_refuses_mutations() {
        campaign16().run(&FaultCampaignConfig {
            mutation: Some(RecoveryMutation::LeakPoison),
            ..Default::default()
        });
    }

    /// A config whose 1 ps timeout poisons every remote read on its first
    /// attempt — the deterministic stage for the poison-path mutations.
    fn instant_poison_cfg(mutation: RecoveryMutation) -> FaultCampaignConfig {
        FaultCampaignConfig {
            requests_per_cpu: 10,
            retry: RetryPolicy {
                timeout: SimDuration::from_ps(1),
                max_retries: 0,
                ..RetryPolicy::gs1280_default()
            },
            mutation: Some(mutation),
            ..Default::default()
        }
    }

    #[test]
    fn monitor_catches_off_by_one_retry() {
        let (_, _, report) =
            campaign16().run_monitored(&instant_poison_cfg(RecoveryMutation::OffByOneRetry));
        assert!(
            report.violations.iter().any(|v| v.monitor == "retry-bound"),
            "the extra attempt must trip the retry bound: {:?}",
            report.violations
        );
        assert!(
            report.max_attempts > 1,
            "the mutation grants a second attempt"
        );
    }

    #[test]
    fn monitor_catches_poison_leak() {
        let (_, _, report) =
            campaign16().run_monitored(&instant_poison_cfg(RecoveryMutation::LeakPoison));
        assert!(
            report.violations.iter().any(|v| v.monitor == "poison-leak"),
            "the leaked entry must be seen immediately: {:?}",
            report.violations
        );
    }

    #[test]
    fn monitor_catches_skipped_window_refill() {
        let (_, _, report) =
            campaign16().run_monitored(&instant_poison_cfg(RecoveryMutation::SkipWindowRefill));
        let monitors: Vec<&str> = report
            .violations
            .iter()
            .map(|v| v.monitor.as_str())
            .collect();
        assert!(
            monitors.contains(&"window-refill"),
            "the shrunken window must be seen at the poison: {monitors:?}"
        );
        assert!(
            monitors.contains(&"issue-quota"),
            "the stalled quota must be seen at the drain: {monitors:?}"
        );
    }

    #[test]
    fn monitor_catches_ignored_timeouts_as_hung_transactions() {
        // A drained home plus ignored timer expiries: reads to the dead
        // node are never retried or poisoned. The watchdog escalation must
        // stop the run and name the hang instead of spinning forever.
        let mut plan = FaultPlan::new();
        plan.push(at_us(1.0), FaultKind::NodeDrain { node: 3 });
        let (r, _, report) = campaign16().run_monitored(&FaultCampaignConfig {
            requests_per_cpu: 60,
            plan,
            mutation: Some(RecoveryMutation::IgnoreTimeouts),
            ..Default::default()
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.monitor == "hung-transactions"),
            "violations: {:?}",
            report.violations
        );
        assert!(
            r.completed < 16 * 60,
            "wedged windows keep some quota unfinished"
        );
    }
}
