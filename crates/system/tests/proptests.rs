//! Property tests for the machine models.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_system::{CoherentMachine, Gs1280, Gs320};
use alphasim_topology::NodeId;
use proptest::prelude::*;

fn sizes() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![4usize, 8, 16, 32, 64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Read-clean latency is symmetric on the symmetric torus and minimal
    /// at home.
    #[test]
    fn gs1280_read_clean_is_symmetric(cpus in sizes()) {
        let m = Gs1280::builder().cpus(cpus).build();
        for a in 0..cpus {
            for b in 0..cpus {
                let ab = m.read_clean(NodeId::new(a), NodeId::new(b));
                let ba = m.read_clean(NodeId::new(b), NodeId::new(a));
                prop_assert_eq!(ab, ba);
                prop_assert!(ab >= m.local_latency(true));
            }
        }
    }

    /// Every remote read costs at least a 1-hop round trip more than
    /// local, and at most the worst 4-hop corner path.
    #[test]
    fn gs1280_remote_latency_bounds(cpus in sizes(), a in 0usize..64, b in 0usize..64) {
        let m = Gs1280::builder().cpus(cpus).build();
        let (a, b) = (a % cpus, b % cpus);
        prop_assume!(a != b);
        let lat = m.read_clean(NodeId::new(a), NodeId::new(b)).as_ns();
        prop_assert!(lat >= 83.0 + 21.0 + 2.0 * 17.5 - 1e-9, "{lat}");
        // Diameter of the largest machine is 8 hops of <= 25 ns.
        prop_assert!(lat <= 83.0 + 21.0 + 2.0 * 8.0 * 25.0 + 1e-9, "{lat}");
    }

    /// Dirty reads are never cheaper than the bare protocol floor and the
    /// GS320 is always worse than the GS1280 for the same triple.
    #[test]
    fn dirty_reads_ordered_across_machines(r in 0usize..16, h in 0usize..16, o in 0usize..16) {
        prop_assume!(r != h && h != o && r != o);
        let g = Gs1280::builder().cpus(16).build();
        let q = Gs320::new(16);
        let dg = g.read_dirty(NodeId::new(r), NodeId::new(h), NodeId::new(o));
        let dq = q.read_dirty(NodeId::new(r), NodeId::new(h), NodeId::new(o));
        prop_assert!(dq > dg * 3, "GS320 {dq} vs GS1280 {dg}");
    }

    /// STREAM bandwidth is monotone in active CPUs on every machine.
    #[test]
    fn stream_monotone_in_cpus(cpus in sizes()) {
        let g = Gs1280::builder().cpus(cpus).build();
        let mut last = 0.0;
        for n in 1..=cpus {
            let bw = g.stream_triad_gbps(n);
            prop_assert!(bw >= last);
            last = bw;
        }
        let q = Gs320::new(cpus.min(32));
        let mut last = 0.0;
        for n in 1..=cpus.min(32) {
            let bw = q.stream_triad_gbps(n);
            prop_assert!(bw >= last - 1e-12);
            last = bw;
        }
    }

    /// The coherent machine never loses accesses: class counts always sum
    /// to the number of operations issued.
    #[test]
    fn coherent_machine_accounts_every_access(
        ops in prop::collection::vec((0usize..8, 0u64..512, any::<bool>()), 1..200),
    ) {
        let mut m = CoherentMachine::new(
            Gs1280::builder().cpus(8).mem_per_cpu(1 << 20).build(),
        );
        for &(cpu, line, write) in &ops {
            let addr = alphasim_cache::Addr::new((line * 64) % (8 << 20));
            m.access(cpu, addr, write);
        }
        prop_assert_eq!(m.stats().total(), ops.len() as u64);
        prop_assert!(m.mean_latency().as_ns() >= 0.0);
    }

    /// Directory state in the coherent machine stays safe under arbitrary
    /// access interleavings.
    #[test]
    fn coherent_machine_directory_stays_safe(
        ops in prop::collection::vec((0usize..8, 0u64..64, any::<bool>()), 1..150),
    ) {
        let mut m = CoherentMachine::new(
            Gs1280::builder().cpus(8).mem_per_cpu(1 << 20).build(),
        );
        for &(cpu, line, write) in &ops {
            m.access(cpu, alphasim_cache::Addr::new(line * 64), write);
            m.directory().check_invariants().unwrap();
        }
    }
}
