//! Property tests for the machine models.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_kernel::chaos::{ChaosConfig, KindSlot};
use alphasim_kernel::{SimDuration, SimTime};
use alphasim_system::chaos::catalog_for;
use alphasim_system::{
    gs1280_fault_campaign, CampaignPattern, CoherentMachine, FaultCampaignConfig, Gs1280, Gs320,
};
use alphasim_topology::NodeId;
use proptest::prelude::*;

fn sizes() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![4usize, 8, 16, 32, 64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Read-clean latency is symmetric on the symmetric torus and minimal
    /// at home.
    #[test]
    fn gs1280_read_clean_is_symmetric(cpus in sizes()) {
        let m = Gs1280::builder().cpus(cpus).build();
        for a in 0..cpus {
            for b in 0..cpus {
                let ab = m.read_clean(NodeId::new(a), NodeId::new(b));
                let ba = m.read_clean(NodeId::new(b), NodeId::new(a));
                prop_assert_eq!(ab, ba);
                prop_assert!(ab >= m.local_latency(true));
            }
        }
    }

    /// Every remote read costs at least a 1-hop round trip more than
    /// local, and at most the worst 4-hop corner path.
    #[test]
    fn gs1280_remote_latency_bounds(cpus in sizes(), a in 0usize..64, b in 0usize..64) {
        let m = Gs1280::builder().cpus(cpus).build();
        let (a, b) = (a % cpus, b % cpus);
        prop_assume!(a != b);
        let lat = m.read_clean(NodeId::new(a), NodeId::new(b)).as_ns();
        prop_assert!(lat >= 83.0 + 21.0 + 2.0 * 17.5 - 1e-9, "{lat}");
        // Diameter of the largest machine is 8 hops of <= 25 ns.
        prop_assert!(lat <= 83.0 + 21.0 + 2.0 * 8.0 * 25.0 + 1e-9, "{lat}");
    }

    /// Dirty reads are never cheaper than the bare protocol floor and the
    /// GS320 is always worse than the GS1280 for the same triple.
    #[test]
    fn dirty_reads_ordered_across_machines(r in 0usize..16, h in 0usize..16, o in 0usize..16) {
        prop_assume!(r != h && h != o && r != o);
        let g = Gs1280::builder().cpus(16).build();
        let q = Gs320::new(16);
        let dg = g.read_dirty(NodeId::new(r), NodeId::new(h), NodeId::new(o));
        let dq = q.read_dirty(NodeId::new(r), NodeId::new(h), NodeId::new(o));
        prop_assert!(dq > dg * 3, "GS320 {dq} vs GS1280 {dg}");
    }

    /// STREAM bandwidth is monotone in active CPUs on every machine.
    #[test]
    fn stream_monotone_in_cpus(cpus in sizes()) {
        let g = Gs1280::builder().cpus(cpus).build();
        let mut last = 0.0;
        for n in 1..=cpus {
            let bw = g.stream_triad_gbps(n);
            prop_assert!(bw >= last);
            last = bw;
        }
        let q = Gs320::new(cpus.min(32));
        let mut last = 0.0;
        for n in 1..=cpus.min(32) {
            let bw = q.stream_triad_gbps(n);
            prop_assert!(bw >= last - 1e-12);
            last = bw;
        }
    }

    /// The coherent machine never loses accesses: class counts always sum
    /// to the number of operations issued.
    #[test]
    fn coherent_machine_accounts_every_access(
        ops in prop::collection::vec((0usize..8, 0u64..512, any::<bool>()), 1..200),
    ) {
        let mut m = CoherentMachine::new(
            Gs1280::builder().cpus(8).mem_per_cpu(1 << 20).build(),
        );
        for &(cpu, line, write) in &ops {
            let addr = alphasim_cache::Addr::new((line * 64) % (8 << 20));
            m.access(cpu, addr, write);
        }
        prop_assert_eq!(m.stats().total(), ops.len() as u64);
        prop_assert!(m.mean_latency().as_ns() >= 0.0);
    }

    /// Directory state in the coherent machine stays safe under arbitrary
    /// access interleavings.
    #[test]
    fn coherent_machine_directory_stays_safe(
        ops in prop::collection::vec((0usize..8, 0u64..64, any::<bool>()), 1..150),
    ) {
        let mut m = CoherentMachine::new(
            Gs1280::builder().cpus(8).mem_per_cpu(1 << 20).build(),
        );
        for &(cpu, line, write) in &ops {
            m.access(cpu, alphasim_cache::Addr::new(line * 64), write);
            m.directory().check_invariants().unwrap();
        }
    }
}

/// One monitored fault campaign on a `dim`×`dim` torus under `plan`,
/// rendered to a string that captures every observable output: the full
/// result, the component counters, the per-stage latency breakdown, and
/// the monitor report. Returns the rendering and whether the monitors
/// stayed clean.
fn campaign_fingerprint(
    dim: usize,
    seed: u64,
    plan: &alphasim_kernel::FaultPlan,
    threads: usize,
    shards: usize,
) -> (String, bool) {
    let cpus = dim * dim;
    let campaign = gs1280_fault_campaign(&Gs1280::builder().cpus(cpus).build());
    let cfg = FaultCampaignConfig {
        outstanding: 2,
        requests_per_cpu: 6,
        pattern: CampaignPattern::UniformRemote,
        seed,
        plan: plan.clone(),
        retry: alphasim_system::ChaosOptions::default().retry,
        watchdog_window: SimDuration::from_us(250.0),
        shards,
        threads,
        mutation: None,
    };
    let (result, telemetry, report) = campaign.run_monitored(&cfg);
    // Guard against a vacuous identity: every run must move real traffic
    // and strike real faults.
    assert!(result.completed > 0, "campaign completed nothing");
    assert!(!result.faults_applied.is_empty(), "no fault ever struck");
    let clean = report.is_clean();
    // The registry's `engine.*` entries record the run's own parallelism
    // knobs (shard/thread counts, per-shard queue peaks) and so differ
    // across shard counts by construction; redact them so the fingerprint
    // covers exactly the machine-plane outputs that must be invariant.
    let registry = redact_engine_plane(telemetry.registry.to_json());
    let registry = serde_json::to_string(&registry).unwrap();
    (
        format!(
            "{result:?}|{registry}|{:?}|{:?}",
            telemetry.breakdown, report
        ),
        clean,
    )
}

/// Drop `engine.*` metrics (shard/thread-count dependent by design) from a
/// registry JSON snapshot, leaving every machine-plane metric intact.
fn redact_engine_plane(registry: serde_json::Value) -> serde_json::Value {
    use serde_json::Value;
    match registry {
        Value::Object(sections) => Value::Object(
            sections
                .into_iter()
                .map(|(section, body)| {
                    let body = match body {
                        Value::Object(map) => Value::Object(
                            map.into_iter()
                                .filter(|(name, _)| !name.starts_with("engine."))
                                .collect(),
                        ),
                        other => other,
                    };
                    (section, body)
                })
                .collect(),
        ),
        other => other,
    }
}

/// The full Chrome trace (every message lifetime, link occupancy, and DRAM
/// service event) of an instrumented campaign — the event-for-event view.
fn campaign_trace(
    dim: usize,
    seed: u64,
    plan: &alphasim_kernel::FaultPlan,
    threads: usize,
    shards: usize,
) -> String {
    let cpus = dim * dim;
    let campaign = gs1280_fault_campaign(&Gs1280::builder().cpus(cpus).build());
    let cfg = FaultCampaignConfig {
        outstanding: 2,
        requests_per_cpu: 6,
        pattern: CampaignPattern::UniformRemote,
        seed,
        plan: plan.clone(),
        retry: alphasim_system::ChaosOptions::default().retry,
        watchdog_window: SimDuration::from_us(250.0),
        shards,
        threads,
        mutation: None,
    };
    let (_, telemetry) = campaign.run_instrumented(&cfg, true);
    telemetry.trace.expect("trace requested").to_json_string()
}

/// A randomized chaos schedule for a `dim`×`dim` torus, biased toward link
/// cuts and repairs so plans routinely shrink and re-grow the conservative
/// lookahead horizon mid-run, timed to land inside the campaign's traffic.
fn chaos_plan(dim: usize, seed: u64) -> alphasim_kernel::FaultPlan {
    let catalog = catalog_for(dim * dim);
    let mut config = ChaosConfig {
        window: (
            SimTime::ZERO + SimDuration::from_ns(500.0),
            SimTime::ZERO + SimDuration::from_us(6.0),
        ),
        ..ChaosConfig::default()
    };
    config.weights[KindSlot::LinkDown as usize] = 10;
    config.weights[KindSlot::LinkUp as usize] = 8;
    config.generate(seed, &catalog)
}

proptest! {
    // Each case runs several full campaigns, so keep the case count modest;
    // torus sizes span the satellite's 4×4 → 16×16 range with the bulk of
    // the sampling on the small fabrics.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole's determinism-by-construction claim, attacked with
    /// randomized chaos schedules: an epoch-parallel closed-loop campaign
    /// (threads 2/4) produces byte-identical results — and an identical
    /// event-for-event Chrome trace — to the sequential sharded run, at
    /// every shard count, on tori from 4×4 up to 16×16, with mid-epoch
    /// link cuts and repairs shrinking and re-growing the lookahead
    /// horizon while traffic is in flight.
    #[test]
    fn epoch_parallel_campaign_matches_sequential(
        // Duplicates weight the draw toward the cheap small fabrics.
        dim in prop::sample::select(vec![4usize, 4, 4, 4, 6, 6, 6, 8, 8, 12, 16]),
        seed in any::<u64>(),
    ) {
        let plan = chaos_plan(dim, seed);
        let (baseline, clean) = campaign_fingerprint(dim, seed, &plan, 1, 1);
        prop_assert!(clean, "monitors fired on the intact machine: {baseline}");
        for (threads, shards) in [(1, 4), (2, 2), (2, 4), (4, 4)] {
            let (parallel, clean) = campaign_fingerprint(dim, seed, &plan, threads, shards);
            prop_assert!(clean, "monitors fired at threads={threads} shards={shards}");
            prop_assert_eq!(
                &baseline, &parallel,
                "threads={} shards={} diverged from the sequential run",
                threads, shards
            );
        }
        // Event-for-event: the full Chrome trace of a 4-thread 4-shard run
        // is identical to the single-thread sharded one.
        let sequential_trace = campaign_trace(dim, seed, &plan, 1, 2);
        let parallel_trace = campaign_trace(dim, seed, &plan, 4, 4);
        prop_assert_eq!(sequential_trace, parallel_trace);
    }
}
