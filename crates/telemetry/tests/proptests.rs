//! Property tests for the windowed timeline: merging per-worker window
//! snapshots in input order must reproduce the sequential recording, and
//! folding the windows must reproduce the unwindowed registry exactly.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_telemetry::{Heatmap, Registry, Timeline};
use proptest::prelude::*;

/// One synthetic metric update: a timestamp and an operation.
fn apply(t: &mut Timeline, whole: &mut Registry, &(at, kind, value): &(u64, u8, u64)) {
    match kind % 3 {
        0 => {
            t.counter_add(at, "completed", value);
            whole.counter_add("completed", value);
        }
        1 => {
            t.gauge_max(at, "depth", value);
            whole.gauge_max("depth", value);
        }
        _ => {
            t.record(at, "latency", value);
            whole.record("latency", value);
        }
    }
}

proptest! {
    /// Partitioning an update stream across any number of workers and
    /// merging the per-worker timelines in input order yields the same
    /// timeline (and bytes) as recording sequentially — the property the
    /// epoch-parallel campaign relies on for `results/timeline.json`.
    #[test]
    fn per_worker_merge_in_input_order_matches_sequential(
        updates in prop::collection::vec((0u64..500_000, 0u8..3, 0u64..1_000), 1..300),
        workers in 1usize..6,
        window_ps in 1u64..100_000,
    ) {
        let mut sequential = Timeline::new(window_ps);
        let mut whole = Registry::new();
        for u in &updates {
            apply(&mut sequential, &mut whole, u);
        }
        // Deal updates round-robin to per-worker timelines, then merge in
        // worker (input) order — exactly how the campaign combines shards.
        let mut parts: Vec<Timeline> = (0..workers).map(|_| Timeline::new(window_ps)).collect();
        let mut scratch = Registry::new();
        for (i, u) in updates.iter().enumerate() {
            apply(&mut parts[i % workers], &mut scratch, u);
        }
        let mut merged = Timeline::new(window_ps);
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(
            serde_json::to_string(&merged.to_json()).unwrap(),
            serde_json::to_string(&sequential.to_json()).unwrap()
        );
        // Exact-sum invariant: the windows partition the run.
        prop_assert_eq!(merged.totals(), whole);
    }

    /// Window bucketing is a pure function of the timestamp: every update
    /// lands in `at / window_ps`, and dense counter series sum to the
    /// total regardless of window width.
    #[test]
    fn window_sums_are_width_invariant(
        ats in prop::collection::vec(0u64..1_000_000, 1..200),
        width_a in 1u64..50_000,
        width_b in 1u64..50_000,
    ) {
        let mut a = Timeline::new(width_a);
        let mut b = Timeline::new(width_b);
        for &at in &ats {
            a.counter_add(at, "c", 1);
            b.counter_add(at, "c", 1);
        }
        let total = ats.len() as u64;
        prop_assert_eq!(a.counter_series("c").iter().sum::<u64>(), total);
        prop_assert_eq!(b.counter_series("c").iter().sum::<u64>(), total);
        prop_assert_eq!(a.totals().counter("c"), b.totals().counter("c"));
    }

    /// Heatmaps merge element-wise in any order; the grid total is the
    /// sum of contributions.
    #[test]
    fn heatmap_merge_any_order(
        hits in prop::collection::vec((0usize..16, 1u64..100), 0..100),
        split in 0usize..100,
    ) {
        let split = if hits.is_empty() { 0 } else { split % (hits.len() + 1) };
        let mut whole = Heatmap::new(4, 4);
        for &(n, v) in &hits {
            whole.add(n, v);
        }
        let mut a = Heatmap::new(4, 4);
        let mut b = Heatmap::new(4, 4);
        for &(n, v) in &hits[..split] {
            a.add(n, v);
        }
        for &(n, v) in &hits[split..] {
            b.add(n, v);
        }
        let mut ab = Heatmap::new(4, 4);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Heatmap::new(4, 4);
        ba.merge(&b);
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&ab, &whole);
        prop_assert_eq!(ab.total(), hits.iter().map(|&(_, v)| v).sum::<u64>());
    }
}
