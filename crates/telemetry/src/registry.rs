//! The deterministic metric registry.
//!
//! Components register named counters, gauges, and histograms at
//! construction and update them through `&mut` access — no globals, no
//! interior mutability, no hashing, no wall clock. Names are ordinary
//! `metric.path` strings stored in `BTreeMap`s, so snapshot order is the
//! lexicographic name order regardless of registration or worker order,
//! and merging the per-worker registries of a `parallel_map` sweep in
//! input order reproduces the sequential run byte for byte.

use std::collections::BTreeMap;

use serde_json::{Number, Value};

use crate::hist::Log2Histogram;

/// A deterministic registry of typed metrics.
///
/// Merge semantics per type: counters add, gauges take the maximum
/// (they record high-water marks), histograms add bucket-wise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.entry_counter(name) += delta;
    }

    /// Set the named counter to `value` (registration or overwrite).
    pub fn counter_set(&mut self, name: &str, value: u64) {
        *self.entry_counter(name) = value;
    }

    /// Raise the named high-water gauge to at least `value`.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_owned()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Record one sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histogram_mut(name).record(value);
    }

    /// Mutable access to a named histogram (created empty on first use);
    /// lets hot paths batch-record or components install a pre-filled one.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Log2Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Current value of a counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (0 if never registered).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, gauges max,
    /// histograms merge bucket-wise. Merging per-worker registries in input
    /// order yields the same snapshot at any worker count because every
    /// operation is commutative and associative and snapshot order is
    /// name order, not arrival order.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// JSON snapshot: three objects keyed by metric name in lexicographic
    /// order (a `BTreeMap` walk), histograms in sparse form.
    pub fn to_json(&self) -> Value {
        let counters: BTreeMap<String, Value> = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(Number::PosInt(v))))
            .collect();
        let gauges: BTreeMap<String, Value> = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(Number::PosInt(v))))
            .collect();
        let histograms: BTreeMap<String, Value> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        let mut root = BTreeMap::new();
        root.insert("counters".to_owned(), Value::Object(counters));
        root.insert("gauges".to_owned(), Value::Object(gauges));
        root.insert("histograms".to_owned(), Value::Object(histograms));
        Value::Object(root)
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        self.counters.entry(name.to_owned()).or_insert(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry(shard: u64) -> Registry {
        let mut r = Registry::new();
        r.counter_add("net.delivered", 10 + shard);
        r.counter_add("campaign.retries", shard);
        r.gauge_max("event_queue.peak_depth", 100 * (shard + 1));
        for v in [0u64, 1, 3, 1 << shard] {
            r.record("latency.e2e_ns", v);
        }
        r
    }

    #[test]
    fn counters_add_and_read_back() {
        let mut r = Registry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_high_water() {
        let mut r = Registry::new();
        r.gauge_max("g", 7);
        r.gauge_max("g", 3);
        assert_eq!(r.gauge("g"), 7);
    }

    #[test]
    fn merge_is_order_independent() {
        let parts: Vec<Registry> = (0..4).map(sample_registry).collect();
        let mut fwd = Registry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Registry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(
            serde_json::to_string(&fwd.to_json()).expect("serialize"),
            serde_json::to_string(&rev.to_json()).expect("serialize")
        );
    }

    #[test]
    fn snapshot_orders_names_lexicographically() {
        let mut r = Registry::new();
        r.counter_add("zzz", 1);
        r.counter_add("aaa", 1);
        let s = serde_json::to_string(&r.to_json()).expect("serialize");
        let a = s.find("aaa").expect("aaa serialized");
        let z = s.find("zzz").expect("zzz serialized");
        assert!(a < z, "lexicographic key order expected: {s}");
    }
}
