//! Fixed-shape log2-bucketed histogram.
//!
//! Sixty-five buckets cover the whole `u64` range: bucket 0 holds the value
//! zero, and bucket `i` (for `i >= 1`) holds values in
//! `[2^(i-1), 2^i - 1]`. The shape is identical for every instance, so two
//! histograms recorded by different sweep workers merge by bucket-wise
//! addition with no rebinning — the merged snapshot is byte-identical to
//! what a sequential run would have produced.

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
pub const BUCKETS: usize = 65;

/// A deterministic log2-bucketed histogram of `u64` samples.
///
/// Recording is constant-time (a `leading_zeros` and an array increment) so
/// always-on component instrumentation stays off the profile. `sum` uses
/// saturating addition; with picosecond-scale samples this cannot overflow
/// in any realistic run, and saturation is still deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in: 0 for zero, else
    /// `64 - leading_zeros(v)` (so 1 maps to bucket 1, `u64::MAX` to 64).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` value range bucket `i` covers.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            1..=64 => (
                1u64 << (i - 1),
                (1u64 << (i - 1)).wrapping_mul(2).wrapping_sub(1),
            ),
            _ => (u64::MAX, u64::MAX),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean (sum / count), or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Count in one bucket.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Bucket-wise merge: the result is identical to recording both sample
    /// streams into one histogram, in any order.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sparse JSON snapshot: summary fields plus only the non-empty buckets
    /// (as `[lo, count]` pairs in ascending bucket order).
    pub fn to_json(&self) -> Value {
        let nonzero: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| json!([Self::bucket_range(i).0, c]))
            .collect();
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": self.min(),
            "max": self.max,
            "mean": self.mean(),
            "buckets": nonzero,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn powers_of_two_land_on_bucket_edges() {
        // 2^(i-1) is the inclusive lower edge of bucket i; 2^(i-1) - 1 of
        // bucket i-1's upper edge.
        for i in 1..=63usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(
                Log2Histogram::bucket_index(lo),
                i,
                "lower edge of bucket {i}"
            );
            if lo > 1 {
                assert_eq!(
                    Log2Histogram::bucket_index(lo - 1),
                    i - 1,
                    "upper edge below bucket {i}"
                );
            }
        }
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_index(1u64 << 63), 64);
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        assert_eq!(Log2Histogram::bucket_range(0), (0, 0));
        assert_eq!(Log2Histogram::bucket_range(1), (1, 1));
        assert_eq!(Log2Histogram::bucket_range(2), (2, 3));
        assert_eq!(Log2Histogram::bucket_range(64), (1u64 << 63, u64::MAX));
        for i in 1..BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(i);
            assert_eq!(Log2Histogram::bucket_index(lo), i);
            assert_eq!(Log2Histogram::bucket_index(hi), i);
            let (_, prev_hi) = Log2Histogram::bucket_range(i - 1);
            assert_eq!(lo, prev_hi.wrapping_add(1));
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples = [0u64, 1, 3, 7, 100, 1 << 20, u64::MAX];
        let mut whole = Log2Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn json_snapshot_is_sparse() {
        let mut h = Log2Histogram::new();
        h.record(5);
        h.record(5);
        let v = h.to_json();
        let s = serde_json::to_string(&v).expect("serialize");
        assert!(s.contains("\"count\":2"), "{s}");
        assert!(s.contains("[4,2]"), "bucket [lo=4, count=2] expected: {s}");
    }
}
