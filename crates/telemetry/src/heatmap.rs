//! Topology-indexed accumulators rendered as P×Q grids.
//!
//! The paper's Xmesh tool shows *where* on the torus the machine is busy;
//! a [`Heatmap`] is the deterministic substrate for that view: one `u64`
//! cell per node of a `cols × rows` grid, updated by node index and merged
//! element-wise. Every producer (per-region network slices, per-node Zbox
//! accounting) owns a disjoint set of cells, so element-wise addition is
//! an exact merge — the combined grid is identical at any shard count.
//! This crate knows nothing of topologies; callers map `NodeId` indexes to
//! cells with the usual row-major `index = y * cols + x` convention.

use std::collections::BTreeMap;

use serde_json::{Number, Value};

/// A row-major grid of `u64` accumulators over a `cols × rows` torus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    cols: usize,
    rows: usize,
    cells: Vec<u64>,
}

impl Heatmap {
    /// An all-zero `cols × rows` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "heatmap needs both dimensions");
        Heatmap {
            cols,
            rows,
            cells: vec![0; cols * rows],
        }
    }

    /// A grid initialized from row-major per-node values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not exactly `cols * rows` long.
    pub fn from_values(cols: usize, rows: usize, values: &[u64]) -> Self {
        let mut h = Heatmap::new(cols, rows);
        assert_eq!(
            values.len(),
            h.cells.len(),
            "value count must fill the grid"
        );
        h.cells.copy_from_slice(values);
        h
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Add `delta` to the cell of row-major `node` index.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the grid.
    pub fn add(&mut self, node: usize, delta: u64) {
        self.cells[node] += delta;
    }

    /// The cell value at row-major `node` index.
    pub fn cell(&self, node: usize) -> u64 {
        self.cells[node]
    }

    /// The cell value at grid coordinates.
    pub fn at(&self, x: usize, y: usize) -> u64 {
        self.cells[y * self.cols + x]
    }

    /// Sum over all cells.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// The hottest cell's value (0 for an untouched grid).
    pub fn peak(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// Row-major index of the hottest cell, lowest index on ties.
    pub fn peak_cell(&self) -> usize {
        let peak = self.peak();
        self.cells.iter().position(|&v| v == peak).unwrap_or(0)
    }

    /// Element-wise addition. Exact when producers own disjoint cells
    /// (each torus node and each directed link has exactly one owning
    /// region), which is what makes the merged grid shard-count-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the grids have different dimensions.
    pub fn merge(&mut self, other: &Heatmap) {
        assert_eq!(
            (self.cols, self.rows),
            (other.cols, other.rows),
            "merging heatmaps of different dimensions"
        );
        for (c, o) in self.cells.iter_mut().zip(&other.cells) {
            *c += o;
        }
    }

    /// JSON snapshot: dimensions plus the grid as an array of rows (each
    /// an array of integers), matching the torus layout top row first.
    pub fn to_json(&self) -> Value {
        let grid: Vec<Value> = self
            .cells
            .chunks(self.cols)
            .map(|row| {
                Value::Array(
                    row.iter()
                        .map(|&v| Value::Number(Number::PosInt(v)))
                        .collect(),
                )
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "cols".to_owned(),
            Value::Number(Number::PosInt(self.cols as u64)),
        );
        root.insert(
            "rows".to_owned(),
            Value::Number(Number::PosInt(self.rows as u64)),
        );
        root.insert("grid".to_owned(), Value::Array(grid));
        Value::Object(root)
    }

    /// ASCII rendering: one digit per cell, the cell's value scaled to
    /// 0–9 against the grid peak (`.` for exactly zero). The human-eye
    /// view `perfsight` prints under each grid's title.
    pub fn to_ascii(&self) -> String {
        let peak = self.peak();
        let mut out = String::with_capacity(self.rows * (self.cols + 1));
        for row in self.cells.chunks(self.cols) {
            for &v in row {
                if v == 0 {
                    out.push('.');
                } else if peak == 0 {
                    out.push('0');
                } else {
                    let shade = (v * 9).div_ceil(peak).min(9);
                    out.push(char::from(b'0' + shade as u8));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "both dimensions")]
    fn zero_dimension_is_rejected() {
        Heatmap::new(4, 0);
    }

    #[test]
    fn add_and_read_back_row_major() {
        let mut h = Heatmap::new(4, 2);
        h.add(0, 5);
        h.add(5, 7); // (x=1, y=1)
        assert_eq!(h.cell(0), 5);
        assert_eq!(h.at(1, 1), 7);
        assert_eq!(h.total(), 12);
        assert_eq!(h.peak(), 7);
        assert_eq!(h.peak_cell(), 5);
    }

    #[test]
    fn merge_is_element_wise_and_commutative() {
        let a = Heatmap::from_values(2, 2, &[1, 2, 3, 4]);
        let b = Heatmap::from_values(2, 2, &[10, 0, 0, 40]);
        let mut ab = Heatmap::new(2, 2);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Heatmap::new(2, 2);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, Heatmap::from_values(2, 2, &[11, 2, 3, 44]));
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn mismatched_merge_is_rejected() {
        let mut a = Heatmap::new(2, 2);
        a.merge(&Heatmap::new(4, 4));
    }

    #[test]
    fn json_is_rows_of_integers() {
        let h = Heatmap::from_values(2, 2, &[0, 1, 2, 3]);
        let s = serde_json::to_string(&h.to_json()).expect("serialize");
        assert!(s.contains("\"cols\":2"), "{s}");
        assert!(s.contains("\"grid\":[[0,1],[2,3]]"), "{s}");
    }

    #[test]
    fn ascii_scales_to_peak_and_marks_zero() {
        let h = Heatmap::from_values(4, 1, &[0, 1, 5, 10]);
        let art = h.to_ascii();
        assert_eq!(art, ".159\n");
        // An all-zero grid renders as dots only.
        assert_eq!(Heatmap::new(2, 1).to_ascii(), "..\n");
    }
}
