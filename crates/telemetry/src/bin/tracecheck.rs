//! Schema check for exported Chrome traces.
//!
//! Usage: `tracecheck <trace.json>`
//!
//! The vendored `serde_json` subset serializes but does not parse, so this
//! tool carries its own minimal recursive-descent JSON reader — enough to
//! validate the Trace Event Format contract Perfetto relies on:
//!
//! * the root is an object with a `traceEvents` array;
//! * every event is an object with string `name`/`ph` and numeric
//!   `pid`/`tid`;
//! * complete (`"X"`) events also carry numeric `ts` and `dur`.
//!
//! Exit status: 0 valid, 1 schema violation, 2 I/O or parse error.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal parsed-JSON tree (the vendored serde `Value` cannot be built
/// from text, so the checker has its own).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", char::from(other))),
                    }
                }
                Some(&b) if b < 0x80 => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("empty continuation")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']' but got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => return Err(format!("expected ',' or '}}' but got {other:?}")),
            }
        }
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Option<&'a Json> {
    obj.get(key)
}

/// Validate the Trace Event Format contract; returns the number of events
/// checked, or a description of the first violation.
fn validate(root: &Json) -> Result<usize, String> {
    let Json::Object(top) = root else {
        return Err("root is not an object".to_owned());
    };
    let Some(Json::Array(events)) = get(top, "traceEvents") else {
        return Err("missing traceEvents array".to_owned());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".to_owned());
    }
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(e) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let Some(Json::String(ph)) = get(e, "ph") else {
            return Err(format!("event {i}: missing string \"ph\""));
        };
        if !matches!(get(e, "name"), Some(Json::String(_))) {
            return Err(format!("event {i}: missing string \"name\""));
        }
        for key in ["pid", "tid"] {
            if !matches!(get(e, key), Some(Json::Number(_))) {
                return Err(format!("event {i}: missing numeric \"{key}\""));
            }
        }
        if ph == "X" {
            complete += 1;
            for key in ["ts", "dur"] {
                match get(e, key) {
                    Some(Json::Number(n)) if *n >= 0.0 => {}
                    _ => {
                        return Err(format!(
                            "event {i}: \"X\" event needs non-negative numeric \"{key}\""
                        ))
                    }
                }
            }
        }
    }
    if complete == 0 {
        return Err("no complete (\"X\") events in trace".to_owned());
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match Parser::new(&text).parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("tracecheck: {path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    match validate(&root) {
        Ok(n) => {
            println!("tracecheck: {path} OK ({n} events)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tracecheck: {path} violates the trace schema: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Parser::new(s).parse().expect("valid JSON")
    }

    #[test]
    fn parses_round_trippable_values() {
        assert_eq!(parse("null"), Json::Null);
        assert_eq!(parse(" [1, 2.5, -3] "), {
            Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-3.0),
            ])
        });
        assert_eq!(
            parse(r#"{"a": "b\n", "c": true}"#),
            Json::Object(BTreeMap::from([
                ("a".to_owned(), Json::String("b\n".to_owned())),
                ("c".to_owned(), Json::Bool(true)),
            ]))
        );
    }

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let t = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"n"}},
            {"name":"Request","cat":"msg","ph":"X","ts":1.5,"dur":0.5,"pid":1,"tid":0,"args":{}}
        ]}"#;
        assert_eq!(validate(&parse(t)), Ok(2));
    }

    #[test]
    fn rejects_schema_violations() {
        let missing_dur = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":1.0,"pid":1,"tid":0}
        ]}"#;
        assert!(validate(&parse(missing_dur)).is_err());
        let no_events = r#"{"traceEvents":[]}"#;
        assert!(validate(&parse(no_events)).is_err());
        let not_object = "[1,2,3]";
        assert!(validate(&parse(not_object)).is_err());
    }

    #[test]
    fn sink_output_validates() {
        let mut sink = alphasim_telemetry::TraceSink::new();
        sink.name_process(1, "network");
        sink.complete("Request", "msg", 1, 0, 0, 1000, &[("tag", 7)]);
        let body = sink.to_json_string();
        let parsed = Parser::new(&body).parse().expect("sink emits valid JSON");
        assert_eq!(validate(&parsed), Ok(2));
    }
}
