//! Chrome-trace ("Trace Event Format") sink.
//!
//! Collects complete ("X") duration events plus process/thread metadata
//! and serializes them as the JSON object form
//! (`{"displayTimeUnit": ..., "traceEvents": [...]}`) that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. Timestamps are simulated picoseconds converted to the
//! format's microseconds; nothing reads the wall clock, so a traced run
//! is as reproducible as an untraced one.

use serde_json::{json, Value};

/// Conventional process id for the message-lifetime lanes (one thread row
/// per source node).
pub const PID_MESSAGES: u32 = 1;
/// Conventional process id for link-occupancy lanes (one thread row per
/// directed link).
pub const PID_LINKS: u32 = 2;
/// Conventional process id for memory-controller (Zbox) service lanes.
pub const PID_MEMORY: u32 = 3;
/// Conventional process id for the epoch-parallel engine's per-shard
/// profiler lanes (one thread row per region shard).
pub const PID_SHARDS: u32 = 4;

/// One complete ("X") duration event.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CompleteEvent {
    name: String,
    cat: String,
    pid: u32,
    tid: u32,
    start_ps: u64,
    dur_ps: u64,
    /// Extra integer arguments shown in the Perfetto detail pane.
    args: Vec<(String, u64)>,
}

/// Process/thread display-name metadata ("M") event.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MetaEvent {
    meta: &'static str,
    pid: u32,
    tid: u32,
    label: String,
}

/// An in-memory event-trace sink. Events keep insertion order, which is
/// the deterministic simulation event order of the run that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSink {
    events: Vec<CompleteEvent>,
    meta: Vec<MetaEvent>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a complete ("X") event spanning
    /// `[start_ps, start_ps + dur_ps]` simulated picoseconds.
    // One parameter per Chrome-trace field; grouping them into a struct
    // would just re-spell the format at every call site.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        start_ps: u64,
        dur_ps: u64,
        args: &[(&str, u64)],
    ) {
        self.events.push(CompleteEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            pid,
            tid,
            start_ps,
            dur_ps,
            args: args.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        });
    }

    /// Name a process lane in the viewer.
    pub fn name_process(&mut self, pid: u32, label: &str) {
        self.meta.push(MetaEvent {
            meta: "process_name",
            pid,
            tid: 0,
            label: label.to_owned(),
        });
    }

    /// Name a thread lane in the viewer.
    pub fn name_thread(&mut self, pid: u32, tid: u32, label: &str) {
        self.meta.push(MetaEvent {
            meta: "thread_name",
            pid,
            tid,
            label: label.to_owned(),
        });
    }

    /// Append every event (complete and metadata) of `other` to this sink.
    /// Used by the epoch-parallel engine to combine per-region sinks after
    /// a run; follow with [`canonical_sort`](Self::canonical_sort) so the
    /// merged order is independent of how regions partitioned the work.
    pub fn merge_from(&mut self, other: TraceSink) {
        self.events.extend(other.events);
        self.meta.extend(other.meta);
    }

    /// Sort complete events into a canonical total order — by start time,
    /// then lane (`pid`, `tid`), then duration, name, category, and args.
    /// Two runs that record the same event *set* then serialize to the
    /// same bytes regardless of recording order; metadata events keep
    /// insertion order (emitters add them once, in a fixed order).
    pub fn canonical_sort(&mut self) {
        self.events.sort_by(|a, b| {
            (a.start_ps, a.pid, a.tid, a.dur_ps, &a.name, &a.cat, &a.args)
                .cmp(&(b.start_ps, b.pid, b.tid, b.dur_ps, &b.name, &b.cat, &b.args))
        });
    }

    /// Number of complete events recorded (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no complete events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full trace as a Trace-Event-Format JSON value: metadata events
    /// first, then complete events in insertion order. `ts`/`dur` are in
    /// microseconds as the format requires (fractional; exact for any
    /// picosecond count below 2^53 femtosecond-free range).
    pub fn to_json(&self) -> Value {
        let mut events: Vec<Value> = Vec::with_capacity(self.meta.len() + self.events.len());
        for m in &self.meta {
            let name_arg = json!({ "name": m.label });
            events.push(json!({
                "name": m.meta,
                "ph": "M",
                "pid": m.pid,
                "tid": m.tid,
                "args": name_arg,
            }));
        }
        for e in &self.events {
            let mut args = std::collections::BTreeMap::new();
            for (k, v) in &e.args {
                args.insert(k.clone(), json!(*v));
            }
            events.push(json!({
                "name": e.name,
                "cat": e.cat,
                "ph": "X",
                "ts": e.start_ps as f64 / 1e6,
                "dur": e.dur_ps as f64 / 1e6,
                "pid": e.pid,
                "tid": e.tid,
                "args": Value::Object(args),
            }));
        }
        json!({
            "displayTimeUnit": "ns",
            "traceEvents": events,
        })
    }

    /// The trace serialized compactly, newline-terminated — the byte shape
    /// written to the `--trace` output file.
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string(&self.to_json()).unwrap_or_default();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_required_keys_per_event() {
        let mut t = TraceSink::new();
        t.name_process(1, "network");
        t.name_thread(1, 3, "node 3");
        t.complete("Request", "msg", 1, 3, 2_000_000, 500_000, &[("hops", 2)]);
        let s = t.to_json_string();
        assert!(s.contains("\"traceEvents\""), "{s}");
        assert!(s.contains("\"ph\":\"X\""), "{s}");
        assert!(s.contains("\"ph\":\"M\""), "{s}");
        // 2_000_000 ps = 2 µs, 500_000 ps = 0.5 µs.
        assert!(s.contains("\"ts\":2.0"), "{s}");
        assert!(s.contains("\"dur\":0.5"), "{s}");
        assert!(s.contains("\"hops\":2"), "{s}");
        assert!(s.ends_with('\n'), "newline-terminated file body");
    }

    #[test]
    fn merged_sinks_sort_to_recording_order_independent_bytes() {
        let event = |t: &mut TraceSink, n: &str, start: u64| {
            t.complete(n, "msg", 1, 0, start, 10, &[("tag", start)]);
        };
        let mut a = TraceSink::new();
        let mut b = TraceSink::new();
        event(&mut a, "x", 30);
        event(&mut a, "x", 10);
        event(&mut b, "y", 20);
        let mut ab = TraceSink::new();
        ab.merge_from(a.clone());
        ab.merge_from(b.clone());
        let mut ba = TraceSink::new();
        ba.merge_from(b);
        ba.merge_from(a);
        ab.canonical_sort();
        ba.canonical_sort();
        assert_eq!(ab.to_json_string(), ba.to_json_string());
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn empty_sink_serializes_cleanly() {
        let t = TraceSink::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_json_string().contains("\"traceEvents\":[]"));
    }
}
