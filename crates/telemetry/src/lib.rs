//! Deterministic telemetry for the GS1280 reproduction.
//!
//! The paper this repository reproduces is an *attribution* study: it
//! explains where nanoseconds and GB/s go (Zbox queueing vs. router
//! arbitration vs. link serialization vs. directory hops). This crate is
//! the substrate that lets every experiment answer the same question:
//!
//! * [`Registry`] — typed counters, high-water gauges, and log2-bucketed
//!   [`Log2Histogram`]s with fixed (lexicographic) snapshot order, no
//!   hashing, and no wall clock, so snapshots are byte-identical at any
//!   worker count once per-worker registries are merged in input order.
//! * [`HopBreakdown`] / [`BreakdownTable`] — the compact span stack a
//!   message carries through the network and the aggregate per-stage
//!   latency decomposition built from it.
//! * [`TraceSink`] — a Chrome `chrome://tracing` / Perfetto-compatible
//!   event trace of message lifetimes and router occupancy.
//! * [`Timeline`] / [`Heatmap`] — the time axis and the space axis:
//!   fixed-width sim-time-windowed registries with the same commutative
//!   merge, and P×Q topology grids merged element-wise, so *when* and
//!   *where* are as byte-reproducible as *how much*.
//!
//! Everything is plain data updated through `&mut`: the zero-cost-when-off
//! facade is an `Option<...>` at each instrumentation site, so disabled
//! telemetry is a branch on a `None` that the hot loops never take.
//! The one process-global piece of state is [`global::EVENT_QUEUE_PEAK`],
//! a relaxed high-water gauge that event queues flush into on drop (the
//! promotion of the old ad-hoc peak-depth static in `alphasim_kernel`).

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod heatmap;
pub mod hist;
pub mod registry;
pub mod span;
pub mod timeline;
pub mod trace;

pub use heatmap::Heatmap;
pub use hist::Log2Histogram;
pub use registry::Registry;
pub use span::{BreakdownTable, HopBreakdown};
pub use timeline::Timeline;
pub use trace::TraceSink;

/// Process-global high-water gauges.
///
/// These are observational (reporting-only) metrics that cross ownership
/// boundaries — e.g. every event queue in the process, regardless of which
/// experiment or worker thread owns it. They never feed back into
/// simulation behaviour, so their relaxed atomics cannot perturb results.
pub mod global {
    use std::sync::atomic::{AtomicU64, Ordering}; // lint-allow: shared-mutable-state

    /// A process-wide high-water-mark gauge.
    #[derive(Debug)]
    pub struct PeakGauge(AtomicU64); // lint-allow: shared-mutable-state

    impl PeakGauge {
        /// A gauge starting at zero.
        pub const fn new() -> Self {
            PeakGauge(AtomicU64::new(0)) // lint-allow: shared-mutable-state
        }

        /// Raise the gauge to at least `value`.
        pub fn record_max(&self, value: u64) {
            self.0.fetch_max(value, Ordering::Relaxed);
        }

        /// Current high-water mark.
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }

        /// Read and reset to zero (scopes a measurement to one sweep).
        pub fn take(&self) -> u64 {
            self.0.swap(0, Ordering::Relaxed)
        }
    }

    impl Default for PeakGauge {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Deepest simultaneous event count observed by any event queue in the
    /// process since the last [`PeakGauge::take`].
    pub static EVENT_QUEUE_PEAK: PeakGauge = PeakGauge::new();

    /// Shard indices tracked by [`EVENT_QUEUE_SHARD_PEAKS`]. Sharded queues
    /// with more regions than this fold the excess into the last gauge.
    pub const MAX_TRACKED_SHARDS: usize = 16;

    /// Per-region-shard high-water marks of sharded event queues, indexed
    /// by shard id. Like [`EVENT_QUEUE_PEAK`] these are reporting-only and
    /// merged commutatively (`max`), so the snapshot is byte-identical at
    /// any worker count; `BENCH_sweep.json` records them next to the global
    /// gauge.
    pub static EVENT_QUEUE_SHARD_PEAKS: [PeakGauge; MAX_TRACKED_SHARDS] = [
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
        PeakGauge::new(),
    ];

    #[cfg(test)]
    mod tests {
        use super::PeakGauge;

        #[test]
        fn records_and_takes_high_water() {
            let g = PeakGauge::new();
            g.record_max(5);
            g.record_max(3);
            assert_eq!(g.get(), 5);
            assert_eq!(g.take(), 5);
            assert_eq!(g.get(), 0);
        }
    }
}
