//! Per-transaction latency attribution.
//!
//! [`HopBreakdown`] is the compact span stack a message carries through the
//! network: integer-picosecond accumulators for each pipeline stage a hop
//! can charge. The network schedules each hop's arrival at
//! `grant + router + wire + serialization + congestion`, so the accumulated
//! stages sum *exactly* to the end-to-end latency — no rounding, no drift.
//!
//! [`BreakdownTable`] aggregates those spans (plus memory-side stages) over
//! a whole experiment into the local/remote latency decomposition the
//! GS1280 paper presents in its Figures 4–9.

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Integer-picosecond stage accumulators carried by one message from
/// injection to delivery. All-zero for a self-delivery (no network hops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopBreakdown {
    /// Time spent queued on VC buffers waiting for the output ("global")
    /// arbiter to grant the physical channel, summed over hops.
    pub queued_ps: u64,
    /// Router pipeline traversals (fixed per-hop latency), summed.
    pub router_ps: u64,
    /// Wire flight time, summed over hops.
    pub wire_ps: u64,
    /// One-time packet serialization onto the first granted channel.
    pub serialization_ps: u64,
    /// Congestion penalty charged per hop from the backlog model.
    pub congestion_ps: u64,
}

impl HopBreakdown {
    /// Sum of every stage — equals delivery latency exactly for a message
    /// that was never evicted off a failed link mid-route.
    pub fn total_ps(&self) -> u64 {
        self.queued_ps + self.router_ps + self.wire_ps + self.serialization_ps + self.congestion_ps
    }

    /// Accumulate another breakdown (e.g. merging legs of a transaction).
    pub fn add(&mut self, other: &HopBreakdown) {
        self.queued_ps += other.queued_ps;
        self.router_ps += other.router_ps;
        self.wire_ps += other.wire_ps;
        self.serialization_ps += other.serialization_ps;
        self.congestion_ps += other.congestion_ps;
    }
}

/// One named stage of the aggregate decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StageEntry {
    stage: String,
    total_ps: u64,
}

/// An aggregate per-stage latency decomposition over many transactions.
///
/// Stages keep their **first-use order** (the pipeline order the
/// instrumentation site establishes), not lexicographic order, so the table
/// reads top-to-bottom like the transaction's life. Merging tables built
/// by different sweep workers matches stages by name; all workers run the
/// same instrumentation code, so first-use order is identical and the merge
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreakdownTable {
    stages: Vec<StageEntry>,
    transactions: u64,
    end_to_end_ps: u64,
}

impl BreakdownTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `ps` picoseconds to a named stage.
    pub fn charge(&mut self, stage: &str, ps: u64) {
        if let Some(e) = self.stages.iter_mut().find(|e| e.stage == stage) {
            e.total_ps += ps;
        } else {
            self.stages.push(StageEntry {
                stage: stage.to_owned(),
                total_ps: ps,
            });
        }
    }

    /// Close out one transaction whose end-to-end latency was `e2e_ps`.
    pub fn complete_transaction(&mut self, e2e_ps: u64) {
        self.transactions += 1;
        self.end_to_end_ps += e2e_ps;
    }

    /// Number of completed transactions.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total end-to-end picoseconds across all completed transactions.
    pub fn end_to_end_ps(&self) -> u64 {
        self.end_to_end_ps
    }

    /// Sum of every stage's charged picoseconds. Equal to
    /// [`end_to_end_ps`](Self::end_to_end_ps) when the instrumentation
    /// charges a residual stage (and exactly, since everything is integer).
    pub fn charged_ps(&self) -> u64 {
        self.stages.iter().map(|e| e.total_ps).sum()
    }

    /// Total picoseconds charged to one stage (0 if absent).
    pub fn stage_ps(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .find(|e| e.stage == stage)
            .map_or(0, |e| e.total_ps)
    }

    /// Merge another table: stages match by name, unseen stages append in
    /// the other table's order; transaction and end-to-end totals add.
    pub fn merge(&mut self, other: &BreakdownTable) {
        for e in &other.stages {
            self.charge(&e.stage, e.total_ps);
        }
        self.transactions += other.transactions;
        self.end_to_end_ps += other.end_to_end_ps;
    }

    /// JSON snapshot: stage list in table order with per-transaction means,
    /// plus the totals the exactness check compares.
    pub fn to_json(&self) -> Value {
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|e| {
                json!({
                    "stage": e.stage,
                    "total_ps": e.total_ps,
                    "mean_ns_per_tx": self.mean_ns(e.total_ps),
                    "share_pct": self.share_pct(e.total_ps),
                })
            })
            .collect();
        json!({
            "transactions": self.transactions,
            "end_to_end_ps": self.end_to_end_ps,
            "charged_ps": self.charged_ps(),
            "mean_end_to_end_ns": self.mean_ns(self.end_to_end_ps),
            "stages": stages,
        })
    }

    /// Human-readable table, one stage per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "per-hop latency attribution ({} transactions, mean end-to-end {:.1} ns)\n",
            self.transactions,
            self.mean_ns(self.end_to_end_ps)
        ));
        out.push_str(&format!(
            "{:<34} {:>14} {:>12} {:>8}\n",
            "stage", "total (ns)", "mean ns/tx", "share"
        ));
        for e in &self.stages {
            out.push_str(&format!(
                "{:<34} {:>14.1} {:>12.2} {:>7.2}%\n",
                e.stage,
                e.total_ps as f64 / 1e3,
                self.mean_ns(e.total_ps),
                self.share_pct(e.total_ps)
            ));
        }
        out.push_str(&format!(
            "{:<34} {:>14.1} {:>12.2} {:>7.2}%\n",
            "(sum of stages)",
            self.charged_ps() as f64 / 1e3,
            self.mean_ns(self.charged_ps()),
            self.share_pct(self.charged_ps())
        ));
        out
    }

    fn mean_ns(&self, total_ps: u64) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            total_ps as f64 / self.transactions as f64 / 1e3
        }
    }

    fn share_pct(&self, total_ps: u64) -> f64 {
        if self.end_to_end_ps == 0 {
            0.0
        } else {
            total_ps as f64 * 100.0 / self.end_to_end_ps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_breakdown_total_sums_stages() {
        let b = HopBreakdown {
            queued_ps: 1,
            router_ps: 2,
            wire_ps: 3,
            serialization_ps: 4,
            congestion_ps: 5,
        };
        assert_eq!(b.total_ps(), 15);
        let mut c = b;
        c.add(&b);
        assert_eq!(c.total_ps(), 30);
    }

    #[test]
    fn table_keeps_first_use_order_and_exact_sums() {
        let mut t = BreakdownTable::new();
        t.charge("request: wire", 10);
        t.charge("zbox: dram", 30);
        t.charge("request: wire", 5);
        t.complete_transaction(45);
        assert_eq!(t.stage_ps("request: wire"), 15);
        assert_eq!(t.charged_ps(), 45);
        assert_eq!(t.end_to_end_ps(), 45);
        let text = t.to_text();
        let wire = text.find("request: wire").expect("stage listed");
        let dram = text.find("zbox: dram").expect("stage listed");
        assert!(wire < dram, "first-use order expected:\n{text}");
    }

    #[test]
    fn merge_matches_single_table() {
        let mut a = BreakdownTable::new();
        a.charge("s1", 10);
        a.complete_transaction(10);
        let mut b = BreakdownTable::new();
        b.charge("s1", 4);
        b.charge("s2", 6);
        b.complete_transaction(10);
        let mut whole = BreakdownTable::new();
        whole.charge("s1", 14);
        whole.charge("s2", 6);
        whole.complete_transaction(10);
        whole.complete_transaction(10);
        a.merge(&b);
        assert_eq!(a.transactions(), 2);
        assert_eq!(a.end_to_end_ps(), 20);
        assert_eq!(a.charged_ps(), 20);
        assert_eq!(a.stage_ps("s1"), whole.stage_ps("s1"));
        assert_eq!(a.stage_ps("s2"), whole.stage_ps("s2"));
    }
}
