//! Sim-time-windowed metric timelines.
//!
//! The registry ([`crate::Registry`]) answers *how much*; a [`Timeline`]
//! answers *when*. It buckets every update into a fixed-width window of
//! simulated time (`window index = at_ps / window_ps`, so boundaries are a
//! pure function of the timestamp, never of event arrival order) and keeps
//! one registry per window. All three metric types inherit the registry's
//! commutative merge semantics — counters add, gauges max, log2 histograms
//! add bucket-wise — so merging per-worker timelines in input order yields
//! the identical series at any shard or thread count, and folding every
//! window back together ([`Timeline::totals`]) reproduces the whole-run
//! registry exactly. That *exact-sum invariant* is what lets a windowed
//! series be trusted: the timeline is a partition of the totals, not a
//! second (approximate) measurement.

use std::collections::BTreeMap;

use serde_json::{Number, Value};

use crate::registry::Registry;

/// Fixed-width sim-time-windowed series of registries.
///
/// Sparse: only windows that received at least one update exist. Series
/// extraction ([`counter_series`](Self::counter_series)) densifies from
/// window 0 through the last touched window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    window_ps: u64,
    windows: BTreeMap<u64, Registry>,
}

impl Timeline {
    /// An empty timeline of `window_ps`-wide windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_ps` is zero.
    pub fn new(window_ps: u64) -> Self {
        assert!(window_ps > 0, "window width must be positive");
        Timeline {
            window_ps,
            windows: BTreeMap::new(),
        }
    }

    /// The window width in picoseconds.
    pub fn window_ps(&self) -> u64 {
        self.window_ps
    }

    /// The window index `at_ps` falls into — a pure function of the
    /// timestamp, so two workers bucketing the same event agree no matter
    /// who processed it.
    pub fn window_index(&self, at_ps: u64) -> u64 {
        at_ps / self.window_ps
    }

    /// Number of windows that received at least one update.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window was ever touched.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The highest touched window index, if any.
    pub fn last_index(&self) -> Option<u64> {
        self.windows.keys().next_back().copied()
    }

    /// The registry of window `index`, if it was touched.
    pub fn window(&self, index: u64) -> Option<&Registry> {
        self.windows.get(&index)
    }

    /// Touched windows in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Registry)> {
        self.windows.iter().map(|(&i, r)| (i, r))
    }

    /// Add `delta` to `name`'s counter in the window containing `at_ps`.
    pub fn counter_add(&mut self, at_ps: u64, name: &str, delta: u64) {
        let idx = self.window_index(at_ps);
        self.windows
            .entry(idx)
            .or_default()
            .counter_add(name, delta);
    }

    /// Raise `name`'s high-water gauge in the window containing `at_ps`.
    pub fn gauge_max(&mut self, at_ps: u64, name: &str, value: u64) {
        let idx = self.window_index(at_ps);
        self.windows.entry(idx).or_default().gauge_max(name, value);
    }

    /// Record one histogram sample into the window containing `at_ps`.
    pub fn record(&mut self, at_ps: u64, name: &str, value: u64) {
        let idx = self.window_index(at_ps);
        self.windows.entry(idx).or_default().record(name, value);
    }

    /// Merge another timeline window-by-window. Commutative and
    /// associative because every per-window operation is; merging
    /// per-worker timelines in input order therefore reproduces the
    /// sequential run byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ — windows of different widths
    /// do not partition time the same way and must never be mixed.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.window_ps, other.window_ps,
            "merging timelines with different window widths"
        );
        for (&idx, reg) in &other.windows {
            self.windows.entry(idx).or_default().merge(reg);
        }
    }

    /// Fold every window into one registry — the exact-sum invariant:
    /// because windows partition the run, the folded counters equal the
    /// whole-run counters, the folded gauges the whole-run high-water
    /// marks, and the folded histograms the whole-run histograms.
    pub fn totals(&self) -> Registry {
        let mut total = Registry::new();
        for reg in self.windows.values() {
            total.merge(reg);
        }
        total
    }

    /// Dense per-window counter values from window 0 through the last
    /// touched window (untouched windows read 0). Empty if nothing was
    /// ever recorded.
    pub fn counter_series(&self, name: &str) -> Vec<u64> {
        self.dense(|r| r.counter(name))
    }

    /// Dense per-window gauge values, like
    /// [`counter_series`](Self::counter_series).
    pub fn gauge_series(&self, name: &str) -> Vec<u64> {
        self.dense(|r| r.gauge(name))
    }

    fn dense(&self, read: impl Fn(&Registry) -> u64) -> Vec<u64> {
        let Some(last) = self.last_index() else {
            return Vec::new();
        };
        (0..=last)
            .map(|i| self.windows.get(&i).map_or(0, &read))
            .collect()
    }

    /// JSON snapshot: the window width plus one entry per touched window
    /// (ascending index), each carrying its full registry snapshot. All
    /// integers, so the bytes are exact at any worker count.
    pub fn to_json(&self) -> Value {
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|(&idx, reg)| {
                let mut w = BTreeMap::new();
                w.insert("index".to_owned(), Value::Number(Number::PosInt(idx)));
                w.insert("registry".to_owned(), reg.to_json());
                Value::Object(w)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "window_ps".to_owned(),
            Value::Number(Number::PosInt(self.window_ps)),
        );
        root.insert("windows".to_owned(), Value::Array(windows));
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shift: u64) -> Timeline {
        let mut t = Timeline::new(1_000);
        for k in 0..20u64 {
            let at = shift + k * 137;
            t.counter_add(at, "completed", 1);
            t.gauge_max(at, "depth", k);
            t.record(at, "latency", k * k);
        }
        t
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_window_is_rejected() {
        Timeline::new(0);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let mut t = Timeline::new(1_000);
        t.counter_add(0, "c", 1); // window 0
        t.counter_add(999, "c", 1); // still window 0
        t.counter_add(1_000, "c", 1); // exactly the boundary: window 1
        t.counter_add(1_999, "c", 1); // window 1
        t.counter_add(2_000, "c", 1); // window 2
        assert_eq!(t.counter_series("c"), vec![2, 2, 1]);
        assert_eq!(t.window_index(999), 0);
        assert_eq!(t.window_index(1_000), 1);
    }

    #[test]
    fn dense_series_fills_untouched_windows_with_zero() {
        let mut t = Timeline::new(100);
        t.counter_add(50, "c", 3);
        t.counter_add(450, "c", 7);
        assert_eq!(t.counter_series("c"), vec![3, 0, 0, 0, 7]);
        assert_eq!(t.gauge_series("missing"), vec![0, 0, 0, 0, 0]);
        assert!(Timeline::new(100).counter_series("c").is_empty());
    }

    #[test]
    fn merge_is_commutative_and_matches_sequential() {
        let a = sample(0);
        let b = sample(5_000);
        let mut ab = Timeline::new(1_000);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Timeline::new(1_000);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            serde_json::to_string(&ab.to_json()).expect("serialize"),
            serde_json::to_string(&ba.to_json()).expect("serialize"),
        );
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merging_mismatched_widths_is_rejected() {
        let mut a = Timeline::new(100);
        a.merge(&Timeline::new(200));
    }

    #[test]
    fn totals_reproduce_the_unwindowed_registry_exactly() {
        // The exact-sum invariant: recording through the timeline and
        // through a plain registry must agree once windows are folded.
        let mut t = Timeline::new(777); // width chosen to straddle values
        let mut whole = Registry::new();
        for k in 0..50u64 {
            let at = k * 313;
            t.counter_add(at, "completed", k);
            whole.counter_add("completed", k);
            t.gauge_max(at, "depth", 1000 - k);
            whole.gauge_max("depth", 1000 - k);
            t.record(at, "lat", k * 17);
            whole.record("lat", k * 17);
        }
        assert_eq!(t.totals(), whole);
    }

    #[test]
    fn json_shape_is_integer_only_and_window_ordered() {
        let mut t = Timeline::new(10);
        t.counter_add(95, "c", 2);
        t.counter_add(5, "c", 1);
        let s = serde_json::to_string(&t.to_json()).expect("serialize");
        assert!(s.contains("\"window_ps\":10"), "{s}");
        let first = s.find("\"index\":0").expect("window 0 present");
        let second = s.find("\"index\":9").expect("window 9 present");
        assert!(first < second, "windows must serialize in index order: {s}");
        assert!(!s.contains('.'), "all-integer JSON expected: {s}");
    }
}
