//! Structured experiment results: every figure and table reproduction
//! returns one of these, so benches, tests, examples and the `reproduce`
//! binary all consume the same data.

use serde::{Deserialize, Serialize};

/// One (x, y) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Abscissa (CPU count, dataset bytes, outstanding requests, …).
    pub x: f64,
    /// Ordinate (latency ns, GB/s, IPC, …).
    pub y: f64,
}

/// A named curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (usually a machine name).
    pub label: String,
    /// Samples in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// A series from `(x, y)` pairs.
    pub fn from_pairs(
        label: impl Into<String>,
        pairs: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        Series {
            label: label.into(),
            points: pairs.into_iter().map(|(x, y)| Point { x, y }).collect(),
        }
    }

    /// The y value at a given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }

    /// The largest y in the series.
    pub fn peak_y(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A reproduced figure: labelled series over labelled axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Paper figure id, e.g. `"fig15"`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// A figure shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Find a series by label substring.
    pub fn series_like(&self, pat: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label.contains(pat))
    }

    /// Render as a plain-text table (x column + one column per series).
    pub fn to_text(&self) -> String {
        let mut out = format!("{} — {}\n", self.id, self.title);
        out.push_str(&format!("{:>14}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("  {:>22}", truncate(&s.label, 22)));
        }
        out.push('\n');
        let xs: Vec<f64> = {
            let mut xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.x))
                .collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            xs
        };
        for x in xs {
            out.push_str(&format!("{x:>14.4}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!("  {y:>22.4}")),
                    None => out.push_str(&format!("  {:>22}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("(y axis: {})\n", self.y_label));
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// A row of a ratio/summary table (Fig. 28, Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioRow {
    /// Row label.
    pub label: String,
    /// Value our reproduction computed.
    pub computed: f64,
    /// The paper's published value, when it printed one.
    pub paper: Option<f64>,
}

/// A reproduced table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Paper table/figure id.
    pub id: String,
    /// Caption.
    pub title: String,
    /// Rows.
    pub rows: Vec<RatioRow>,
}

impl Table {
    /// Render as plain text.
    pub fn to_text(&self) -> String {
        let mut out = format!("{} — {}\n", self.id, self.title);
        out.push_str(&format!(
            "{:<48} {:>12} {:>12}\n",
            "metric", "computed", "paper"
        ));
        for r in &self.rows {
            let paper = r
                .paper
                .map_or_else(|| "-".to_string(), |p| format!("{p:.3}"));
            out.push_str(&format!(
                "{:<48} {:>12.3} {:>12}\n",
                truncate(&r.label, 48),
                r.computed,
                paper
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup_and_peak() {
        let s = Series::from_pairs("m", [(1.0, 10.0), (2.0, 30.0), (4.0, 20.0)]);
        assert_eq!(s.y_at(2.0), Some(30.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.peak_y(), 30.0);
    }

    #[test]
    fn figure_text_render_contains_all_series() {
        let f = Figure::new("figX", "demo", "n", "v")
            .with_series(Series::from_pairs("a", [(1.0, 2.0)]))
            .with_series(Series::from_pairs("b", [(1.0, 3.0), (2.0, 4.0)]));
        let txt = f.to_text();
        assert!(txt.contains("figX"));
        assert!(txt.contains('a') && txt.contains('b'));
        assert!(txt.lines().count() >= 4);
        assert!(f.series_like("b").is_some());
        assert!(f.series_like("zzz").is_none());
    }

    #[test]
    fn table_text_render() {
        let t = Table {
            id: "table1".into(),
            title: "gains".into(),
            rows: vec![
                RatioRow {
                    label: "4x2 avg".into(),
                    computed: 1.2,
                    paper: Some(1.2),
                },
                RatioRow {
                    label: "no paper value".into(),
                    computed: 3.0,
                    paper: None,
                },
            ],
        };
        let txt = t.to_text();
        assert!(txt.contains("1.200"));
        assert!(txt.contains('-'));
    }
}
