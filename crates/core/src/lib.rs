//! `alphasim` — a discrete-event reproduction of the ISCA 2003 study
//! *"Performance Analysis of the Alpha 21364-based HP GS1280
//! Multiprocessor"* (Z. Cvetanovic, HP).
//!
//! The original is a measurement study of real hardware. This crate and its
//! substrates rebuild the machines as calibrated simulators and rerun every
//! experiment:
//!
//! * the **GS1280** — Alpha 21364 CPUs (on-chip L2, dual RDRAM controllers,
//!   on-chip router) on a 2-D adaptive torus — plus the previous-generation
//!   **GS320**, **ES45** and **SC45** comparison machines
//!   ([`alphasim_system`], re-exported as [`system`]);
//! * the torus/shuffle topologies, routing, and the deadlock-freedom
//!   construction ([`alphasim_topology`] → [`topology`]);
//! * the message-level interconnect simulator ([`alphasim_net`] → [`net`]);
//! * caches, memory controllers, and the directory protocol ([`cache`],
//!   [`mem`], [`coherence`]);
//! * the measurement workloads — pointer chase, STREAM, GUPS, SPEC
//!   profiles, Fluent and NAS SP proxies ([`workloads`]);
//! * the Xmesh profiling tool ([`xmesh`]).
//!
//! [`experiments`] contains one driver per paper figure/table, each
//! returning structured [`types`] data; the `alphasim-bench` crate renders
//! them, and EXPERIMENTS.md records paper-vs-computed for every one.
//!
//! # Quick start
//!
//! ```
//! use alphasim::system::Gs1280;
//! use alphasim::topology::NodeId;
//!
//! // Build the paper's 16-CPU machine and probe its latency map (Fig. 13).
//! let machine = Gs1280::builder().cpus(16).build();
//! assert_eq!(machine.local_latency(true).as_ns(), 83.0);
//! let remote = machine.read_clean(NodeId::new(0), NodeId::new(10));
//! assert!(remote.as_ns() > 200.0); // 4 hops away on the 4x4 torus
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod experiments;
pub mod types;

pub use alphasim_cache as cache;
pub use alphasim_coherence as coherence;
pub use alphasim_kernel as kernel;
pub use alphasim_mem as mem;
pub use alphasim_net as net;
pub use alphasim_system as system;
pub use alphasim_topology as topology;
pub use alphasim_workloads as workloads;
pub use alphasim_xmesh as xmesh;
