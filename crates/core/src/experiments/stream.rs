//! Figs. 6–7: McCalpin STREAM Triad bandwidth.

use alphasim_system::{Es45, Gs1280, Gs320, Sc45};

use crate::types::{Figure, Series};

/// Reproduce Fig. 6: Triad bandwidth scaling to 64 CPUs on the GS1280, to
/// 32 on the GS320, and per-box on the SC45.
pub fn fig06() -> Figure {
    let mut fig = Figure::new(
        "fig06",
        "McCalpin STREAM: Triad",
        "# CPUs",
        "bandwidth (GB/s)",
    );
    let g = Gs1280::builder().cpus(64).build();
    fig.series.push(Series::from_pairs(
        "HP GS1280/1.15GHz",
        [1usize, 2, 4, 8, 16, 32, 64].map(|n| (n as f64, g.stream_triad_gbps(n))),
    ));
    let q = Gs320::new(32);
    fig.series.push(Series::from_pairs(
        "HP GS320/1.2GHz",
        [1usize, 2, 4, 8, 16, 32].map(|n| (n as f64, q.stream_triad_gbps(n))),
    ));
    let s = Sc45::new(64);
    fig.series.push(Series::from_pairs(
        "HP SC45/1.25GHz",
        [4usize, 8, 16, 32, 64].map(|n| (n as f64, s.stream_triad_gbps(n))),
    ));
    fig
}

/// Reproduce Fig. 7: Triad bandwidth at 1 and 4 CPUs on all three machines.
pub fn fig07() -> Figure {
    let mut fig = Figure::new(
        "fig07",
        "McCalpin STREAM (Triad), 1 vs 4 CPUs",
        "# CPUs",
        "bandwidth (GB/s)",
    );
    let g = Gs1280::builder().cpus(4).build();
    let e = Es45::new(4);
    let q = Gs320::new(4);
    fig.series.push(Series::from_pairs(
        "GS1280/1.15GHz",
        [(1.0, g.stream_triad_gbps(1)), (4.0, g.stream_triad_gbps(4))],
    ));
    fig.series.push(Series::from_pairs(
        "ES45/1.25GHz",
        [(1.0, e.stream_triad_gbps(1)), (4.0, e.stream_triad_gbps(4))],
    ));
    fig.series.push(Series::from_pairs(
        "GS320/1.2GHz",
        [(1.0, q.stream_triad_gbps(1)), (4.0, q.stream_triad_gbps(4))],
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_gs1280_scales_linearly_and_dominates() {
        let fig = fig06();
        let g = fig.series_like("GS1280").unwrap();
        let q = fig.series_like("GS320").unwrap();
        // Linear: 64P = 64 x 1P.
        let one = g.y_at(1.0).unwrap();
        let sixty_four = g.y_at(64.0).unwrap();
        assert!((sixty_four - 64.0 * one).abs() < 1e-6);
        // Dominance at every shared point.
        for n in [1.0, 4.0, 16.0, 32.0] {
            assert!(g.y_at(n).unwrap() > 3.0 * q.y_at(n).unwrap(), "at {n}");
        }
    }

    #[test]
    fn fig07_values_near_paper() {
        let fig = fig07();
        let g = fig.series_like("GS1280").unwrap();
        let e = fig.series_like("ES45").unwrap();
        let q = fig.series_like("GS320").unwrap();
        // Paper's Fig. 7 readings (GB/s): GS1280 ~4.4/17.6; ES45 ~2.1/2.8;
        // GS320 ~0.6/1.15.
        assert!((g.y_at(1.0).unwrap() - 4.4).abs() < 0.5);
        assert!((g.y_at(4.0).unwrap() - 17.6).abs() < 2.0);
        assert!((e.y_at(1.0).unwrap() - 2.1).abs() < 0.4);
        assert!((e.y_at(4.0).unwrap() - 2.8).abs() < 0.5);
        assert!((q.y_at(1.0).unwrap() - 0.6).abs() < 0.15);
        assert!((q.y_at(4.0).unwrap() - 1.15).abs() < 0.25);
    }

    #[test]
    fn fig07_one_cpu_ratio_matches_fig28() {
        // Fig. 28's "memory copy bw (1P)" row: ~8x GS1280 vs GS320.
        let fig = fig07();
        let ratio = fig.series_like("GS1280").unwrap().y_at(1.0).unwrap()
            / fig.series_like("GS320").unwrap().y_at(1.0).unwrap();
        assert!((6.0..=10.0).contains(&ratio), "ratio {ratio}");
    }
}
