//! Figs. 15, 18, 26, 27: loaded interconnect behaviour.

use alphasim_kernel::par::parallel_map;
use alphasim_system::loadtest::{
    gs1280_load_test, gs320_load_test, LoadTestConfig, TrafficPattern,
};
use alphasim_system::{Gs1280, Gs320};
use alphasim_topology::route::RoutePolicy;
use alphasim_xmesh::{detect_hot_spots, HotSpotReport, MeshSnapshot, NodeCounters};

use crate::types::{Figure, Series};

/// The outstanding-request window values swept by the load test.
pub fn default_windows() -> Vec<usize> {
    vec![1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 25, 30]
}

fn latency_vs_bandwidth_gs1280(
    machine: &Gs1280,
    windows: &[usize],
    requests_per_cpu: usize,
    pattern: TrafficPattern,
) -> Vec<(f64, f64)> {
    // Each window value is an independent load test with its own simulator
    // and seeded RNG; fan them out, keeping curve order.
    parallel_map(windows.to_vec(), |w| {
        let r = gs1280_load_test(machine).run(&LoadTestConfig {
            outstanding: w,
            requests_per_cpu,
            pattern,
            ..Default::default()
        });
        (r.delivered_gbps * 1000.0, r.mean_latency.as_ns()) // MB/s-style axis in GB->MB
    })
}

/// Reproduce Fig. 15: latency vs delivered bandwidth under increasing load
/// for GS1280 at 16/32/64 CPUs and GS320 at 16/32. X = bandwidth (MB/s),
/// Y = latency (ns), exactly the paper's axes.
pub fn fig15(windows: &[usize], requests_per_cpu: usize) -> Figure {
    let mut fig = Figure::new(
        "fig15",
        "Load test: max outstanding memory references",
        "bandwidth (MB/s)",
        "latency (ns)",
    );
    fig.series
        .extend(parallel_map(vec![16usize, 32, 64], |cpus| {
            let m = Gs1280::builder().cpus(cpus).build();
            Series {
                label: format!("GS1280/{cpus}P"),
                points: latency_vs_bandwidth_gs1280(
                    &m,
                    windows,
                    requests_per_cpu,
                    TrafficPattern::UniformRemote,
                )
                .into_iter()
                .map(|(x, y)| crate::types::Point { x, y })
                .collect(),
            }
        }));
    fig.series.extend(parallel_map(vec![16usize, 32], |cpus| {
        let m = Gs320::new(cpus);
        let pts = parallel_map(windows.to_vec(), |w| {
            let r = gs320_load_test(&m).run(&LoadTestConfig {
                outstanding: w,
                requests_per_cpu,
                pattern: TrafficPattern::UniformRemote,
                ..Default::default()
            });
            (r.delivered_gbps * 1000.0, r.mean_latency.as_ns())
        });
        Series::from_pairs(format!("GS320/{cpus}P"), pts)
    }));
    fig
}

/// Reproduce Fig. 18: the 8-CPU load test on the plain torus vs the shuffle
/// with 1-hop and 2-hop routing policies.
pub fn fig18(windows: &[usize], requests_per_cpu: usize) -> Figure {
    let mut fig = Figure::new(
        "fig18",
        "Shuffle improvements (8-CPU load test)",
        "bandwidth (MB/s)",
        "latency (ns)",
    );
    let variants: [(&str, Option<RoutePolicy>); 3] = [
        ("current (torus)", None),
        ("shuffle", Some(RoutePolicy::ShuffleFirstHop)),
        ("shuffle_2hop", Some(RoutePolicy::ShuffleFirstTwoHops)),
    ];
    fig.series
        .extend(parallel_map(variants.to_vec(), |(label, policy)| {
            let mut b = Gs1280::builder().cpus(8);
            if let Some(p) = policy {
                b = b.shuffle(p);
            }
            let m = b.build();
            Series::from_pairs(
                label,
                latency_vs_bandwidth_gs1280(
                    &m,
                    windows,
                    requests_per_cpu,
                    TrafficPattern::UniformRemote,
                ),
            )
        }));
    fig
}

/// Reproduce Fig. 26: hot-spot latency vs bandwidth, striped vs non-striped
/// (all CPUs read CPU 0's memory; striping spreads it over the module
/// pair).
pub fn fig26(windows: &[usize], requests_per_cpu: usize) -> Figure {
    let m = Gs1280::builder().cpus(16).build();
    let partner = 4; // (0,1) is node 0's module partner in the 4x4 layout
    let mut fig = Figure::new(
        "fig26",
        "Hot-spot improvement from striping",
        "bandwidth (MB/s)",
        "latency (ns)",
    );
    let patterns = vec![
        ("non-striped", TrafficPattern::HotSpot(0)),
        ("striped", TrafficPattern::StripedHotSpot(0, partner)),
    ];
    fig.series
        .extend(parallel_map(patterns, |(label, pattern)| {
            Series::from_pairs(
                label,
                latency_vs_bandwidth_gs1280(&m, windows, requests_per_cpu, pattern),
            )
        }));
    fig
}

/// Reproduce Fig. 27: run hot-spot traffic and return the Xmesh snapshot
/// plus its hot-spot report.
pub fn fig27(requests_per_cpu: usize) -> (MeshSnapshot, HotSpotReport) {
    let m = Gs1280::builder().cpus(16).build();
    let r = gs1280_load_test(&m).run(&LoadTestConfig {
        outstanding: 8,
        requests_per_cpu,
        pattern: TrafficPattern::HotSpot(0),
        ..Default::default()
    });
    let mut snap = MeshSnapshot::new(4, 4);
    for n in &r.nodes {
        snap.set(
            n.node,
            NodeCounters {
                zbox_util: n.zbox_utilization,
                ip_util: n.ip_utilization,
                io_util: 0.0,
            },
        );
    }
    let report = detect_hot_spots(&snap);
    (snap, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_windows() -> Vec<usize> {
        vec![1, 4, 12, 30]
    }

    #[test]
    fn fig15_shapes() {
        let fig = fig15(&quick_windows(), 40);
        assert_eq!(fig.series.len(), 5);
        // GS1280/64P reaches far more bandwidth than GS320/32P.
        let g64 = fig.series_like("GS1280/64P").unwrap();
        let q32 = fig.series_like("GS320/32P").unwrap();
        let g_peak_bw = g64.points.iter().map(|p| p.x).fold(0.0, f64::max);
        let q_peak_bw = q32.points.iter().map(|p| p.x).fold(0.0, f64::max);
        assert!(
            g_peak_bw > 8.0 * q_peak_bw,
            "GS1280 {g_peak_bw} vs GS320 {q_peak_bw}"
        );
        // GS320's latency blows up under load, GS1280's stays flatter.
        let g_lat_rise = g64.points.last().unwrap().y / g64.points[0].y;
        let q_lat_rise = q32.points.last().unwrap().y / q32.points[0].y;
        assert!(q_lat_rise > g_lat_rise, "{q_lat_rise} vs {g_lat_rise}");
    }

    #[test]
    fn fig18_shuffle_beats_torus() {
        let fig = fig18(&quick_windows(), 40);
        let torus = fig.series_like("current").unwrap();
        let shuffle = fig.series_like("shuffle").unwrap();
        // At the same window, shuffle delivers at least as much bandwidth
        // at no more latency (5-25% gain per the paper).
        let t_peak = torus.points.iter().map(|p| p.x).fold(0.0, f64::max);
        let s_peak = shuffle.points.iter().map(|p| p.x).fold(0.0, f64::max);
        assert!(s_peak > t_peak * 1.02, "shuffle {s_peak} vs torus {t_peak}");
    }

    #[test]
    fn fig26_striping_helps_hot_spot() {
        let fig = fig26(&quick_windows(), 40);
        // NB: series_like("striped") would also match "non-striped".
        let plain = &fig.series[0];
        let striped = &fig.series[1];
        let p_peak = plain.points.iter().map(|p| p.x).fold(0.0, f64::max);
        let s_peak = striped.points.iter().map(|p| p.x).fold(0.0, f64::max);
        // "up to 80%" improvement; we demand at least 25%.
        assert!(s_peak > 1.25 * p_peak, "striped {s_peak} plain {p_peak}");
    }

    #[test]
    fn fig27_xmesh_flags_node_zero() {
        let (snap, report) = fig27(60);
        assert_eq!(report.hot_nodes, vec![0]);
        assert!(snap.get(0).zbox_util > 0.3);
        assert!(report.background_zbox < 0.05);
    }
}
