//! Figs. 4–5: dependent-load latency through the cache/memory hierarchy.

use alphasim_cache::{CacheHierarchy, HierarchyConfig};
use alphasim_kernel::par::parallel_map;
use alphasim_kernel::SimDuration;
use alphasim_mem::OpenPageTable;
use alphasim_workloads::PointerChase;

use crate::types::{Figure, Series};

/// A machine's view for the single-CPU latency experiments.
#[derive(Debug, Clone, Copy)]
pub struct LatencyMachine {
    /// Display name.
    pub name: &'static str,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Open-page memory load-to-use, ns.
    pub open_ns: f64,
    /// Closed-page memory load-to-use, ns.
    pub closed_ns: f64,
    /// RDRAM/SDRAM page size, KiB.
    pub page_kib: u64,
    /// Open-page table capacity.
    pub open_pages: usize,
}

impl LatencyMachine {
    /// The GS1280 (83/130 ns; Figs. 5, 13).
    pub fn gs1280() -> Self {
        LatencyMachine {
            name: "GS1280/1.15GHz",
            hierarchy: HierarchyConfig::ev7(),
            open_ns: 83.0,
            closed_ns: 130.0,
            page_kib: 2,
            open_pages: 2048,
        }
    }

    /// The ES45 (~185 ns memory plateau in Fig. 4).
    pub fn es45() -> Self {
        LatencyMachine {
            name: "ES45/1.25GHz",
            hierarchy: HierarchyConfig::ev68(),
            open_ns: 185.0,
            closed_ns: 215.0,
            page_kib: 8,
            open_pages: 128,
        }
    }

    /// The GS320 (~330 ns memory plateau in Fig. 4).
    pub fn gs320() -> Self {
        LatencyMachine {
            name: "GS320/1.22GHz",
            hierarchy: HierarchyConfig::ev68(),
            open_ns: 330.0,
            closed_ns: 380.0,
            page_kib: 8,
            open_pages: 128,
        }
    }

    /// Measured dependent-load latency (ns) for one dataset size and stride.
    pub fn dependent_load_ns(&self, size: u64, stride: u64, max_loads: u64) -> f64 {
        let mut hierarchy = CacheHierarchy::new(self.hierarchy);
        let mut pages = OpenPageTable::new(self.page_kib, self.open_pages);
        let (open, closed) = (
            SimDuration::from_ns(self.open_ns),
            SimDuration::from_ns(self.closed_ns),
        );
        let chase = PointerChase::new(size, stride);
        let loads = chase.elements().clamp(1, max_loads);
        chase
            .run(
                &mut hierarchy,
                |addr| {
                    if pages.touch(pages.page_of(addr.get())) {
                        open
                    } else {
                        closed
                    }
                },
                loads,
            )
            .as_ns()
    }
}

/// The dataset sizes of Fig. 4 (4 KB … 128 MB).
pub fn fig04_sizes() -> Vec<u64> {
    (12..=27).map(|p| 1u64 << p).collect()
}

/// Reproduce Fig. 4: dependent-load latency vs. dataset size at a 64-byte
/// stride, on all three machines. `max_loads` caps the measured loads per
/// point (the full figure uses ~100k; tests pass less).
pub fn fig04(sizes: &[u64], max_loads: u64) -> Figure {
    let mut fig = Figure::new(
        "fig04",
        "Dependent load latency comparison",
        "dataset size (bytes)",
        "latency (ns)",
    );
    // Every (machine, size) point is an independent pure simulation, so the
    // whole grid fans out at once; `parallel_map` keeps input order, which
    // keeps the figure byte-identical to a sequential sweep.
    let machines = [
        LatencyMachine::gs1280(),
        LatencyMachine::es45(),
        LatencyMachine::gs320(),
    ];
    let grid: Vec<(LatencyMachine, u64)> = machines
        .iter()
        .flat_map(|&m| sizes.iter().map(move |&s| (m, s)))
        .collect();
    let latencies = parallel_map(grid, |(m, s)| m.dependent_load_ns(s, 64, max_loads));
    for (i, m) in machines.iter().enumerate() {
        let pts: Vec<(f64, f64)> = sizes
            .iter()
            .zip(&latencies[i * sizes.len()..])
            .map(|(&s, &ns)| (s as f64, ns))
            .collect();
        fig.series.push(Series::from_pairs(m.name, pts));
    }
    fig
}

/// Reproduce Fig. 5: the GS1280 latency surface over dataset size × stride.
/// Returns one series per stride (the figure's depth axis).
pub fn fig05(sizes: &[u64], strides: &[u64], max_loads: u64) -> Figure {
    let m = LatencyMachine::gs1280();
    let mut fig = Figure::new(
        "fig05",
        "GS1280 dependent load latency for various strides",
        "dataset size (bytes)",
        "latency (ns)",
    );
    // Flatten the stride × size surface into one ordered work list.
    let grid: Vec<(u64, u64)> = strides
        .iter()
        .flat_map(|&stride| {
            sizes
                .iter()
                .filter(move |&&s| s >= stride)
                .map(move |&s| (stride, s))
        })
        .collect();
    let latencies = parallel_map(grid.clone(), |(stride, s)| {
        m.dependent_load_ns(s, stride, max_loads)
    });
    for &stride in strides {
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .zip(&latencies)
            .filter(|((st, _), _)| *st == stride)
            .map(|(&(_, s), &ns)| (s as f64, ns))
            .collect();
        fig.series
            .push(Series::from_pairs(format!("stride {stride}B"), pts));
    }
    fig
}

/// Default Fig. 5 strides (4 B … 16 KB, the paper's depth axis).
pub fn fig05_strides() -> Vec<u64> {
    vec![4, 16, 64, 256, 1024, 4096, 16384]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_plateaus_match_paper() {
        // Check the three key bands of the figure with reduced sizes.
        let m1280 = LatencyMachine::gs1280();
        let m320 = LatencyMachine::gs320();
        let es45 = LatencyMachine::es45();
        // 64 KB..1.75 MB: GS1280's on-chip L2 (10.4) beats off-chip (24).
        let a = m1280.dependent_load_ns(512 * 1024, 64, 20_000);
        let b = m320.dependent_load_ns(512 * 1024, 64, 20_000);
        assert!((a - 10.4).abs() < 0.5, "GS1280 L2 {a}");
        assert!((b - 24.0).abs() < 0.5, "GS320 B-cache {b}");
        // 1.75..16 MB: GS320/ES45 hit cache, GS1280 goes to memory — the
        // band where the old machines win.
        let a = m1280.dependent_load_ns(8 << 20, 64, 20_000);
        let b = m320.dependent_load_ns(8 << 20, 64, 20_000);
        let c = es45.dependent_load_ns(8 << 20, 64, 20_000);
        assert!(a > 80.0, "GS1280 at 8MB {a}");
        assert!(b < 25.0 && c < 25.0, "old machines at 8MB {b} {c}");
        // >16 MB: GS1280 ~3.8x better than GS320 (32 MB point).
        let a = m1280.dependent_load_ns(32 << 20, 64, 20_000);
        let b = m320.dependent_load_ns(32 << 20, 64, 20_000);
        let ratio = b / a;
        assert!((3.2..=4.4).contains(&ratio), "32MB ratio {ratio}");
    }

    #[test]
    fn fig05_stride_raises_latency_toward_closed_page() {
        let m = LatencyMachine::gs1280();
        let small_stride = m.dependent_load_ns(8 << 20, 64, 20_000);
        let large_stride = m.dependent_load_ns(8 << 20, 16384, 20_000);
        assert!(
            (80.0..95.0).contains(&small_stride),
            "open-ish {small_stride}"
        );
        assert!(
            (120.0..135.0).contains(&large_stride),
            "closed {large_stride}"
        );
    }

    #[test]
    fn fig05_sub_line_strides_amortize() {
        let m = LatencyMachine::gs1280();
        let tiny = m.dependent_load_ns(4 << 20, 4, 30_000);
        assert!(tiny < 15.0, "stride-4 amortized {tiny}");
    }

    #[test]
    fn fig04_figure_shape() {
        let sizes: Vec<u64> = (12..=23).map(|p| 1u64 << p).collect();
        let fig = fig04(&sizes, 5_000);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), sizes.len());
            // Latency is monotone non-decreasing in dataset size.
            for w in s.points.windows(2) {
                assert!(w[1].y >= w[0].y - 1.0, "{}: {:?}", s.label, w);
            }
        }
    }
}
