//! The telemetry artifact: deterministic component counters and the
//! per-hop latency attribution behind the paper's load-to-use numbers.
//!
//! The paper explains the GS1280's latency advantage by decomposing
//! load-to-use into pipeline stages (router hops, wire flight, Zbox
//! queueing, open- vs closed-page DRAM). This experiment reproduces that
//! decomposition from inside the simulator: a healthy bisection campaign
//! runs instrumented ([`FaultCampaign::run_instrumented`]) at several
//! outstanding-request windows, and every picosecond of every read's
//! latency is charged to the stage that consumed it. The per-window
//! registries and breakdown tables are merged in input order, so the
//! report is byte-identical at any worker count.
//!
//! [`FaultCampaign::run_instrumented`]: alphasim_system::FaultCampaign::run_instrumented

use alphasim_kernel::par::parallel_map;
use alphasim_system::{gs1280_fault_campaign, CampaignPattern, FaultCampaignConfig, Gs1280};
use alphasim_telemetry::{BreakdownTable, Registry, TraceSink};
use serde_json::Value;
use std::collections::BTreeMap;

/// The outstanding-request window the Chrome trace records (the other
/// windows contribute counters only, keeping the trace file one campaign
/// wide).
pub const TRACED_WINDOW: usize = 4;

/// The windows the telemetry sweep visits: the serial case, the traced
/// default, and a saturating window.
pub fn telemetry_windows() -> Vec<usize> {
    vec![1, TRACED_WINDOW, 8]
}

/// The merged telemetry of the sweep: counters, the latency breakdown,
/// and (when requested) the Chrome trace of the [`TRACED_WINDOW`] run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Component counters, gauges, and histograms merged across windows.
    pub registry: Registry,
    /// Per-hop latency attribution merged across windows.
    pub breakdown: BreakdownTable,
    /// Chrome-trace sink of the traced window, when tracing was on.
    pub trace: Option<TraceSink>,
}

impl TelemetryReport {
    /// The JSON artifact (`results/telemetry.json`). The trace is not
    /// embedded — it is its own file, written by `reproduce --trace`.
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("id".to_string(), Value::String("telemetry".to_string()));
        root.insert("breakdown".to_string(), self.breakdown.to_json());
        root.insert("registry".to_string(), self.registry.to_json());
        Value::Object(root)
    }

    /// Plain-text rendering: the breakdown table plus the raw registry.
    pub fn to_text(&self) -> String {
        let mut out =
            String::from("telemetry — component counters and per-hop latency attribution\n\n");
        out.push_str(&self.breakdown.to_text());
        out.push_str("\nregistry:\n");
        out.push_str(&serde_json::to_string_pretty(&self.registry.to_json()).unwrap_or_default());
        out.push('\n');
        out
    }
}

/// Run the telemetry sweep on a healthy `cpus`-CPU GS1280: one
/// instrumented bisection campaign per window in [`telemetry_windows`],
/// fanned out via [`parallel_map`] and merged in input order.
pub fn telemetry_report(cpus: usize, requests_per_cpu: usize, trace: bool) -> TelemetryReport {
    let runs = parallel_map(telemetry_windows(), move |outstanding| {
        let machine = Gs1280::builder().cpus(cpus).build();
        let cfg = FaultCampaignConfig {
            outstanding,
            requests_per_cpu,
            pattern: CampaignPattern::Bisection,
            // Pinned engine shape: with the knobs fixed here (instead of
            // inherited from `--shards`/`--threads`), the registry carries
            // `engine.shards`/`engine.threads` and the per-shard
            // `engine.shardNN.peak_queue_depth` gauges, making
            // `results/telemetry.json` the authoritative record of how it
            // was produced — and still byte-identical at any CLI setting.
            shards: 2,
            threads: 1,
            ..Default::default()
        };
        let want_trace = trace && outstanding == TRACED_WINDOW;
        gs1280_fault_campaign(&machine)
            .run_instrumented(&cfg, want_trace)
            .1
    });
    let mut report = TelemetryReport::default();
    for t in runs {
        report.registry.merge(&t.registry);
        report.breakdown.merge(&t.breakdown);
        if t.trace.is_some() {
            report.trace = t.trace;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_kernel::par::set_jobs;

    #[test]
    fn healthy_report_attributes_every_picosecond() {
        let r = telemetry_report(16, 10, false);
        let total: u64 = telemetry_windows().iter().map(|_| 16u64 * 10).sum();
        assert_eq!(r.breakdown.transactions(), total);
        assert_eq!(r.breakdown.charged_ps(), r.breakdown.end_to_end_ps());
        assert_eq!(r.breakdown.stage_ps("unattributed (retry / backoff)"), 0);
        assert_eq!(r.registry.counter("coherence.completed"), total);
        assert!(r.trace.is_none());
        // The pinned engine shape makes the artifact authoritative: shard
        // count, thread count, and per-shard queue peaks live in the same
        // registry as the machine counters.
        assert_eq!(r.registry.gauge("engine.shards"), 2);
        assert_eq!(r.registry.gauge("engine.threads"), 1);
        assert!(r.registry.gauge("engine.shard00.peak_queue_depth") > 0);
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        // Satellite: registry/breakdown merges are commutative only across
        // *ordering of arrival*, never across membership — parallel_map
        // returns input order, so 1, 2, and 8 workers must render the
        // identical report.
        let render = || {
            let r = telemetry_report(16, 8, true);
            let json = serde_json::to_string_pretty(&r.to_json()).expect("serialises");
            let text = r.to_text();
            let trace = r.trace.expect("traced window present").to_json_string();
            (json, text, trace)
        };
        set_jobs(1);
        let sequential = render();
        set_jobs(2);
        let two = render();
        set_jobs(8);
        let eight = render();
        set_jobs(0);
        assert_eq!(sequential, two, "2-worker report diverged");
        assert_eq!(sequential, eight, "8-worker report diverged");
    }

    #[test]
    fn traced_report_carries_exactly_one_campaign_trace() {
        let r = telemetry_report(16, 5, true);
        let trace = r.trace.expect("tracing requested");
        assert!(!trace.is_empty());
        // The untraced flavour of the same sweep yields the same counters.
        let untraced = telemetry_report(16, 5, false);
        assert_eq!(r.registry, untraced.registry);
        assert_eq!(r.breakdown, untraced.breakdown);
    }
}
