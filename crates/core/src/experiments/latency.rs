//! Figs. 12–14: local and remote memory latency.

use alphasim_system::{Gs1280, Gs320};
use alphasim_topology::NodeId;

use crate::types::{Figure, Series};

/// Reproduce Fig. 12: read latency from CPU 0 to every CPU on 16-CPU
/// machines, GS1280 vs GS320, plus the average as a final point
/// (x = 16).
pub fn fig12() -> Figure {
    let g = Gs1280::builder().cpus(16).build();
    let q = Gs320::new(16);
    let mut fig = Figure::new(
        "fig12",
        "GS1280 vs GS320 latency: 16P (read-clean, 0 -> k)",
        "target CPU k (16 = average)",
        "latency (ns)",
    );
    let mut gs1280: Vec<(f64, f64)> = (0..16)
        .map(|k| {
            (
                k as f64,
                g.read_clean(NodeId::new(0), NodeId::new(k)).as_ns(),
            )
        })
        .collect();
    gs1280.push((16.0, g.average_latency_from0().as_ns()));
    let mut gs320: Vec<(f64, f64)> = (0..16)
        .map(|k| {
            (
                k as f64,
                q.read_clean(NodeId::new(0), NodeId::new(k)).as_ns(),
            )
        })
        .collect();
    gs320.push((16.0, q.average_latency_from0().as_ns()));
    fig.series
        .push(Series::from_pairs("GS1280/1.15GHz", gs1280));
    fig.series.push(Series::from_pairs("GS320/1.2GHz", gs320));
    fig
}

/// Fig. 12's headline ratios: `(read_clean_avg_ratio, read_dirty_avg_ratio)`
/// on 16 CPUs (the paper reports 4× and 6.6×).
pub fn fig12_ratios() -> (f64, f64) {
    let g = Gs1280::builder().cpus(16).build();
    let q = Gs320::new(16);
    let clean = q.average_latency_from0().as_ns() / g.average_latency_from0().as_ns();
    let dirty = q.average_dirty_latency().as_ns() / g.average_dirty_latency().as_ns();
    (clean, dirty)
}

/// Reproduce Fig. 13: the 4×4 read-clean latency grid from node 0, in ns.
pub fn fig13() -> Vec<Vec<f64>> {
    Gs1280::builder()
        .cpus(16)
        .build()
        .latency_grid(NodeId::new(0))
}

/// The paper's measured Fig. 13 grid, for comparison.
pub const FIG13_PAPER: [[f64; 4]; 4] = [
    [83.0, 145.0, 186.0, 154.0],
    [139.0, 175.0, 221.0, 182.0],
    [181.0, 221.0, 259.0, 222.0],
    [154.0, 191.0, 235.0, 195.0],
];

/// Reproduce Fig. 14: average load-to-use latency over all pairs as the
/// machine grows (4–64 CPUs GS1280; 4–32 GS320).
pub fn fig14() -> Figure {
    let mut fig = Figure::new(
        "fig14",
        "Average load-to-use latency",
        "# CPUs",
        "latency (ns)",
    );
    fig.series.push(Series::from_pairs(
        "GS1280/1.15GHz",
        [4usize, 8, 16, 32, 64].map(|n| {
            (
                n as f64,
                Gs1280::builder()
                    .cpus(n)
                    .build()
                    .average_latency_all_pairs()
                    .as_ns(),
            )
        }),
    ));
    fig.series.push(Series::from_pairs(
        "GS320/1.2GHz",
        [4usize, 8, 16, 32].map(|n| (n as f64, Gs320::new(n).average_latency_all_pairs().as_ns())),
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_ratio_bands() {
        let (clean, dirty) = fig12_ratios();
        // Paper: 4x average advantage, 6.6x for read-dirty.
        assert!((3.0..=4.6).contains(&clean), "clean ratio {clean}");
        assert!((5.0..=8.0).contains(&dirty), "dirty ratio {dirty}");
        assert!(dirty > clean, "dirty advantage must exceed clean");
    }

    #[test]
    fn fig13_grid_matches_paper_within_6_percent() {
        let grid = fig13();
        for y in 0..4 {
            for x in 0..4 {
                let got = grid[y][x];
                let want = FIG13_PAPER[y][x];
                assert!(
                    (got - want).abs() / want < 0.06,
                    "({x},{y}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fig14_gs1280_grows_gently_gs320_stays_high() {
        let fig = fig14();
        let g = fig.series_like("GS1280").unwrap();
        let q = fig.series_like("GS320").unwrap();
        // GS1280 grows with diameter but stays under GS320 everywhere.
        for p in &g.points {
            if let Some(qy) = q.y_at(p.x) {
                assert!(qy > 2.0 * p.y, "at {} CPUs: {} vs {}", p.x, p.y, qy);
            }
        }
        assert!(g.y_at(64.0).unwrap() < 300.0);
        assert!(q.y_at(32.0).unwrap() > 600.0);
    }

    #[test]
    fn fig12_series_shapes() {
        let fig = fig12();
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.points.len(), 17);
        }
        // GS320 shows exactly two levels among targets 0..16.
        let q = fig.series_like("GS320").unwrap();
        let mut levels: Vec<u64> = q.points[..16].iter().map(|p| p.y as u64).collect();
        levels.sort_unstable();
        levels.dedup();
        assert_eq!(levels.len(), 2, "{levels:?}");
    }
}
