//! One module per group of reproduced figures; see DESIGN.md's experiment
//! index for the full mapping.

pub mod ablation;
pub mod apps;
pub mod chaos;
pub mod latency;
pub mod memory;
pub mod network;
pub mod resilience;
pub mod spec;
pub mod stream;
pub mod summary;
pub mod telemetry;
pub mod timeline;
