//! Resilience sweep: achieved bisection bandwidth and latency as torus
//! links fail mid-run.
//!
//! The GS1280's adaptive router is the paper's answer to fabric wounds
//! (§2's "the router supports … reconfiguration around failed links").
//! This experiment quantifies that promise with live fault injection:
//! every CPU streams reads across the vertical bisection while a
//! [`FaultPlan`] cuts 0→k of the bisection-crossing links out from under
//! the traffic. Lost packets are recovered by the coherence
//! timeout-and-retry path; the curve reports what survives — delivered
//! bisection bandwidth, mean and p99 read latency, and the retry bill —
//! per failure count.

use alphasim_coherence::RetryPolicy;
use alphasim_kernel::par::parallel_map;
use alphasim_kernel::{FaultKind, FaultPlan, SimDuration, SimTime};
use alphasim_system::Gs1280;
use alphasim_system::{
    gs1280_fault_campaign, CampaignPattern, CampaignResult, CampaignTelemetry, FabricTopo,
    FaultCampaign, FaultCampaignConfig,
};
use alphasim_telemetry::Registry;
use alphasim_topology::graph::DistanceMatrix;
use alphasim_topology::{Degraded, NodeId, Torus2D};

use crate::types::{Figure, Series};

/// The vertical-bisection links of a `cols x rows` torus, one per row:
/// the eastward link from column `cols/2 - 1` to `cols/2`. Cutting up to
/// `rows - 1` of them leaves the torus connected (edge connectivity 4) but
/// narrows the bisection the traffic must cross.
pub fn bisection_cuts(cpus: usize, count: usize) -> Vec<(usize, usize)> {
    let torus = Torus2D::for_cpus(cpus);
    let (cols, rows) = (torus.cols(), torus.rows());
    assert!(
        count < rows,
        "cutting every row's bisection link would sever the halves"
    );
    (0..count)
        .map(|row| {
            let west = row * cols + (cols / 2 - 1);
            (west, west + 1)
        })
        .collect()
}

/// Sanity-check a cut set before simulating it: the links must exist and
/// the wounded torus must stay connected. Panics loudly otherwise — a
/// partitioned sweep point would silently report zeros.
fn assert_survivable(cpus: usize, cuts: &[(usize, usize)]) {
    let torus = Torus2D::for_cpus(cpus);
    let failed: Vec<(NodeId, NodeId)> = cuts
        .iter()
        .map(|&(a, b)| (NodeId::new(a), NodeId::new(b)))
        .collect();
    let wounded = Degraded::try_new(torus, &failed).expect("cut links exist");
    let dist = DistanceMatrix::compute(&wounded);
    assert!(
        dist.is_connected(),
        "cut set {cuts:?} partitions the {cpus}-node torus"
    );
}

/// The campaign and its configuration for one sweep point, shared by the
/// plain and instrumented entry points.
fn campaign_setup(
    cpus: usize,
    failures: usize,
    requests_per_cpu: usize,
) -> (FaultCampaign<FabricTopo>, FaultCampaignConfig) {
    let cuts = bisection_cuts(cpus, failures);
    assert_survivable(cpus, &cuts);
    let mut plan = FaultPlan::new();
    for (i, &(a, b)) in cuts.iter().enumerate() {
        // Stagger the strikes through the early run, so each lands on
        // live traffic and the router re-adapts repeatedly.
        let at = SimTime::ZERO + SimDuration::from_us(2.0) + SimDuration::from_us(1.0) * i as u64;
        plan.push(at, FaultKind::LinkDown { a, b });
    }
    let machine = Gs1280::builder().cpus(cpus).build();
    let cfg = FaultCampaignConfig {
        outstanding: 8,
        requests_per_cpu,
        pattern: CampaignPattern::Bisection,
        plan,
        // Packets lost with a wire are retried immediately from the drop
        // report, so the timeout is purely a lost-response safety net. Keep
        // it well above the wounded machine's congested tail latency —
        // a tight timeout reads congestion as loss and the spurious
        // retries feed the congestion they misdiagnosed.
        retry: RetryPolicy {
            timeout: SimDuration::from_us(50.0),
            backoff_base: SimDuration::from_us(2.0),
            backoff_cap: SimDuration::from_us(32.0),
            max_retries: 6,
        },
        watchdog_window: SimDuration::from_us(250.0),
        ..Default::default()
    };
    (gs1280_fault_campaign(&machine), cfg)
}

/// One sweep point: run the bisection fault campaign on a `cpus`-node
/// GS1280 with `failures` bisection links dying mid-run.
pub fn campaign_at(cpus: usize, failures: usize, requests_per_cpu: usize) -> CampaignResult {
    let (campaign, cfg) = campaign_setup(cpus, failures, requests_per_cpu);
    campaign.run(&cfg)
}

/// [`campaign_at`] with telemetry collection (counters and the per-hop
/// latency breakdown; no trace — sweeps with many points would produce
/// one file each).
pub fn campaign_at_instrumented(
    cpus: usize,
    failures: usize,
    requests_per_cpu: usize,
) -> (CampaignResult, CampaignTelemetry) {
    let (campaign, cfg) = campaign_setup(cpus, failures, requests_per_cpu);
    campaign.run_instrumented(&cfg, false)
}

/// The resilience artifact: bisection bandwidth, latency, and retries vs
/// failed-link count, each sweep point an independent deterministic
/// campaign (fanned out via [`parallel_map`], collected in order).
pub fn resilience(cpus: usize, max_failures: usize, requests_per_cpu: usize) -> Figure {
    let results = parallel_map((0..=max_failures).collect::<Vec<_>>(), move |k| {
        (k, campaign_at(cpus, k, requests_per_cpu))
    });
    resilience_figure(cpus, &results)
}

/// [`resilience`] plus the sweep's merged telemetry registry: each point
/// runs instrumented and the per-point registries are merged in input
/// order, so the result is worker-count invariant. The figure itself is
/// identical to [`resilience`]'s (instrumentation never perturbs the
/// simulation).
pub fn resilience_with_telemetry(
    cpus: usize,
    max_failures: usize,
    requests_per_cpu: usize,
) -> (Figure, Registry) {
    let results = parallel_map((0..=max_failures).collect::<Vec<_>>(), move |k| {
        let (r, t) = campaign_at_instrumented(cpus, k, requests_per_cpu);
        (k, r, t)
    });
    let mut registry = Registry::default();
    for (_, _, t) in &results {
        registry.merge(&t.registry);
    }
    let points: Vec<(usize, CampaignResult)> =
        results.into_iter().map(|(k, r, _)| (k, r)).collect();
    (resilience_figure(cpus, &points), registry)
}

fn resilience_figure(cpus: usize, results: &[(usize, CampaignResult)]) -> Figure {
    let pairs = |f: &dyn Fn(&CampaignResult) -> f64| -> Vec<(f64, f64)> {
        results.iter().map(|(k, r)| (*k as f64, f(r))).collect()
    };
    Figure::new(
        "resilience",
        format!("Resilience sweep: bisection traffic on {cpus}P with links failing mid-run"),
        "failed bisection links",
        "GB/s | ns | count",
    )
    .with_series(Series::from_pairs(
        "achieved bisection bandwidth (GB/s)",
        pairs(&|r| r.steady_gbps),
    ))
    .with_series(Series::from_pairs(
        "end-to-end delivered incl. recovery tail (GB/s)",
        pairs(&|r| r.delivered_gbps),
    ))
    .with_series(Series::from_pairs(
        "mean read latency (ns)",
        pairs(&|r| r.mean_latency.as_ns()),
    ))
    .with_series(Series::from_pairs(
        "p99 read latency (ns)",
        pairs(&|r| r.p99_latency.as_ns()),
    ))
    .with_series(Series::from_pairs("retries", pairs(&|r| r.retries as f64)))
    .with_series(Series::from_pairs(
        "messages lost to dead links",
        pairs(&|r| r.dropped as f64),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_cuts_are_distinct_rows_and_survivable() {
        let cuts = bisection_cuts(64, 6);
        assert_eq!(cuts.len(), 6);
        // One cut per row, all crossing the same column boundary.
        for (row, &(a, b)) in cuts.iter().enumerate() {
            assert_eq!(a, row * 8 + 3);
            assert_eq!(b, row * 8 + 4);
        }
        assert_survivable(64, &cuts);
        assert_survivable(16, &bisection_cuts(16, 2));
    }

    #[test]
    #[should_panic(expected = "sever the halves")]
    fn cutting_every_row_is_rejected() {
        bisection_cuts(16, 4);
    }

    #[test]
    fn sweep_scales_from_4x4_to_16x16() {
        // The machine size is a real parameter: the same campaign drives
        // the smallest torus the paper ships and the projected 16x16
        // build, with the cut column scaling along.
        let cuts = bisection_cuts(256, 3);
        for (row, &(a, b)) in cuts.iter().enumerate() {
            assert_eq!(a, row * 16 + 7);
            assert_eq!(b, row * 16 + 8);
        }
        assert_survivable(256, &cuts);
        let small = campaign_at(16, 1, 12);
        let large = campaign_at(256, 1, 4);
        assert_eq!(small.completed + small.poisoned.len() as u64, 16 * 12);
        assert_eq!(
            large.completed + large.poisoned.len() as u64,
            256 * 4,
            "every read on the 16x16 machine completes or poisons"
        );
        assert!(large.delivered_gbps > 0.0);
        // Longer average routes on the big torus cost latency.
        assert!(large.mean_latency > small.mean_latency);
    }

    #[test]
    fn campaign_degrades_gracefully_with_zero_hung_transactions() {
        let healthy = campaign_at(16, 0, 40);
        let wounded = campaign_at(16, 2, 40);
        assert_eq!(
            healthy.completed + healthy.poisoned.len() as u64,
            16 * 40,
            "healthy run completes everything"
        );
        assert_eq!(
            wounded.completed + wounded.poisoned.len() as u64,
            16 * 40,
            "wounded run: every read completes or is poisoned with a cause"
        );
        assert!(healthy.poisoned.is_empty());
        assert_eq!(healthy.retries, 0);
        // Half the bisection is gone: bandwidth cannot improve, and the
        // detours cost latency.
        assert!(wounded.delivered_gbps <= healthy.delivered_gbps * 1.02);
        assert!(wounded.p99_latency >= healthy.p99_latency);
    }

    #[test]
    fn instrumented_sweep_matches_plain_figure_and_merges_counters() {
        let plain = resilience(16, 1, 15);
        let (fig, registry) = resilience_with_telemetry(16, 1, 15);
        assert_eq!(plain, fig, "telemetry must not perturb the figure");
        // Two sweep points of 16 CPUs x 15 reads each, merged.
        assert_eq!(
            registry.counter("coherence.completed") + registry.counter("campaign.poisoned"),
            2 * 16 * 15
        );
        assert!(registry.counter("zbox.accesses") >= registry.counter("coherence.completed"));
    }

    #[test]
    fn figure_has_every_series_over_the_sweep() {
        let fig = resilience(16, 2, 15);
        assert_eq!(fig.id, "resilience");
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert_eq!(s.points.len(), 3, "{}", s.label);
        }
        let bw = fig.series_like("bisection bandwidth").unwrap();
        assert!(bw.y_at(0.0).unwrap() > 0.0);
        assert!(bw.y_at(2.0).unwrap() <= bw.y_at(0.0).unwrap() * 1.02);
    }
}
