//! Chaos campaign artifact: randomized fault-schedule fuzzing with the
//! runtime invariant monitors armed.
//!
//! Beyond the paper's figures (DESIGN.md §2): each trial draws a seeded
//! random fault schedule mixing every [`alphasim_kernel::FaultKind`] —
//! cuts, repairs, degradations, transient flit corruption, drains,
//! router brownouts, RDRAM channel churn — and drives the closed-loop
//! GS1280 fault campaign under it with the always-on monitors checking
//! zero hung transactions, the retry bound, poison accounting, route-table
//! consistency, the conservative-lookahead oracle, and telemetry balance.
//! The artifact records what each schedule did to the machine; the
//! experiment *fails loudly* if any monitor fires, because a violation
//! here is a simulator bug (the chaos engine shrinks it to a minimal
//! reproducer for the corpus — see `alphasim_system::chaos`).

use alphasim_system::chaos::{run_chaos, ChaosOptions};
use alphasim_system::ChaosReport;

use crate::types::{Figure, Series};

/// Fault kinds the schedule distribution can draw; a full-size run must
/// strike every one of them.
pub const ALL_KIND_NAMES: [&str; 9] = [
    "LinkDown",
    "LinkUp",
    "LinkDegrade",
    "FlitCorrupt",
    "NodeDrain",
    "NodeUndrain",
    "RouterPause",
    "ChannelDown",
    "ChannelUp",
];

/// Run `trials` randomized fault schedules on the 16P GS1280 and render
/// the campaign as a figure.
///
/// # Panics
///
/// Panics if any invariant monitor fires (with the violating seeds — the
/// chaos engine has already shrunk them), or if a run of 50+ trials fails
/// to strike every fault kind (the distribution or generator regressed).
pub fn chaos(trials: usize) -> Figure {
    let report = run_chaos(&ChaosOptions {
        trials,
        ..ChaosOptions::default()
    });
    assert!(
        report.reproducers.is_empty(),
        "chaos monitors fired on seeds {:?}: {:?}",
        report.violating_seeds(),
        report
            .reproducers
            .iter()
            .map(|r| (&r.name, &r.violations))
            .collect::<Vec<_>>()
    );
    let struck = report.kinds_struck();
    if trials >= 50 {
        for name in ALL_KIND_NAMES {
            assert!(
                struck.contains(name),
                "{trials} trials never struck {name}: the schedule distribution regressed"
            );
        }
    }
    chaos_figure(trials, &report)
}

fn chaos_figure(trials: usize, report: &ChaosReport) -> Figure {
    let pairs = |f: &dyn Fn(&alphasim_system::ChaosTrial) -> f64| -> Vec<(f64, f64)> {
        report
            .trials
            .iter()
            .enumerate()
            .map(|(i, t)| (i as f64, f(t)))
            .collect()
    };
    let kinds = report.kinds_struck();
    Figure::new(
        "chaos",
        format!(
            "Chaos campaign: {trials} randomized fault schedules on 16P, \
             {}/{} fault kinds struck, zero invariant violations",
            kinds.len(),
            ALL_KIND_NAMES.len()
        ),
        "trial",
        "count | ns",
    )
    .with_series(Series::from_pairs(
        "completed reads",
        pairs(&|t| t.result.completed as f64),
    ))
    .with_series(Series::from_pairs(
        "poisoned reads",
        pairs(&|t| t.result.poisoned.len() as f64),
    ))
    .with_series(Series::from_pairs(
        "faults struck",
        pairs(&|t| t.faults_applied.len() as f64),
    ))
    .with_series(Series::from_pairs(
        "mean read latency (ns)",
        pairs(&|t| t.result.mean_latency.as_ns()),
    ))
    .with_series(Series::from_pairs(
        "retries",
        pairs(&|t| t.result.retries as f64),
    ))
    .with_series(Series::from_pairs(
        "CRC retransmits",
        pairs(&|t| t.result.crc_retransmits as f64),
    ))
    .with_series(Series::from_pairs(
        "event-queue shards",
        pairs(&|t| t.shards as f64),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_renders_every_series_and_stays_clean() {
        let fig = chaos(4);
        assert_eq!(fig.id, "chaos");
        assert_eq!(fig.series.len(), 7);
        for s in &fig.series {
            assert_eq!(s.points.len(), 4, "{}", s.label);
        }
        let completed = fig.series_like("completed reads").unwrap();
        assert!(completed.y_at(0.0).unwrap() > 0.0);
        // Trials alternate 1 and 2 event-queue shards.
        let shards = fig.series_like("event-queue shards").unwrap();
        assert_eq!(shards.y_at(0.0), Some(1.0));
        assert_eq!(shards.y_at(1.0), Some(2.0));
    }

    #[test]
    fn kind_name_table_matches_the_kernel() {
        use alphasim_kernel::FaultKind;
        use alphasim_system::chaos::kind_name;
        let samples = [
            FaultKind::LinkDown { a: 0, b: 1 },
            FaultKind::LinkUp { a: 0, b: 1 },
            FaultKind::LinkDegrade { a: 0, b: 1 },
            FaultKind::FlitCorrupt { from: 0, to: 1 },
            FaultKind::NodeDrain { node: 0 },
            FaultKind::NodeUndrain { node: 0 },
            FaultKind::RouterPause { node: 0, ps: 1 },
            FaultKind::ChannelDown { node: 0 },
            FaultKind::ChannelUp { node: 0 },
        ];
        for (kind, name) in samples.iter().zip(ALL_KIND_NAMES) {
            assert_eq!(kind_name(*kind), name);
        }
    }
}
