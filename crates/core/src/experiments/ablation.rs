//! Ablation studies over the design choices the paper highlights:
//! adaptive vs. deterministic routing, the dual-controller design, and the
//! class-priority virtual channels. Not figures from the paper, but the
//! "what if the 21364 hadn't done this" questions its §2 invites.

use alphasim_kernel::SimTime;
use alphasim_net::MessageClass;
use alphasim_system::loadtest::{gs1280_load_test, LoadTestConfig};
use alphasim_system::Gs1280;
use alphasim_topology::NodeId;

use crate::types::{RatioRow, Table};

/// Adaptive vs. deterministic routing under identical random load: inject
/// the same message set as coherence-class (adaptive) and as I/O-class
/// (deterministic, first-minimal-port) traffic and compare drain times.
/// Returns `(adaptive_ns, deterministic_ns)`.
pub fn adaptive_vs_deterministic(cpus: usize, messages: usize) -> (f64, f64) {
    let run = |class: MessageClass| {
        let machine = Gs1280::builder().cpus(cpus).build();
        let mut net = machine.network();
        let mut rng = alphasim_kernel::DetRng::seeded(0xAB1A);
        for i in 0..messages {
            let src = rng.index(cpus);
            let dst = rng.index_excluding(cpus, src);
            net.send(
                SimTime::ZERO,
                NodeId::new(src),
                NodeId::new(dst),
                class,
                80,
                i as u64,
            );
        }
        net.drain();
        net.now().since(SimTime::ZERO).as_ns()
    };
    (run(MessageClass::Request), run(MessageClass::Io))
}

/// The protocol-traffic breakdown of a load-test run: what fraction of
/// fabric bytes each message class carries. Block responses dominate —
/// which is why the 21364 gives them drain priority.
pub fn class_traffic_shares(cpus: usize, requests_per_cpu: usize) -> Vec<(String, f64)> {
    let machine = Gs1280::builder().cpus(cpus).build();
    let mut net = machine.network();
    let mut rng = alphasim_kernel::DetRng::seeded(3);
    // Emulate the load test's request/response pairs directly.
    for i in 0..cpus * requests_per_cpu {
        let src = rng.index(cpus);
        let dst = rng.index_excluding(cpus, src);
        net.send(
            SimTime::ZERO,
            NodeId::new(src),
            NodeId::new(dst),
            MessageClass::Request,
            16,
            i as u64,
        );
        net.send(
            SimTime::ZERO,
            NodeId::new(dst),
            NodeId::new(src),
            MessageClass::BlockResponse,
            80,
            (i + 1_000_000) as u64,
        );
    }
    net.drain();
    let totals = net.class_byte_totals();
    let all: u64 = totals.iter().map(|&(_, b)| b).sum();
    totals
        .iter()
        .map(|&(c, b)| (format!("{c:?}"), b as f64 / all.max(1) as f64))
        .collect()
}

/// Single- vs dual-controller GS1280 (each CPU "can be configured with 0,
/// 1, or 2 memory controllers", §3.1): halving controller bandwidth halves
/// hot-spot service capacity.
pub fn controllers_ablation(requests_per_cpu: usize) -> Table {
    use alphasim_mem::ZboxConfig;
    use alphasim_system::loadtest::{LoadTest, TrafficPattern};

    let run = |controllers: f64| {
        let machine = Gs1280::builder().cpus(16).build();
        let calib = machine.calibration();
        let zbox = ZboxConfig {
            bandwidth_gbps: calib.zbox.bandwidth_gbps * controllers,
            ..calib.zbox
        };
        LoadTest::new(
            machine.network(),
            (0..16).map(NodeId::new).collect(),
            zbox,
            calib.local_fixed,
            calib.remote_fixed,
        )
        .run(&LoadTestConfig {
            outstanding: 12,
            requests_per_cpu,
            pattern: TrafficPattern::HotSpot(0),
            ..Default::default()
        })
        .delivered_gbps
    };
    let two = run(2.0);
    let one = run(1.0);
    Table {
        id: "ablation-zbox".into(),
        title: "Hot-spot bandwidth vs. memory controllers per CPU".into(),
        rows: vec![
            RatioRow {
                label: "2 controllers (GB/s)".into(),
                computed: two,
                paper: None,
            },
            RatioRow {
                label: "1 controller (GB/s)".into(),
                computed: one,
                paper: None,
            },
            RatioRow {
                label: "2-controller speedup".into(),
                computed: two / one,
                paper: None,
            },
        ],
    }
}

/// Window scaling on one machine size — the raw data behind one Fig. 15
/// curve, exposed for the ablation benches.
pub fn window_sweep(cpus: usize, windows: &[usize], requests_per_cpu: usize) -> Vec<(f64, f64)> {
    let machine = Gs1280::builder().cpus(cpus).build();
    windows
        .iter()
        .map(|&w| {
            let r = gs1280_load_test(&machine).run(&LoadTestConfig {
                outstanding: w,
                requests_per_cpu,
                ..Default::default()
            });
            (r.delivered_gbps, r.mean_latency.as_ns())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_routing_drains_no_slower() {
        let (adaptive, deterministic) = adaptive_vs_deterministic(16, 400);
        assert!(
            adaptive <= deterministic * 1.02,
            "adaptive {adaptive} vs deterministic {deterministic}"
        );
        // Under this bursty all-at-once load the spread matters.
        assert!(
            adaptive < deterministic,
            "adaptive should strictly win: {adaptive} vs {deterministic}"
        );
    }

    #[test]
    fn responses_carry_most_bytes() {
        let shares = class_traffic_shares(16, 30);
        let response = shares.iter().find(|(n, _)| n == "BlockResponse").unwrap().1;
        let request = shares.iter().find(|(n, _)| n == "Request").unwrap().1;
        assert!(response > 0.6, "response share {response}");
        assert!(request < 0.4, "request share {request}");
        let total: f64 = shares.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dual_controllers_raise_hot_spot_throughput() {
        let t = controllers_ablation(40);
        let speedup = t.rows[2].computed;
        assert!(
            speedup > 1.3,
            "dual controllers should help a hot spot: {speedup}"
        );
    }

    #[test]
    fn window_sweep_is_monotone_in_bandwidth_until_saturation() {
        let sweep = window_sweep(16, &[1, 2, 4, 8], 40);
        for w in sweep.windows(2) {
            assert!(w[1].0 >= w[0].0 * 0.95, "{sweep:?}");
            assert!(w[1].1 >= w[0].1 * 0.95, "latency non-decreasing");
        }
    }
}

/// Failure injection: rerun the uniform load test with torus links cut and
/// report delivered bandwidth per failure count. The adaptive router
/// detours around the wounds; bandwidth degrades gracefully rather than
/// collapsing.
pub fn link_failure_resilience(
    cpus: usize,
    failures: &[usize],
    requests_per_cpu: usize,
) -> Vec<(usize, f64)> {
    use alphasim_mem::ZboxConfig;
    use alphasim_system::loadtest::LoadTest;

    let machine = Gs1280::builder().cpus(cpus).build();
    let calib = machine.calibration();
    let zbox = ZboxConfig {
        bandwidth_gbps: calib.zbox.bandwidth_gbps * 2.0,
        ..calib.zbox
    };
    failures
        .iter()
        .map(|&n| {
            // Fail the first `n` eastward links of row 0 (deterministic,
            // disjoint cuts that leave the torus connected).
            let cuts: Vec<(NodeId, NodeId)> = (0..n)
                .map(|i| {
                    let col = 2 * i; // skip alternate links so cuts stay disjoint
                    let cols = match cpus {
                        16 => 4,
                        32 | 64 => 8,
                        _ => 4,
                    };
                    (NodeId::new(col % cols), NodeId::new((col + 1) % cols))
                })
                .collect();
            let net = machine.degraded_network(&cuts);
            let r = LoadTest::new(
                net,
                (0..cpus).map(NodeId::new).collect(),
                zbox,
                calib.local_fixed,
                calib.remote_fixed,
            )
            .run(&LoadTestConfig {
                outstanding: 12,
                requests_per_cpu,
                ..Default::default()
            });
            (n, r.delivered_gbps)
        })
        .collect()
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    #[test]
    fn bandwidth_degrades_gracefully_under_link_failures() {
        let sweep = link_failure_resilience(16, &[0, 1, 2], 40);
        let healthy = sweep[0].1;
        for &(n, bw) in &sweep[1..] {
            assert!(bw > 0.6 * healthy, "{n} failures: {bw} vs {healthy}");
            assert!(bw <= healthy * 1.02, "{n} failures cannot help");
        }
    }
}
