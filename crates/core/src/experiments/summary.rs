//! Table 1 and Fig. 28: the analytic shuffle gains and the machine-level
//! summary comparison.

use alphasim_topology::table1::{self, TABLE1_PAPER, TABLE1_SHAPES};
use alphasim_workloads::spec::{self, MachinePerf, PhasePattern, SpecProfile, Suite};

use crate::experiments::apps::{gups_mups_gs1280, gups_mups_gs320};
use crate::experiments::spec::suite_rate;
use crate::types::{RatioRow, Table};

/// Reproduce Table 1: shuffle-vs-torus gains for the six machine shapes,
/// three metrics each (computed by graph analysis of the twisted-torus
/// reconstruction; see `alphasim_topology::table1` for fidelity notes).
pub fn table1() -> Table {
    let mut rows = Vec::new();
    for (gains, (&(c, r), &(pa, pw, pb))) in table1::table1()
        .iter()
        .zip(TABLE1_SHAPES.iter().zip(TABLE1_PAPER.iter()))
    {
        rows.push(RatioRow {
            label: format!("{c}x{r} aver. latency gain"),
            computed: gains.avg_latency_gain,
            paper: Some(pa),
        });
        rows.push(RatioRow {
            label: format!("{c}x{r} worst latency gain"),
            computed: gains.worst_latency_gain,
            paper: Some(pw),
        });
        rows.push(RatioRow {
            label: format!("{c}x{r} bisection width gain"),
            computed: gains.bisection_gain,
            paper: Some(pb),
        });
    }
    Table {
        id: "table1".into(),
        title: "Performance gains from shuffle".into(),
        rows,
    }
}

/// Proxy profiles for the ISV applications and commercial workloads of
/// Fig. 28. Parameters classify each code the way §5/§7 do (how much it
/// stresses memory vs. caches); they are documented reconstructions, not
/// measurements.
fn isv_proxies() -> Vec<(&'static str, SpecProfile, f64)> {
    const MB: u64 = 1024 * 1024;
    let p = |name, base_ipc, refs, ws, overlap| SpecProfile {
        name,
        suite: Suite::Fp,
        base_ipc,
        refs_per_kinst: refs,
        working_set: ws,
        overlap,
        phase: PhasePattern::Flat,
    };
    vec![
        // (label, profile, paper ratio from Fig. 28)
        (
            "SAP SD Transaction Processing (32P)",
            p("sap", 1.1, 5.0, 200 * MB, 0.6),
            1.5,
        ),
        (
            "Decision Support internal (32P)",
            p("ds", 1.1, 4.0, 150 * MB, 0.5),
            1.35,
        ),
        (
            "Nastran internal xlem (4P)",
            p("nastran", 1.2, 6.0, 100 * MB, 0.5),
            1.6,
        ),
        (
            "Fluent 32P published (CFD)",
            p("fluent", 1.4, 3.0, 40 * MB, 0.5),
            1.2,
        ),
        (
            "StarCD 32P published (CFD)",
            p("starcd", 1.2, 10.0, 80 * MB, 0.55),
            1.8,
        ),
        (
            "Dyna/Neon internal 16P (crash)",
            p("dyna", 1.2, 4.0, 30 * MB, 0.4),
            1.3,
        ),
        (
            "MM5 internal 32P (weather)",
            p("mm5", 1.3, 18.0, 120 * MB, 0.7),
            2.1,
        ),
        (
            "Nwchem internal 32P (SiOSi3)",
            p("nwchem", 1.2, 8.0, 60 * MB, 0.45),
            1.8,
        ),
        (
            "Gaussian98 internal 32P (chemistry)",
            p("gaussian", 1.2, 7.0, 50 * MB, 0.4),
            1.6,
        ),
    ]
}

/// Reproduce Fig. 28: GS1280-vs-GS320 performance ratios across system
/// components, standard benchmarks, and applications. `gups_updates`
/// bounds the event-driven GUPS runs (the slowest rows).
pub fn fig28(gups_updates: usize) -> Table {
    let g = alphasim_system::Gs1280::builder().cpus(32).build();
    let q = alphasim_system::Gs320::new(32);
    let g16 = alphasim_system::Gs1280::builder().cpus(16).build();
    let q16 = alphasim_system::Gs320::new(16);
    let mg = MachinePerf::gs1280();
    let mq = MachinePerf::gs320();

    let mut rows = Vec::new();
    let mut push = |label: &str, computed: f64, paper: Option<f64>| {
        rows.push(RatioRow {
            label: label.into(),
            computed,
            paper,
        });
    };

    // --- system components ---
    push(
        "CPU speed",
        g.calibration().clock.ghz() / q.calibration().clock.ghz(),
        Some(0.94),
    );
    push(
        "memory copy bw (1P)",
        g.stream_triad_gbps(1) / q.stream_triad_gbps(1),
        Some(8.0),
    );
    push(
        "memory copy bw (32P)",
        g.stream_triad_gbps(32) / q.stream_triad_gbps(32),
        Some(8.0),
    );
    push(
        "memory latency (local)",
        q.local_latency(true).as_ns() / g.local_latency(true).as_ns(),
        Some(4.0),
    );
    push(
        "memory latency (Dirty remote)",
        q16.average_dirty_latency().as_ns() / g16.average_dirty_latency().as_ns(),
        Some(6.6),
    );
    // IP bandwidth: peak delivered load-test bandwidth at 32P.
    let g_ip = alphasim_system::loadtest::gs1280_load_test(&g)
        .run(&alphasim_system::loadtest::LoadTestConfig {
            outstanding: 16,
            requests_per_cpu: gups_updates,
            ..Default::default()
        })
        .delivered_gbps;
    let q_ip = alphasim_system::loadtest::gs320_load_test(&q)
        .run(&alphasim_system::loadtest::LoadTestConfig {
            outstanding: 16,
            requests_per_cpu: gups_updates,
            ..Default::default()
        })
        .delivered_gbps;
    push("Inter-Processor bandwidth (32P)", g_ip / q_ip, Some(10.0));
    {
        let g_io = alphasim_system::IoSubsystem::for_machine(g.calibration(), 32);
        let q_io = alphasim_system::IoSubsystem::for_machine(q.calibration(), 32);
        push(
            "I/O bandwidth (32P)",
            g_io.aggregate_gbps() / q_io.aggregate_gbps(),
            Some(8.0),
        );
    }

    // --- standard benchmarks ---
    push(
        "SPECint_rate2000 published (16P)",
        suite_rate(&spec::int2000(), &mg, 16) / suite_rate(&spec::int2000(), &mq, 16),
        Some(1.1),
    );
    push(
        "SPECfp_rate2000 published (16P)",
        suite_rate(&spec::fp2000(), &mg, 16) / suite_rate(&spec::fp2000(), &mq, 16),
        Some(2.4),
    );
    {
        let sp = alphasim_workloads::apps::NasSpModel::class_c();
        let am_g = alphasim_workloads::apps::AppMachine::Gs1280(g16.clone());
        let am_q = alphasim_workloads::apps::AppMachine::Gs320(q16.clone());
        push(
            "NAS Parallel internal (16P)",
            sp.mops(&am_g, 16) / sp.mops(&am_q, 16),
            Some(2.6),
        );
    }
    push(
        "SPEComp2001 published (16P)",
        0.9 * suite_rate(&spec::fp2000(), &mg, 16) / suite_rate(&spec::fp2000(), &mq, 16),
        Some(1.7),
    );

    // --- ISV applications & commercial proxies ---
    for (label, profile, paper) in isv_proxies() {
        push(label, profile.ipc(&mg) / profile.ipc(&mq), Some(paper));
    }

    // --- the two headline codes ---
    push(
        "GUPS internal (32P)",
        gups_mups_gs1280(32, gups_updates) / gups_mups_gs320(32, gups_updates),
        Some(10.5),
    );
    let swim = spec::by_name("swim").expect("swim profile");
    push(
        "swim 32P (from SPEComp2001)",
        swim.rate(&mg, 32) / swim.rate(&mq, 32),
        Some(9.0),
    );

    Table {
        id: "fig28".into(),
        title: "GS1280/1.15GHz advantage vs GS320/1.2GHz: performance ratios".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_18_cells_and_exact_small_shapes() {
        let t = table1();
        assert_eq!(t.rows.len(), 18);
        // 4x2 row: all three computed values equal the paper's.
        for r in &t.rows[..3] {
            assert!(
                (r.computed - r.paper.unwrap()).abs() < 1e-3,
                "{}: {} vs {:?}",
                r.label,
                r.computed,
                r.paper
            );
        }
    }

    #[test]
    fn fig28_component_rows_are_in_band() {
        let t = fig28(30);
        let row = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label.starts_with(label))
                .unwrap_or_else(|| panic!("missing row {label}"))
                .computed
        };
        assert!((0.9..=1.0).contains(&row("CPU speed")));
        assert!(row("memory copy bw (1P)") > 6.0);
        assert!((3.0..=4.6).contains(&row("memory latency (local)")));
        assert!(row("memory latency (Dirty remote)") > 5.0);
        assert!(row("Inter-Processor bandwidth (32P)") > 8.0);
        assert!((6.0..=10.0).contains(&row("I/O bandwidth (32P)")));
    }

    #[test]
    fn fig28_applications_mostly_favor_gs1280() {
        let t = fig28(30);
        let faster = t.rows.iter().filter(|r| r.computed > 1.0).count();
        // "the majority of applications run faster on GS1280 than GS320";
        // only CPU speed (and possibly an int row) may dip below 1.
        assert!(faster >= t.rows.len() - 3, "{faster}/{}", t.rows.len());
    }

    #[test]
    fn fig28_headliners_dominate() {
        let t = fig28(30);
        let gups = t
            .rows
            .iter()
            .find(|r| r.label.starts_with("GUPS"))
            .unwrap()
            .computed;
        let swim = t
            .rows
            .iter()
            .find(|r| r.label.starts_with("swim"))
            .unwrap()
            .computed;
        assert!(gups > 10.0, "GUPS {gups}");
        assert!(swim > 5.0, "swim {swim}");
        // They rank among the largest rows, as in the figure: only the raw
        // component-bandwidth rows may exceed them.
        let mut sorted: Vec<(f64, &str)> = t
            .rows
            .iter()
            .map(|r| (r.computed, r.label.as_str()))
            .collect();
        sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
        let top: Vec<&str> = sorted[..6].iter().map(|x| x.1).collect();
        assert!(top.iter().any(|l| l.starts_with("GUPS")), "{top:?}");
        assert!(top.iter().any(|l| l.starts_with("swim")), "{top:?}");
    }

    #[test]
    fn fig28_isv_ratios_are_moderate() {
        let t = fig28(30);
        for r in &t.rows {
            if r.label.contains("internal") || r.label.contains("published (CFD)") {
                if r.label.starts_with("GUPS") || r.label.starts_with("NAS") {
                    continue;
                }
                assert!(
                    (0.9..=3.0).contains(&r.computed),
                    "{}: {}",
                    r.label,
                    r.computed
                );
            }
        }
    }
}
