//! Figs. 1, 8–11 and 25: the SPEC CPU2000 experiments.

use alphasim_workloads::spec::{self, MachinePerf, SpecProfile, Suite};

use crate::types::{Figure, Series};

/// Reproduce Fig. 1: SPECfp_rate2000 scaling (suite-mean rate score,
/// normalised so GS1280/1P = 1 — the paper plots absolute SPEC scores,
/// which need the reference machine; shapes and ratios are preserved).
pub fn fig01() -> Figure {
    let mut fig = Figure::new(
        "fig01",
        "SPECfp_rate2000 comparison",
        "# CPUs",
        "rate (normalised to GS1280 1P)",
    );
    let fp = spec::fp2000();
    let machines = [
        (MachinePerf::gs1280(), vec![1usize, 2, 4, 8, 16, 32]),
        (MachinePerf::es45(), vec![1, 2, 4]),
        (MachinePerf::gs320(), vec![4, 8, 16, 32]),
    ];
    let norm = suite_rate(&fp, &MachinePerf::gs1280(), 1);
    for (m, counts) in machines {
        let pts: Vec<(f64, f64)> = counts
            .iter()
            .map(|&n| (n as f64, suite_rate(&fp, &m, n) / norm))
            .collect();
        fig.series.push(Series::from_pairs(m.name.clone(), pts));
    }
    fig
}

/// Geometric-mean rate of a suite with `n` copies.
pub fn suite_rate(suite: &[SpecProfile], m: &MachinePerf, n: usize) -> f64 {
    let log_sum: f64 = suite.iter().map(|p| p.rate(m, n).ln()).sum();
    (log_sum / suite.len() as f64).exp()
}

/// Reproduce Fig. 8 (fp) or Fig. 9 (int): per-benchmark IPC on the three
/// machines. The x axis indexes benchmarks in the paper's order.
pub fn ipc_figure(suite: Suite) -> Figure {
    let (id, title, profiles) = match suite {
        Suite::Fp => ("fig08", "IPC comparison: SPECfp2000", spec::fp2000()),
        Suite::Int => ("fig09", "IPC comparison: SPECint2000", spec::int2000()),
    };
    let mut fig = Figure::new(id, title, "benchmark index", "IPC");
    for m in [
        MachinePerf::gs1280(),
        MachinePerf::es45(),
        MachinePerf::gs320(),
    ] {
        let pts: Vec<(f64, f64)> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64, p.ipc(&m)))
            .collect();
        fig.series.push(Series::from_pairs(m.name.clone(), pts));
    }
    fig
}

/// The benchmark names backing [`ipc_figure`]'s x axis.
pub fn benchmark_names(suite: Suite) -> Vec<&'static str> {
    let profiles = match suite {
        Suite::Fp => spec::fp2000(),
        Suite::Int => spec::int2000(),
    };
    profiles.iter().map(|p| p.name).collect()
}

/// Reproduce Fig. 10 (fp) or Fig. 11 (int): per-benchmark Zbox-utilization
/// time series on the GS1280, `samples` points each.
pub fn utilization_figure(suite: Suite, samples: usize) -> Figure {
    let (id, title, profiles) = match suite {
        Suite::Fp => (
            "fig10",
            "SPECfp2000: memory controller utilization",
            spec::fp2000(),
        ),
        Suite::Int => (
            "fig11",
            "SPECint2000: memory controller utilization",
            spec::int2000(),
        ),
    };
    let m = MachinePerf::gs1280();
    let mut fig = Figure::new(id, title, "timestamp", "utilization (%)");
    for p in profiles {
        let series = p.utilization_series(&m, samples);
        fig.series.push(Series::from_pairs(
            p.name,
            series.into_iter().enumerate().map(|(i, u)| (i as f64, u)),
        ));
    }
    fig
}

/// Reproduce Fig. 25: SPECfp_rate degradation from memory striping, one
/// point per fp benchmark (fraction, 0.10 = 10%).
pub fn fig25() -> Figure {
    let plain = MachinePerf::gs1280();
    let striped = MachinePerf::gs1280_striped();
    let mut fig = Figure::new(
        "fig25",
        "Degradation from striping: SPECfp_rate2000",
        "benchmark index",
        "degradation (fraction)",
    );
    let pts: Vec<(f64, f64)> = spec::fp2000()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let d = 1.0 - p.rate(&striped, 16) / p.rate(&plain, 16);
            (i as f64, d.max(0.0))
        })
        .collect();
    fig.series.push(Series::from_pairs("GS1280 16P", pts));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_gs1280_scales_best() {
        let fig = fig01();
        let g = fig.series_like("GS1280").unwrap();
        let q = fig.series_like("GS320").unwrap();
        // Near-linear GS1280 scaling.
        let r = g.y_at(16.0).unwrap() / g.y_at(1.0).unwrap();
        assert!(r > 12.0, "16P scaling {r}");
        // Paper: "2 to 3 times the performance of the GS320 at similar
        // clock frequency" — at 16P the rate gap is large.
        let gap = g.y_at(16.0).unwrap() / q.y_at(16.0).unwrap();
        assert!(gap > 1.8, "gap {gap}");
    }

    #[test]
    fn fig08_has_all_machines_and_benchmarks() {
        let fig = ipc_figure(Suite::Fp);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 14);
        }
        assert_eq!(benchmark_names(Suite::Fp)[1], "swim");
        assert_eq!(benchmark_names(Suite::Int).len(), 12);
    }

    #[test]
    fn fig09_int_ipcs_are_comparable() {
        let fig = ipc_figure(Suite::Int);
        let g = fig.series_like("GS1280").unwrap();
        let e = fig.series_like("ES45").unwrap();
        // Suite-mean int IPC within ~20% between GS1280 and ES45.
        let gm: f64 = g.points.iter().map(|p| p.y).sum::<f64>() / 12.0;
        let em: f64 = e.points.iter().map(|p| p.y).sum::<f64>() / 12.0;
        let ratio = gm / em;
        assert!((0.8..=1.3).contains(&ratio), "int mean ratio {ratio}");
    }

    #[test]
    fn fig10_swim_leads_at_around_53_percent() {
        let fig = utilization_figure(Suite::Fp, 60);
        let swim = fig.series_like("swim").unwrap();
        let mean = swim.points.iter().map(|p| p.y).sum::<f64>() / 60.0;
        assert!((45.0..=60.0).contains(&mean), "swim mean {mean}");
        // swim has the highest mean of the suite.
        for s in &fig.series {
            let m = s.points.iter().map(|p| p.y).sum::<f64>() / 60.0;
            assert!(m <= mean + 1e-9, "{} {m} exceeds swim", s.label);
        }
    }

    #[test]
    fn fig11_int_utilizations_are_modest() {
        let fig = utilization_figure(Suite::Int, 60);
        for s in &fig.series {
            let mean = s.points.iter().map(|p| p.y).sum::<f64>() / 60.0;
            assert!(mean < 30.0, "{} {mean}", s.label);
        }
    }

    #[test]
    fn fig25_band_matches_paper() {
        // Fig. 25: degradations mostly 0-30%, worst tail higher.
        let fig = fig25();
        let s = &fig.series[0];
        assert!(
            s.peak_y() > 0.10 && s.peak_y() < 0.45,
            "peak {}",
            s.peak_y()
        );
        let mesa = s.points[4].y; // mesa is index 4 in the fp order
        assert!(mesa < 0.05, "cache-resident mesa {mesa}");
    }
}
