//! Figs. 19–24: the three application classes of §5.

use alphasim_kernel::par::parallel_map;
use alphasim_system::loadtest::{
    gs1280_load_test, gs320_load_test, LoadTestConfig, TrafficPattern,
};
use alphasim_system::{Es45, Gs1280, Gs320, Sc45};
use alphasim_workloads::apps::{AppMachine, FluentModel, NasSpModel};

use crate::types::{Figure, Series};

/// Reproduce Fig. 19: Fluent rating vs CPU count on GS1280, SC45, GS320.
pub fn fig19() -> Figure {
    let f = FluentModel::fl5l1();
    let mut fig = Figure::new("fig19", "FLUENT 6: fl5l1", "# CPUs", "rating");
    let machines = [
        (
            AppMachine::Gs1280(Gs1280::builder().cpus(32).build()),
            vec![1usize, 2, 4, 8, 16, 32],
        ),
        (AppMachine::Sc45(Sc45::new(32)), vec![4, 8, 16, 32]),
        (AppMachine::Gs320(Gs320::new(32)), vec![4, 8, 16, 32]),
    ];
    for (m, counts) in machines {
        let pts: Vec<(f64, f64)> = counts
            .iter()
            .map(|&n| (n as f64, f.rating(&m, n)))
            .collect();
        fig.series.push(Series::from_pairs(m.name(), pts));
    }
    fig
}

/// Reproduce Fig. 20: Fluent's utilization signature over time (low on
/// both gauges).
pub fn fig20(samples: usize) -> Figure {
    let f = FluentModel::fl5l1();
    let mut fig = Figure::new(
        "fig20",
        "Fluent: memory and IP-link utilization",
        "timestamp",
        "utilization (%)",
    );
    // Fluent's traffic is steady, with small solver-phase wiggle.
    let wiggle = |i: usize, base: f64| base * 100.0 * (1.0 + 0.3 * ((i as f64) * 0.7).sin());
    fig.series.push(Series::from_pairs(
        "memory controllers (average)",
        (0..samples).map(|i| (i as f64, wiggle(i, f.zbox_utilization()))),
    ));
    fig.series.push(Series::from_pairs(
        "IP-links (average)",
        (0..samples).map(|i| (i as f64, wiggle(i, f.ip_utilization()))),
    ));
    fig
}

/// Reproduce Fig. 21: NAS SP MOPS vs CPU count.
pub fn fig21() -> Figure {
    let sp = NasSpModel::class_c();
    let mut fig = Figure::new("fig21", "NAS Parallel SP", "# CPUs", "MOPS");
    let machines = [
        (
            AppMachine::Gs1280(Gs1280::builder().cpus(32).build()),
            vec![1usize, 4, 9, 16, 25],
        ),
        (AppMachine::Sc45(Sc45::new(32)), vec![4, 16, 25]),
        (AppMachine::Gs320(Gs320::new(32)), vec![4, 9, 16, 25]),
    ];
    for (m, counts) in machines {
        let pts: Vec<(f64, f64)> = counts.iter().map(|&n| (n as f64, sp.mops(&m, n))).collect();
        fig.series.push(Series::from_pairs(m.name(), pts));
    }
    fig
}

/// Reproduce Fig. 22: SP's utilization signature (Zbox ~26%, IP low).
pub fn fig22(samples: usize) -> Figure {
    let sp = NasSpModel::class_c();
    let mut fig = Figure::new(
        "fig22",
        "SP: memory and IP-link utilization",
        "timestamp",
        "utilization (%)",
    );
    let solver = |i: usize, base: f64| base * 100.0 * (1.0 + 0.25 * ((i as f64) * 1.1).sin());
    fig.series.push(Series::from_pairs(
        "memory controllers (average)",
        (0..samples).map(|i| (i as f64, solver(i, sp.zbox_utilization()))),
    ));
    fig.series.push(Series::from_pairs(
        "IP-links (average)",
        (0..samples).map(|i| (i as f64, solver(i, sp.ip_utilization()))),
    ));
    fig
}

/// GUPS throughput on a GS1280 of `cpus`, in Mupdates/s, via the
/// event-driven load test (each update is one remote round trip).
pub fn gups_mups_gs1280(cpus: usize, updates_per_cpu: usize) -> f64 {
    let m = Gs1280::builder().cpus(cpus).build();
    let r = gs1280_load_test(&m).run(&LoadTestConfig {
        outstanding: 12, // OpenMP threads expose plenty of MLP
        requests_per_cpu: updates_per_cpu,
        pattern: TrafficPattern::UniformRemote,
        ..Default::default()
    });
    r.completed as f64 / r.elapsed.as_secs() / 1e6
}

/// GUPS throughput on a GS320.
pub fn gups_mups_gs320(cpus: usize, updates_per_cpu: usize) -> f64 {
    let m = Gs320::new(cpus);
    let r = gs320_load_test(&m).run(&LoadTestConfig {
        outstanding: 8,
        requests_per_cpu: updates_per_cpu,
        pattern: TrafficPattern::UniformRemote,
        ..Default::default()
    });
    r.completed as f64 / r.elapsed.as_secs() / 1e6
}

/// GUPS throughput on an ES45 (single box, shared memory: bounded by the
/// box's sustained memory bandwidth; one update = one 64 B line probe).
pub fn gups_mups_es45(cpus: usize) -> f64 {
    let m = Es45::new(cpus.min(4));
    // Updates are random single-line touches: bandwidth-bound.
    m.calibration().sustained_mem_gbps * 1e9 / 128.0 / 1e6
}

/// Reproduce Fig. 23: GUPS Mupdates/s vs CPU count.
pub fn fig23(updates_per_cpu: usize) -> Figure {
    let mut fig = Figure::new(
        "fig23",
        "GUPS performance comparison",
        "# CPUs",
        "Mupdates/s",
    );
    // Every (machine, CPU-count) cell is an independent load test; fan the
    // whole sweep out at once (the 64-CPU GS1280 run dominates, so item-level
    // work stealing beats per-series fan-out).
    enum Cell {
        Gs1280(usize),
        Gs320(usize),
        Es45(usize),
    }
    let cells: Vec<Cell> = [4usize, 8, 16, 32, 64]
        .iter()
        .map(|&n| Cell::Gs1280(n))
        .chain([4usize, 8, 16, 32].iter().map(|&n| Cell::Gs320(n)))
        .chain([1usize, 2, 4].iter().map(|&n| Cell::Es45(n)))
        .collect();
    let mups = parallel_map(cells, |cell| match cell {
        Cell::Gs1280(n) => (n as f64, gups_mups_gs1280(n, updates_per_cpu)),
        Cell::Gs320(n) => (n as f64, gups_mups_gs320(n, updates_per_cpu)),
        Cell::Es45(n) => (n as f64, gups_mups_es45(n)),
    });
    fig.series
        .push(Series::from_pairs("GS1280/1.15GHz", mups[0..5].to_vec()));
    fig.series
        .push(Series::from_pairs("GS320/1.2GHz", mups[5..9].to_vec()));
    fig.series
        .push(Series::from_pairs("ES45/1.25GHz", mups[9..12].to_vec()));
    fig
}

/// Reproduce Fig. 24: GUPS utilization on the 32P (8×4) GS1280 as a
/// sampled time series — memory controllers, average North/South links,
/// and average East/West links, captured by the in-run Xmesh sampler.
pub fn fig24(updates_per_cpu: usize) -> Figure {
    let m = Gs1280::builder().cpus(32).build();
    let r = gs1280_load_test(&m).run(&LoadTestConfig {
        outstanding: 12,
        requests_per_cpu: updates_per_cpu,
        pattern: TrafficPattern::UniformRemote,
        sample_interval_ns: Some(2_000.0),
        ..Default::default()
    });
    let mut fig = Figure::new(
        "fig24",
        "GUPS: memory and IP-link utilization (32P GS1280)",
        "timestamp (ns)",
        "utilization (%)",
    );
    let mem: Vec<(f64, f64)> = r
        .samples
        .iter()
        .map(|s| {
            let mean = s.zbox.iter().sum::<f64>() / s.zbox.len().max(1) as f64;
            (s.at_ns, mean * 100.0)
        })
        .collect();
    let ns: Vec<(f64, f64)> = r
        .samples
        .iter()
        .map(|s| (s.at_ns, s.north_south * 100.0))
        .collect();
    let ew: Vec<(f64, f64)> = r
        .samples
        .iter()
        .map(|s| (s.at_ns, s.east_west * 100.0))
        .collect();
    fig.series
        .push(Series::from_pairs("memory controller", mem));
    fig.series
        .push(Series::from_pairs("average North/South", ns));
    fig.series.push(Series::from_pairs("average East/West", ew));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_fluent_is_close_between_machines() {
        let fig = fig19();
        let g = fig.series_like("GS1280").unwrap();
        let s = fig.series_like("SC45").unwrap();
        let ratio = g.y_at(16.0).unwrap() / s.y_at(16.0).unwrap();
        assert!((0.6..=1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig21_sp_ordering() {
        let fig = fig21();
        let g = fig.series_like("GS1280").unwrap().y_at(16.0).unwrap();
        let s = fig.series_like("SC45").unwrap().y_at(16.0).unwrap();
        let q = fig.series_like("GS320").unwrap().y_at(16.0).unwrap();
        assert!(g > s && s > q, "{g} {s} {q}");
    }

    #[test]
    fn fig23_gups_gap_exceeds_10x_at_32p() {
        let g = gups_mups_gs1280(32, 40);
        let q = gups_mups_gs320(32, 40);
        assert!(g > 10.0 * q, "GS1280 {g} vs GS320 {q}");
    }

    #[test]
    fn fig23_gs1280_bend_at_32() {
        // The paper: "the bend in performance at 32 CPUs: the
        // cross-sectional bandwidth is comparable in both 16P and 32P"
        // (4x4 vs 8x4 share the same vertical bisection).
        let m16 = gups_mups_gs1280(16, 40);
        let m32 = gups_mups_gs1280(32, 40);
        let m64 = gups_mups_gs1280(64, 40);
        let growth_16_32 = m32 / m16;
        let growth_32_64 = m64 / m32;
        assert!(growth_16_32 < 1.9, "16->32 growth {growth_16_32}");
        assert!(m64 > m32 && m32 > m16);
        let _ = growth_32_64;
    }

    #[test]
    fn fig24_east_west_exceeds_north_south() {
        // 8x4 torus: horizontal links carry more traffic (Fig. 24), in
        // every sampled interval of the steady state.
        let fig = fig24(120);
        let ns = fig.series_like("North/South").unwrap();
        let ew = fig.series_like("East/West").unwrap();
        assert!(ns.points.len() >= 3, "need several samples");
        let ns_mean: f64 = ns.points.iter().map(|p| p.y).sum::<f64>() / ns.points.len() as f64;
        let ew_mean: f64 = ew.points.iter().map(|p| p.y).sum::<f64>() / ew.points.len() as f64;
        assert!(ew_mean > ns_mean, "E/W {ew_mean} vs N/S {ns_mean}");
        // Memory controllers see traffic too.
        let mem = fig.series_like("memory").unwrap();
        assert!(mem.peak_y() > 1.0);
    }

    #[test]
    fn fig20_fig22_signatures() {
        let f20 = fig20(30);
        let mem = f20.series_like("memory").unwrap();
        let ip = f20.series_like("IP").unwrap();
        let mem_mean = mem.points.iter().map(|p| p.y).sum::<f64>() / 30.0;
        let ip_mean = ip.points.iter().map(|p| p.y).sum::<f64>() / 30.0;
        assert!(mem_mean < 15.0 && ip_mean < mem_mean);
        let f22 = fig22(30);
        let mem22 = f22.series_like("memory").unwrap();
        let m22 = mem22.points.iter().map(|p| p.y).sum::<f64>() / 30.0;
        assert!((18.0..35.0).contains(&m22), "SP zbox {m22}");
    }
}
