//! The timeline artifact: sim-time-resolved metric series, topology
//! heatmaps, and the epoch-parallel engine profile for two closed-loop
//! fault campaigns.
//!
//! The paper's figures are endpoint summaries — one number per sweep
//! point after the run has finished. This experiment keeps the *when*:
//! each campaign runs observed ([`FaultCampaign::run_observed`]) and
//! every injection, completion, retry, poison, delivery, and Zbox
//! service is bucketed into fixed [`WINDOW_PS`]-wide windows of
//! simulated time. Two sections ship in `results/timeline.json`:
//!
//! * **resilience** — bisection traffic on the 16P GS1280 while three
//!   bisection links die mid-run (the time-resolved companion of the
//!   `resilience` sweep): throughput sags and the p99 tail grows window
//!   by window as each cut lands;
//! * **chaos** — a fixed schedule striking every [`FaultKind`] once
//!   (cuts, repairs, degradation, flit corruption, drains, a router
//!   brownout, RDRAM channel churn), the windowed view of what each
//!   wound does to the machine.
//!
//! Window boundaries are a pure function of the timestamp and the
//! per-window merges are commutative, so the artifact regenerates
//! byte-identically at any `--jobs`/`--shards`/`--threads` setting; the
//! engine knobs of the campaigns themselves are pinned
//! ([`TIMELINE_SHARDS`]/[`TIMELINE_THREADS`]) so the embedded epoch
//! profile and `engine.*` counters are fixtures too. The window sums
//! equal the whole-run registry totals exactly (the timeline partitions
//! the totals — asserted in tests), and [`saturation_knee`] marks the
//! first window where the latency tail has doubled while delivered
//! throughput stopped growing.
//!
//! [`FaultCampaign::run_observed`]: alphasim_system::FaultCampaign::run_observed
//! [`FaultKind`]: alphasim_kernel::FaultKind

use alphasim_coherence::RetryPolicy;
use alphasim_kernel::par::parallel_map;
use alphasim_kernel::stats::MeanP50P99;
use alphasim_kernel::{FaultKind, FaultPlan, SimDuration, SimTime};
use alphasim_system::{
    gs1280_fault_campaign, CampaignObservability, CampaignPattern, CampaignResult,
    FaultCampaignConfig, Gs1280, ObserveOptions,
};
use alphasim_telemetry::{Registry, TraceSink};
use serde_json::{Number, Value};
use std::collections::BTreeMap;

use super::resilience::bisection_cuts;

/// Fixed window width of the artifact's timelines: 2 µs of simulated
/// time, fine enough to watch each fault land inside a ~30 µs campaign.
pub const WINDOW_PS: u64 = 2_000_000;

/// Event-queue region shards of the timeline campaigns. Pinned (rather
/// than inherited from `--shards`) so the embedded epoch profile and
/// `engine.*` registry entries — which describe the engine, not the
/// machine — are the same bytes at any CLI knob setting.
pub const TIMELINE_SHARDS: usize = 2;

/// Worker threads of the timeline campaigns; pinned for the same reason
/// as [`TIMELINE_SHARDS`] (sim-time outputs are thread-invariant anyway,
/// but the pin keeps even the engine-plane fixture honest).
pub const TIMELINE_THREADS: usize = 2;

/// One window of a section's timeline, every field an exact integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowRow {
    /// Window index (`start = index * window_ps`).
    pub index: u64,
    /// Reads injected (first issues plus retries) in the window.
    pub injected: u64,
    /// Reads completed in the window.
    pub completed: u64,
    /// Retries issued in the window.
    pub retries: u64,
    /// Transactions poisoned in the window.
    pub poisoned: u64,
    /// Fabric messages delivered in the window.
    pub delivered_msgs: u64,
    /// Fabric payload bytes delivered in the window.
    pub delivered_bytes: u64,
    /// Delivered fabric throughput over the window, in exact milli-Gb/s
    /// (`bytes * 8e6 / window_ps`).
    pub milli_gbps: u64,
    /// Peak outstanding-transaction count observed in the window.
    pub pending_peak: u64,
    /// Mean end-to-end latency of reads *completing* in the window, ns.
    pub latency_mean_ns: u64,
    /// Median (nearest-rank) latency of the window's completions, ns.
    pub latency_p50_ns: u64,
    /// 99th-percentile latency of the window's completions, ns.
    pub latency_p99_ns: u64,
}

/// One campaign's time-resolved view.
#[derive(Debug, Clone)]
pub struct SectionTimeline {
    /// Section id (`resilience` / `chaos`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Dense windows from 0 through the last touched window.
    pub windows: Vec<WindowRow>,
    /// First saturated window per [`saturation_knee`], if any.
    pub knee: Option<usize>,
    /// The raw merged observability (timeline, heatmaps, profile).
    pub observability: CampaignObservability,
    /// The campaign's endpoint summary.
    pub result: CampaignResult,
    /// The whole-run component registry (the exact-sum reference for the
    /// windowed series).
    pub registry: Registry,
    /// Chrome trace with per-shard profiler lanes, when requested.
    pub trace: Option<TraceSink>,
}

/// The `results/timeline.json` artifact: both sections at [`WINDOW_PS`].
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// Window width shared by every section, ps.
    pub window_ps: u64,
    /// The sections, in fixed order (resilience, chaos).
    pub sections: Vec<SectionTimeline>,
}

/// The first window where the machine is visibly saturated: its p99
/// latency has at least doubled over the baseline (the first window with
/// any completions) while delivered throughput stopped growing. `None`
/// when the run never saturates. Series are per-window values in window
/// order; the two must describe the same windows.
pub fn saturation_knee(milli_gbps: &[u64], p99_ns: &[u64]) -> Option<usize> {
    let base = p99_ns.iter().position(|&v| v > 0)?;
    let baseline = p99_ns[base];
    (base + 1..p99_ns.len().min(milli_gbps.len()))
        .find(|&i| p99_ns[i] >= 2 * baseline && milli_gbps[i] <= milli_gbps[i - 1])
}

/// The resilience section's fault schedule: three of the 16P torus's four
/// bisection links die at 4, 8, and 12 µs — each strike lands on live
/// traffic, so the windowed series show the machine re-adapting three
/// times.
fn resilience_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (i, &(a, b)) in bisection_cuts(16, 3).iter().enumerate() {
        let at = SimTime::ZERO + SimDuration::from_us(4.0) + SimDuration::from_us(4.0) * i as u64;
        plan.push(at, FaultKind::LinkDown { a, b });
    }
    plan
}

/// The chaos section's fault schedule: every [`FaultKind`] exactly once,
/// spread through the first half of the run so each wound (and each
/// repair) is visible as its own feature in the windowed series.
fn chaos_plan() -> FaultPlan {
    let at = |us: f64| SimTime::ZERO + SimDuration::from_us(us);
    let mut plan = FaultPlan::new();
    plan.push(at(2.0), FaultKind::LinkDown { a: 0, b: 1 });
    // A bisection-crossing link, so the armed corruption is guaranteed to
    // meet a flit while the campaign's traffic is crossing.
    plan.push(at(3.0), FaultKind::FlitCorrupt { from: 1, to: 2 });
    plan.push(at(4.0), FaultKind::LinkDegrade { a: 5, b: 6 });
    plan.push(at(5.0), FaultKind::NodeDrain { node: 9 });
    plan.push(
        at(6.0),
        FaultKind::RouterPause {
            node: 4,
            ps: 1_500_000,
        },
    );
    plan.push(at(7.0), FaultKind::ChannelDown { node: 10 });
    plan.push(at(9.0), FaultKind::LinkUp { a: 0, b: 1 });
    plan.push(at(10.0), FaultKind::NodeUndrain { node: 9 });
    plan.push(at(11.0), FaultKind::ChannelUp { node: 10 });
    plan
}

/// Shared campaign shape of both sections: a 16P GS1280 under the
/// resilience sweep's retry policy, engine knobs pinned.
fn section_cfg(
    outstanding: usize,
    requests_per_cpu: usize,
    plan: FaultPlan,
) -> FaultCampaignConfig {
    FaultCampaignConfig {
        outstanding,
        requests_per_cpu,
        pattern: CampaignPattern::Bisection,
        plan,
        retry: RetryPolicy {
            timeout: SimDuration::from_us(50.0),
            backoff_base: SimDuration::from_us(2.0),
            backoff_cap: SimDuration::from_us(32.0),
            max_retries: 6,
        },
        watchdog_window: SimDuration::from_us(250.0),
        shards: TIMELINE_SHARDS,
        threads: TIMELINE_THREADS,
        ..Default::default()
    }
}

/// Run one observed section campaign and window it.
fn run_section(
    id: &str,
    title: &str,
    cfg: &FaultCampaignConfig,
    window_ps: u64,
    trace: bool,
    wall: bool,
) -> SectionTimeline {
    let machine = Gs1280::builder().cpus(16).build();
    let opts = ObserveOptions {
        window_ps,
        trace,
        wall,
    };
    let (result, telemetry, observability) =
        gs1280_fault_campaign(&machine).run_observed(cfg, opts);
    let windows = window_rows(&observability);
    let knee = saturation_knee(
        &windows.iter().map(|w| w.milli_gbps).collect::<Vec<_>>(),
        &windows.iter().map(|w| w.latency_p99_ns).collect::<Vec<_>>(),
    );
    SectionTimeline {
        id: id.to_owned(),
        title: title.to_owned(),
        windows,
        knee,
        observability,
        result,
        registry: telemetry.registry,
        trace: telemetry.trace,
    }
}

/// Densify the merged observability into per-window rows. Latency
/// quantiles come from the exact completion samples (not the log2
/// histogram), bucketed by completion time with the same boundary rule
/// as every counter.
fn window_rows(obs: &CampaignObservability) -> Vec<WindowRow> {
    let t = &obs.timeline;
    let injected = t.counter_series("campaign.injected");
    let completed = t.counter_series("campaign.completed");
    let retries = t.counter_series("campaign.retries");
    let poisoned = t.counter_series("campaign.poisoned");
    let delivered = t.counter_series("net.delivered");
    let bytes = t.counter_series("net.bytes");
    let pending = t.gauge_series("campaign.pending_depth");
    let count = injected.len();
    let mut quantiles: Vec<MeanP50P99> = (0..count).map(|_| MeanP50P99::new()).collect();
    for &(at_ps, e2e_ps) in &obs.latencies {
        let idx = (at_ps / obs.window_ps) as usize;
        if let Some(q) = quantiles.get_mut(idx) {
            q.record(SimDuration::from_ps(e2e_ps));
        }
    }
    let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
    quantiles
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let (mean, p50, p99) = q.finish_full();
            let b = get(&bytes, i);
            WindowRow {
                index: i as u64,
                injected: get(&injected, i),
                completed: get(&completed, i),
                retries: get(&retries, i),
                poisoned: get(&poisoned, i),
                delivered_msgs: get(&delivered, i),
                delivered_bytes: b,
                milli_gbps: b * 8_000_000 / obs.window_ps,
                pending_peak: get(&pending, i),
                latency_mean_ns: mean.as_ps() / 1_000,
                latency_p50_ns: p50.as_ps() / 1_000,
                latency_p99_ns: p99.as_ps() / 1_000,
            }
        })
        .collect()
}

/// Build the full timeline report at the committed window width. Like
/// `telemetry.json`, the artifact is a fixed-size fixture independent of
/// the sweep's `--quick`/full effort, so `reproduce --check` holds either
/// way. `trace` attaches the Chrome trace (per-shard profiler lanes
/// included) to each section.
pub fn timeline_report(trace: bool) -> TimelineReport {
    timeline_report_with(WINDOW_PS, trace, false)
}

/// [`timeline_report`] with an explicit window width and optional
/// wall-clock profiling (the `perfsight` tool's knobs). Wall-clock values
/// stay out of [`TimelineReport::to_json`], so only the committed width
/// produces the committed artifact bytes.
pub fn timeline_report_with(window_ps: u64, trace: bool, wall: bool) -> TimelineReport {
    struct Spec {
        id: &'static str,
        title: &'static str,
        cfg: FaultCampaignConfig,
    }
    let sections = vec![
        Spec {
            id: "resilience",
            title: "bisection traffic on 16P while 3 bisection links die mid-run",
            cfg: section_cfg(8, 600, resilience_plan()),
        },
        Spec {
            id: "chaos",
            title: "every fault kind striking a loaded 16P once",
            cfg: section_cfg(6, 500, chaos_plan()),
        },
    ];
    let sections = parallel_map(sections, move |s| {
        run_section(s.id, s.title, &s.cfg, window_ps, trace, wall)
    });
    TimelineReport {
        window_ps,
        sections,
    }
}

impl SectionTimeline {
    fn to_json(&self) -> Value {
        let int = |v: u64| Value::Number(Number::PosInt(v));
        let ints = |v: &[u64]| Value::Array(v.iter().map(|&x| int(x)).collect());
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|w| {
                let mut m = BTreeMap::new();
                m.insert("index".to_owned(), int(w.index));
                m.insert("injected".to_owned(), int(w.injected));
                m.insert("completed".to_owned(), int(w.completed));
                m.insert("retries".to_owned(), int(w.retries));
                m.insert("poisoned".to_owned(), int(w.poisoned));
                m.insert("delivered_msgs".to_owned(), int(w.delivered_msgs));
                m.insert("delivered_bytes".to_owned(), int(w.delivered_bytes));
                m.insert("milli_gbps".to_owned(), int(w.milli_gbps));
                m.insert("pending_peak".to_owned(), int(w.pending_peak));
                m.insert("latency_mean_ns".to_owned(), int(w.latency_mean_ns));
                m.insert("latency_p50_ns".to_owned(), int(w.latency_p50_ns));
                m.insert("latency_p99_ns".to_owned(), int(w.latency_p99_ns));
                Value::Object(m)
            })
            .collect();
        let obs = &self.observability;
        let mut heat = BTreeMap::new();
        heat.insert("node_delivered".to_owned(), obs.node_delivered.to_json());
        heat.insert("link_busy".to_owned(), obs.link_busy.to_json());
        heat.insert("zbox_reads".to_owned(), obs.zbox_reads.to_json());
        heat.insert("zbox_busy".to_owned(), obs.zbox_busy.to_json());
        let p = &obs.profile;
        let mut profile = BTreeMap::new();
        profile.insert("epochs".to_owned(), int(p.epochs() as u64));
        profile.insert("shards".to_owned(), int(p.shard_count() as u64));
        profile.insert("busy_per_shard".to_owned(), ints(&p.busy_per_shard()));
        profile.insert("merged_per_shard".to_owned(), ints(&p.merged_per_shard()));
        profile.insert("critical_shard".to_owned(), int(p.critical_shard() as u64));
        profile.insert("imbalance_milli".to_owned(), int(p.imbalance_milli()));
        let mut totals = BTreeMap::new();
        totals.insert("completed".to_owned(), int(self.result.completed));
        totals.insert("retries".to_owned(), int(self.result.retries));
        totals.insert(
            "poisoned".to_owned(),
            int(self.result.poisoned.len() as u64),
        );
        totals.insert(
            "faults_applied".to_owned(),
            int(self.result.faults_applied.len() as u64),
        );
        totals.insert("elapsed_ps".to_owned(), int(self.result.elapsed.as_ps()));
        totals.insert(
            "latency_mean_ns".to_owned(),
            int(self.result.mean_latency.as_ps() / 1_000),
        );
        totals.insert(
            "latency_p50_ns".to_owned(),
            int(self.result.p50_latency.as_ps() / 1_000),
        );
        totals.insert(
            "latency_p99_ns".to_owned(),
            int(self.result.p99_latency.as_ps() / 1_000),
        );
        totals.insert(
            "events_processed".to_owned(),
            int(self.registry.counter("sim.events_processed")),
        );
        let mut m = BTreeMap::new();
        m.insert("id".to_owned(), Value::String(self.id.clone()));
        m.insert("title".to_owned(), Value::String(self.title.clone()));
        m.insert(
            "knee_window".to_owned(),
            self.knee.map_or(Value::Null, |k| int(k as u64)),
        );
        m.insert("windows".to_owned(), Value::Array(windows));
        m.insert("heatmaps".to_owned(), Value::Object(heat));
        m.insert("profile".to_owned(), Value::Object(profile));
        m.insert("totals".to_owned(), Value::Object(totals));
        Value::Object(m)
    }

    fn to_text(&self) -> String {
        let mut out = format!(
            "{} — {} ({} windows of {} µs)\n",
            self.id,
            self.title,
            self.windows.len(),
            self.observability.window_ps / 1_000_000,
        );
        out.push_str("  win  inject  complete  retry  poison   mGb/s  depth  p50 ns  p99 ns\n");
        for w in &self.windows {
            out.push_str(&format!(
                "  {:>3}  {:>6}  {:>8}  {:>5}  {:>6}  {:>6}  {:>5}  {:>6}  {:>6}\n",
                w.index,
                w.injected,
                w.completed,
                w.retries,
                w.poisoned,
                w.milli_gbps,
                w.pending_peak,
                w.latency_p50_ns,
                w.latency_p99_ns,
            ));
        }
        match self.knee {
            Some(k) => out.push_str(&format!(
                "  saturation knee: window {k} (p99 ≥ 2× baseline, throughput flat)\n"
            )),
            None => out.push_str("  saturation knee: none\n"),
        }
        out.push_str("  messages delivered per node (P×Q):\n");
        for line in self.observability.node_delivered.to_ascii().lines() {
            out.push_str(&format!("    {line}\n"));
        }
        let p = &self.observability.profile;
        out.push_str(&format!(
            "  engine: {} epochs over {} shards, busy {:?} events, critical shard {}, imbalance {}.{:03}x\n",
            p.epochs(),
            p.shard_count(),
            p.busy_per_shard(),
            p.critical_shard(),
            p.imbalance_milli() / 1000,
            p.imbalance_milli() % 1000,
        ));
        if let Some(wall) = p
            .samples
            .iter()
            .try_fold(vec![0u64; p.shard_count()], |mut acc, s| {
                let w = s.wall_ns.as_ref()?;
                for (a, &n) in acc.iter_mut().zip(w) {
                    *a += n;
                }
                Some(acc)
            })
        {
            out.push_str(&format!("  wall-clock busy per shard: {wall:?} ns\n"));
        }
        out
    }
}

impl TimelineReport {
    /// The JSON artifact (`results/timeline.json`) — all integers, fixed
    /// section order, wall-clock excluded.
    pub fn to_json(&self) -> Value {
        let mut engine = BTreeMap::new();
        engine.insert(
            "shards".to_owned(),
            Value::Number(Number::PosInt(TIMELINE_SHARDS as u64)),
        );
        engine.insert(
            "threads".to_owned(),
            Value::Number(Number::PosInt(TIMELINE_THREADS as u64)),
        );
        let mut root = BTreeMap::new();
        root.insert("id".to_owned(), Value::String("timeline".to_owned()));
        root.insert(
            "window_ps".to_owned(),
            Value::Number(Number::PosInt(self.window_ps)),
        );
        root.insert("engine".to_owned(), Value::Object(engine));
        root.insert(
            "sections".to_owned(),
            Value::Array(self.sections.iter().map(|s| s.to_json()).collect()),
        );
        Value::Object(root)
    }

    /// Plain-text rendering: one windowed table, heatmap, and engine
    /// profile block per section.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "timeline — sim-time-resolved campaign metrics, heatmaps, and engine profile\n\n",
        );
        for s in &self.sections {
            out.push_str(&s.to_text());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_kernel::par::set_jobs;

    #[test]
    fn knee_finds_first_saturated_window() {
        // p99 doubles at index 3 but throughput still grows there; both
        // conditions first hold at index 4.
        let gbps = [100, 200, 300, 400, 390, 380];
        let p99 = [0, 500, 600, 1000, 1100, 1200];
        assert_eq!(saturation_knee(&gbps, &p99), Some(4));
        // Never saturates.
        assert_eq!(saturation_knee(&[1, 2, 3], &[500, 600, 700]), None);
        // No completions at all.
        assert_eq!(saturation_knee(&[0, 0], &[0, 0]), None);
        // Baseline skips leading empty windows.
        assert_eq!(saturation_knee(&[0, 9, 8], &[0, 400, 800]), Some(2));
    }

    #[test]
    fn window_sums_equal_registry_totals_exactly() {
        let report = timeline_report(false);
        assert_eq!(report.sections.len(), 2);
        for s in &report.sections {
            let totals = s.observability.timeline.totals();
            let sum = |f: &dyn Fn(&WindowRow) -> u64| s.windows.iter().map(f).sum::<u64>();
            assert_eq!(
                sum(&|w| w.completed),
                s.registry.counter("coherence.completed"),
                "{}: windowed completions must partition the registry total",
                s.id
            );
            assert_eq!(sum(&|w| w.retries), s.registry.counter("coherence.retries"));
            assert_eq!(sum(&|w| w.poisoned), s.result.poisoned.len() as u64);
            assert_eq!(sum(&|w| w.completed), s.result.completed);
            assert_eq!(
                sum(&|w| w.delivered_msgs),
                totals.counter("net.delivered"),
                "{}: dense rows must cover every touched window",
                s.id
            );
            assert_eq!(
                s.windows.iter().map(|w| w.latency_p99_ns).max(),
                Some(s.result.p99_latency.as_ps() / 1_000).map(|p| {
                    // The run-wide p99 is bounded by the worst window p99;
                    // compare loosely (windowed quantiles resample).
                    let worst = s.windows.iter().map(|w| w.latency_p99_ns).max().unwrap();
                    assert!(worst >= p / 2, "{}: window p99s lost the tail", s.id);
                    worst
                }),
            );
            // Heatmap mass balances the registry too.
            assert_eq!(
                s.observability.zbox_reads.total(),
                s.registry.counter("zbox.accesses"),
                "{}: Zbox heatmap mass",
                s.id
            );
            // The engine fixture is pinned, not inherited from the CLI.
            assert_eq!(s.registry.gauge("engine.shards"), TIMELINE_SHARDS as u64);
            assert_eq!(s.registry.gauge("engine.threads"), TIMELINE_THREADS as u64);
            assert_eq!(s.observability.profile.shard_count(), TIMELINE_SHARDS);
        }
    }

    #[test]
    fn chaos_section_strikes_every_fault_kind() {
        let report = timeline_report(false);
        let chaos = &report.sections[1];
        assert_eq!(chaos.id, "chaos");
        assert_eq!(
            chaos.result.faults_applied.len(),
            9,
            "all nine fault kinds must strike: {:?}",
            chaos.result.faults_applied
        );
        assert!(chaos.result.crc_retransmits >= 1, "FlitCorrupt must bite");
        // The resilience section loses real traffic to its cuts.
        let res = &report.sections[0];
        assert_eq!(res.result.faults_applied.len(), 3);
        assert!(res.result.retries > 0, "cuts must cost retries");
        assert!(res.windows.len() >= 5, "run must span several windows");
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let render = || {
            let r = timeline_report(false);
            (
                serde_json::to_string_pretty(&r.to_json()).expect("serialises"),
                r.to_text(),
            )
        };
        set_jobs(1);
        let sequential = render();
        set_jobs(4);
        let threaded = render();
        set_jobs(0);
        assert_eq!(sequential, threaded, "worker count changed the artifact");
    }

    #[test]
    fn traced_report_carries_profiler_lanes_without_perturbing_windows() {
        let plain = timeline_report(false);
        let traced = timeline_report_with(WINDOW_PS, true, true);
        for (p, t) in plain.sections.iter().zip(&traced.sections) {
            assert_eq!(p.windows, t.windows, "{}: tracing perturbed windows", p.id);
            assert_eq!(p.knee, t.knee);
            let trace = t.trace.as_ref().expect("trace requested");
            let body = trace.to_json_string();
            assert!(
                body.contains("epoch shards"),
                "{}: per-shard profiler lanes missing",
                p.id
            );
        }
        // Wall-clock is a measurement: the JSON bytes must not change.
        assert_eq!(
            serde_json::to_string(&plain.to_json()).expect("serialises"),
            serde_json::to_string(&traced.to_json()).expect("serialises"),
        );
    }
}
