//! Timeout-and-retry machinery for coherence transactions under faults.
//!
//! The GS1280's protocol has no ACK/NAK dance in the common case — the
//! fabric delivers every packet. Live fault injection breaks that
//! assumption: a message can be lost with the wire it occupied. This module
//! supplies what the system layer needs to survive that:
//!
//! * [`RetryPolicy`] — per-transaction timeout with bounded exponential
//!   backoff and a poison threshold (the NAK path: a transaction past
//!   `max_retries` is poisoned and reported, never silently hung);
//! * [`PendingSet`] — the outstanding-transaction table, deterministic in
//!   iteration order so fault campaigns replay bit-identically;
//! * [`Watchdog`] — a livelock detector: if no transaction completes for a
//!   whole window while some are outstanding, it reports the stuck set with
//!   named causes instead of letting the run spin forever.

use alphasim_kernel::{SimDuration, SimTime};
use alphasim_telemetry::Registry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// When and how often a lost transaction is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// How long a transaction may stay unanswered before it is retried.
    pub timeout: SimDuration,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on the backoff, so retries never stall unboundedly.
    pub backoff_cap: SimDuration,
    /// Retries allowed before the transaction is poisoned (the NAK path).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// Defaults sized for the GS1280 model: a timeout comfortably above the
    /// worst loaded round trip (~10 µs), microsecond-scale backoff capped at
    /// 16× base, and a handful of attempts before poisoning.
    pub fn gs1280_default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_us(10.0),
            backoff_base: SimDuration::from_us(1.0),
            backoff_cap: SimDuration::from_us(16.0),
            max_retries: 6,
        }
    }

    /// Backoff before retry number `attempt` (1-based): `base * 2^(attempt-1)`,
    /// saturating, never above [`backoff_cap`](Self::backoff_cap).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let doublings = attempt.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_cap)
    }

    /// The deadline for a (re)issue at `now`.
    pub fn deadline(&self, now: SimTime) -> SimTime {
        now + self.timeout
    }
}

/// One outstanding coherence transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTx {
    /// Requesting CPU (node index).
    pub src: usize,
    /// Home directory node index.
    pub home: usize,
    /// When the transaction was first issued (latency is measured from
    /// here, across every retry).
    pub first_issued: SimTime,
    /// When the current attempt times out.
    pub deadline: SimTime,
    /// Issue attempts so far (1 = the original send).
    pub attempts: u32,
}

/// The outstanding-transaction table, keyed by the caller's correlation
/// tag. A `BTreeMap` keeps iteration deterministic, so campaigns that scan
/// for overdue transactions replay identically.
#[derive(Debug, Clone, Default)]
pub struct PendingSet {
    txs: BTreeMap<u64, PendingTx>,
    completed: u64,
    retries: u64,
    /// Most transactions simultaneously outstanding (the occupancy the
    /// paper's out-of-order window sizing bounds).
    peak: usize,
}

impl PendingSet {
    /// An empty table.
    pub fn new() -> Self {
        PendingSet::default()
    }

    /// Track a newly issued transaction.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is already outstanding.
    pub fn insert(&mut self, tag: u64, tx: PendingTx) {
        let prev = self.txs.insert(tag, tx);
        assert!(prev.is_none(), "tag {tag:#x} already outstanding");
        self.peak = self.peak.max(self.txs.len());
    }

    /// Complete `tag`, returning its record — or `None` if it is unknown
    /// (a duplicate response from a retried transaction; callers ignore it).
    pub fn complete(&mut self, tag: u64) -> Option<PendingTx> {
        let tx = self.txs.remove(&tag);
        if tx.is_some() {
            self.completed += 1;
        }
        tx
    }

    /// The record for `tag`, if outstanding.
    pub fn get(&self, tag: u64) -> Option<&PendingTx> {
        self.txs.get(&tag)
    }

    /// Record a retry of `tag`: bump its attempt count and give it a fresh
    /// `deadline`. Returns the new attempt count.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not outstanding.
    pub fn retry(&mut self, tag: u64, deadline: SimTime) -> u32 {
        let tx = self.txs.get_mut(&tag).expect("retry of unknown tag");
        tx.attempts += 1;
        tx.deadline = deadline;
        self.retries += 1;
        tx.attempts
    }

    /// Drop `tag` from the table without counting a completion (the poison
    /// path). Returns its record.
    pub fn poison(&mut self, tag: u64) -> Option<PendingTx> {
        self.txs.remove(&tag)
    }

    /// Tags whose deadline has passed at `now`, in ascending tag order.
    pub fn overdue(&self, now: SimTime) -> Vec<u64> {
        self.txs
            .iter()
            .filter(|(_, tx)| tx.deadline <= now)
            .map(|(&tag, _)| tag)
            .collect()
    }

    /// Outstanding transactions, in ascending tag order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PendingTx)> {
        self.txs.iter().map(|(&tag, tx)| (tag, tx))
    }

    /// Outstanding transaction count.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retries recorded so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Most transactions simultaneously outstanding so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Export this table's counters into a telemetry registry under the
    /// `coherence.` namespace.
    pub fn export_metrics(&self, registry: &mut Registry) {
        registry.counter_add("coherence.completed", self.completed);
        registry.counter_add("coherence.retries", self.retries);
        registry.gauge_max("coherence.pending_peak", self.peak as u64);
    }
}

/// One transaction named by a [`LivelockReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckTx {
    /// Correlation tag.
    pub tag: u64,
    /// Requesting CPU.
    pub src: usize,
    /// Home directory node.
    pub home: usize,
    /// Issue attempts so far.
    pub attempts: u32,
    /// How long it has been outstanding (since first issue).
    pub outstanding_for: SimDuration,
}

/// What the watchdog saw when delivery progress stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivelockReport {
    /// When the watchdog fired.
    pub at: SimTime,
    /// How long the system had made no progress.
    pub stalled_for: SimDuration,
    /// The outstanding transactions, ascending by tag.
    pub stuck: Vec<StuckTx>,
}

impl LivelockReport {
    /// Human-readable summary naming every stuck transaction.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "no delivery progress for {} with {} transaction(s) outstanding:",
            self.stalled_for,
            self.stuck.len()
        );
        for tx in &self.stuck {
            s.push_str(&format!(
                "\n  tag {:#x}: cpu {} -> home {}, attempt {}, outstanding {}",
                tx.tag, tx.src, tx.home, tx.attempts, tx.outstanding_for
            ));
        }
        s
    }
}

/// Livelock detector: fires when no transaction has completed for `window`
/// while some are outstanding.
#[derive(Debug, Clone)]
pub struct Watchdog {
    window: SimDuration,
    last_progress: SimTime,
    fired: u64,
}

impl Watchdog {
    /// A watchdog with the given no-progress window.
    pub fn new(window: SimDuration) -> Self {
        Watchdog {
            window,
            last_progress: SimTime::ZERO,
            fired: 0,
        }
    }

    /// The configured no-progress window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Record forward progress (a delivery or completion) at `now`.
    pub fn note_progress(&mut self, now: SimTime) {
        self.last_progress = self.last_progress.max(now);
    }

    /// Check for livelock at `now`: `Some` report if nothing has completed
    /// for a full window while `pending` transactions are outstanding.
    /// Firing counts as progress, so a still-stuck system re-fires one
    /// window later rather than on every check.
    pub fn check(&mut self, now: SimTime, pending: &PendingSet) -> Option<LivelockReport> {
        if pending.is_empty() || now.since(self.last_progress) < self.window {
            return None;
        }
        self.fired += 1;
        let report = LivelockReport {
            at: now,
            stalled_for: now.since(self.last_progress),
            stuck: pending
                .iter()
                .map(|(tag, tx)| StuckTx {
                    tag,
                    src: tx.src,
                    home: tx.home,
                    attempts: tx.attempts,
                    outstanding_for: now.since(tx.first_issued),
                })
                .collect(),
        };
        self.last_progress = now;
        Some(report)
    }

    /// [`check`](Self::check) across several outstanding-transaction
    /// tables at once — the epoch-parallel engine keeps one `PendingSet`
    /// per region. Fires when *every* table together has made no progress
    /// for a full window while any transaction is outstanding; the report
    /// names the stuck transactions of all tables merged in ascending tag
    /// order, so the result is independent of how regions partition them.
    pub fn check_many(&mut self, now: SimTime, pending: &[&PendingSet]) -> Option<LivelockReport> {
        let outstanding: usize = pending.iter().map(|set| set.len()).sum();
        if outstanding == 0 || now.since(self.last_progress) < self.window {
            return None;
        }
        self.fired += 1;
        let mut stuck: Vec<StuckTx> = pending
            .iter()
            .flat_map(|set| set.iter())
            .map(|(tag, tx)| StuckTx {
                tag,
                src: tx.src,
                home: tx.home,
                attempts: tx.attempts,
                outstanding_for: now.since(tx.first_issued),
            })
            .collect();
        stuck.sort_by_key(|tx| tx.tag);
        let report = LivelockReport {
            at: now,
            stalled_for: now.since(self.last_progress),
            stuck,
        };
        self.last_progress = now;
        Some(report)
    }

    /// How many times the watchdog has fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Export the firing count into a telemetry registry under the
    /// `coherence.` namespace.
    pub fn export_metrics(&self, registry: &mut Registry) {
        registry.counter_add("coherence.watchdog_fired", self.fired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::gs1280_default();
        assert_eq!(p.backoff(1), SimDuration::from_us(1.0));
        assert_eq!(p.backoff(2), SimDuration::from_us(2.0));
        assert_eq!(p.backoff(3), SimDuration::from_us(4.0));
        assert_eq!(p.backoff(5), SimDuration::from_us(16.0));
        // The cap binds: every later attempt, however extreme, stays at it.
        for attempt in 6..200 {
            assert_eq!(
                p.backoff(attempt),
                p.backoff_cap,
                "attempt {attempt} exceeded the backoff cap"
            );
        }
    }

    #[test]
    fn backoff_never_overflows() {
        let p = RetryPolicy {
            timeout: SimDuration::from_us(1.0),
            backoff_base: SimDuration::from_us(1.0),
            backoff_cap: SimDuration::from_ps(u64::MAX),
            max_retries: 3,
        };
        // 2^20 doublings saturate instead of wrapping.
        assert!(p.backoff(u32::MAX) <= p.backoff_cap);
    }

    #[test]
    fn pending_set_tracks_completion_and_duplicates() {
        let mut set = PendingSet::new();
        let tx = PendingTx {
            src: 1,
            home: 2,
            first_issued: t(0.0),
            deadline: t(10.0),
            attempts: 1,
        };
        set.insert(7, tx);
        set.insert(9, tx);
        assert_eq!(set.len(), 2);
        assert_eq!(set.complete(7).unwrap().home, 2);
        assert!(set.complete(7).is_none(), "duplicate response is ignored");
        assert_eq!(set.completed(), 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn pending_set_peak_and_metric_export() {
        let mut set = PendingSet::new();
        let tx = PendingTx {
            src: 1,
            home: 2,
            first_issued: t(0.0),
            deadline: t(10.0),
            attempts: 1,
        };
        set.insert(1, tx);
        set.insert(2, tx);
        set.insert(3, tx);
        set.complete(1);
        set.complete(2);
        // Peak is a high-water mark: completions never lower it.
        assert_eq!(set.peak(), 3);
        set.insert(4, tx);
        assert_eq!(set.peak(), 3, "re-filling below the peak keeps it");

        let mut registry = Registry::default();
        set.export_metrics(&mut registry);
        assert_eq!(registry.counter("coherence.completed"), 2);
        assert_eq!(registry.counter("coherence.retries"), 0);
        assert_eq!(registry.gauge("coherence.pending_peak"), 3);

        let dog = Watchdog::new(SimDuration::from_us(1.0));
        dog.export_metrics(&mut registry);
        assert_eq!(registry.counter("coherence.watchdog_fired"), 0);
    }

    #[test]
    fn overdue_scans_are_deterministic_and_deadline_driven() {
        let mut set = PendingSet::new();
        for (tag, deadline) in [(5u64, 10.0), (3, 20.0), (8, 10.0)] {
            set.insert(
                tag,
                PendingTx {
                    src: 0,
                    home: 1,
                    first_issued: t(0.0),
                    deadline: t(deadline),
                    attempts: 1,
                },
            );
        }
        assert_eq!(set.overdue(t(5.0)), Vec::<u64>::new());
        assert_eq!(set.overdue(t(10.0)), vec![5, 8], "ascending tag order");
        assert_eq!(set.overdue(t(30.0)), vec![3, 5, 8]);
        let attempts = set.retry(5, t(40.0));
        assert_eq!(attempts, 2);
        assert_eq!(set.overdue(t(30.0)), vec![3, 8], "retried tag re-armed");
        assert_eq!(set.retries(), 1);
    }

    #[test]
    fn poison_threshold_binds_at_exactly_max_retries() {
        // The system layer poisons when `attempts > max_retries`. With
        // max_retries = 2, walk one transaction through both allowed
        // retries and check the threshold flips at attempt 3 exactly —
        // not one retry earlier, not one later.
        let p = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::gs1280_default()
        };
        let mut set = PendingSet::new();
        set.insert(
            1,
            PendingTx {
                src: 0,
                home: 1,
                first_issued: t(0.0),
                deadline: t(10.0),
                attempts: 1,
            },
        );
        let over = |set: &PendingSet| set.get(1).expect("outstanding").attempts > p.max_retries;
        assert!(!over(&set), "the original send is not past the threshold");
        assert_eq!(set.retry(1, t(20.0)), 2);
        assert!(!over(&set), "retry number max_retries is still allowed");
        assert_eq!(set.retry(1, t(30.0)), 3);
        assert!(over(&set), "attempt max_retries + 1 must poison");
        let tx = set.poison(1).expect("still outstanding");
        assert_eq!(tx.attempts, 3);
        assert!(set.is_empty());
        assert_eq!(set.completed(), 0, "poison is not a completion");
        assert_eq!(set.retries(), 2);
    }

    #[test]
    fn backoff_cap_saturation_is_exact() {
        let p = RetryPolicy::gs1280_default();
        // Attempt 5 is the first at the 16 µs cap (1 → 2 → 4 → 8 → 16);
        // attempt 4 is strictly below it.
        assert!(p.backoff(4) < p.backoff_cap);
        assert_eq!(p.backoff(4), SimDuration::from_us(8.0));
        assert_eq!(p.backoff(5), p.backoff_cap);
        // A cap equal to the base binds from the very first attempt.
        let tight = RetryPolicy {
            backoff_cap: p.backoff_base,
            ..p
        };
        assert_eq!(tight.backoff(1), tight.backoff_cap);
        assert_eq!(tight.backoff(100), tight.backoff_cap);
    }

    #[test]
    fn zero_retry_policy_poisons_on_the_first_timeout() {
        // max_retries = 0: the original send is the only attempt the
        // threshold admits.
        let p = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::gs1280_default()
        };
        let first_attempt = 1u32;
        assert!(first_attempt > p.max_retries, "attempt 1 is already past");
        // Backoff for the (never-taken) first retry is still well-defined.
        assert_eq!(p.backoff(1), p.backoff_base);
    }

    #[test]
    fn watchdog_fires_only_after_a_quiet_window_with_work_outstanding() {
        let mut dog = Watchdog::new(SimDuration::from_us(50.0));
        let mut set = PendingSet::new();
        // Nothing outstanding: never fires, however long the silence.
        assert!(dog.check(t(1000.0), &set).is_none());
        set.insert(
            0xdead,
            PendingTx {
                src: 3,
                home: 4,
                first_issued: t(1000.0),
                deadline: t(1010.0),
                attempts: 2,
            },
        );
        dog.note_progress(t(1000.0));
        assert!(dog.check(t(1040.0), &set).is_none(), "window not elapsed");
        let report = dog.check(t(1050.0), &set).expect("stalled a full window");
        assert_eq!(report.stuck.len(), 1);
        assert_eq!(report.stuck[0].tag, 0xdead);
        assert_eq!(report.stuck[0].attempts, 2);
        assert_eq!(report.stalled_for, SimDuration::from_us(50.0));
        let text = report.describe();
        assert!(text.contains("0xdead"), "{text}");
        assert!(text.contains("cpu 3 -> home 4"), "{text}");
        // Firing re-arms rather than re-firing every check.
        assert!(dog.check(t(1051.0), &set).is_none());
        assert_eq!(dog.fired(), 1);
    }

    #[test]
    fn check_many_merges_regions_in_tag_order() {
        let mut dog = Watchdog::new(SimDuration::from_us(50.0));
        let tx = |src: usize| PendingTx {
            src,
            home: src + 1,
            first_issued: t(1000.0),
            deadline: t(1010.0),
            attempts: 1,
        };
        let mut region_a = PendingSet::new();
        let mut region_b = PendingSet::new();
        region_a.insert(9, tx(0));
        region_b.insert(2, tx(4));
        region_b.insert(5, tx(6));
        dog.note_progress(t(1000.0));
        // Empty slice / no outstanding work: silent, like `check`.
        assert!(dog.check_many(t(2000.0), &[]).is_none());
        assert!(dog.check_many(t(2000.0), &[&PendingSet::new()]).is_none());
        assert!(
            dog.check_many(t(1040.0), &[&region_a, &region_b]).is_none(),
            "window not elapsed"
        );
        let report = dog
            .check_many(t(1050.0), &[&region_a, &region_b])
            .expect("stalled a full window");
        let tags: Vec<u64> = report.stuck.iter().map(|s| s.tag).collect();
        assert_eq!(tags, vec![2, 5, 9], "merged ascending regardless of region");
        // Same merge, regions swapped: identical report.
        let mut dog2 = Watchdog::new(SimDuration::from_us(50.0));
        dog2.note_progress(t(1000.0));
        let swapped = dog2
            .check_many(t(1050.0), &[&region_b, &region_a])
            .expect("fires identically");
        assert_eq!(report, swapped);
        // Firing re-arms.
        assert!(dog.check_many(t(1051.0), &[&region_a]).is_none());
        assert_eq!(dog.fired(), 1);
    }
}
