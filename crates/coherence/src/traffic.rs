//! Protocol traffic accounting: which CPU pairs a workload's coherence
//! transactions put bytes between.
//!
//! Xmesh's headline use in the paper (§6, §8) is recognising traffic
//! patterns — hot spots, "heavy traffic on the IP links (indicate poor
//! memory locality)". A [`TrafficMatrix`] accumulates the fabric legs of
//! [`Transaction`]s so a workload's pattern can be classified *before* (or
//! without) running the network simulator, and cross-validated against it.

use serde::{Deserialize, Serialize};

use crate::transaction::Transaction;

/// Bytes exchanged between every ordered CPU pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    bytes: Vec<u64>,
}

impl TrafficMatrix {
    /// A zero matrix over `n` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one CPU");
        TrafficMatrix {
            n,
            bytes: vec![0; n * n],
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.n
    }

    /// Accumulate every fabric-crossing leg of `txn`.
    ///
    /// # Panics
    ///
    /// Panics if a leg names a CPU outside the matrix.
    pub fn record(&mut self, txn: &Transaction) {
        for leg in txn.critical.iter().chain(&txn.side) {
            if leg.is_remote() {
                assert!(leg.from < self.n && leg.to < self.n, "leg off-matrix");
                self.bytes[leg.from * self.n + leg.to] += leg.bytes;
            }
        }
    }

    /// Bytes sent from `src` to `dst`.
    pub fn between(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Total fabric bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes received by each CPU.
    pub fn inbound(&self) -> Vec<u64> {
        (0..self.n)
            .map(|dst| (0..self.n).map(|src| self.between(src, dst)).sum())
            .collect()
    }

    /// Bytes sent by each CPU.
    pub fn outbound(&self) -> Vec<u64> {
        (0..self.n)
            .map(|src| (0..self.n).map(|dst| self.between(src, dst)).sum())
            .collect()
    }

    /// Hot-spot classification, the Xmesh rule of §6: a CPU whose combined
    /// in+out traffic exceeds `factor` × the mean of the others.
    pub fn hot_spots(&self, factor: f64) -> Vec<usize> {
        let inb = self.inbound();
        let out = self.outbound();
        let load: Vec<u64> = inb.iter().zip(&out).map(|(a, b)| a + b).collect();
        let mut hot = Vec::new();
        for i in 0..self.n {
            let others: f64 = load
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &v)| v as f64)
                .sum::<f64>()
                / (self.n - 1).max(1) as f64;
            if load[i] as f64 > factor * others.max(1.0) {
                hot.push(i);
            }
        }
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{AccessKind, Directory};

    #[test]
    fn records_remote_legs_only() {
        let mut dir = Directory::new();
        let mut tm = TrafficMatrix::new(4);
        // Local access: no fabric bytes.
        tm.record(&dir.access(0, 0, 1, AccessKind::Read));
        assert_eq!(tm.total(), 0);
        // Remote clean read: request 16B + block 80B.
        tm.record(&dir.access(0, 2, 2, AccessKind::Read));
        assert_eq!(tm.between(2, 0), 16);
        assert_eq!(tm.between(0, 2), 80);
        assert_eq!(tm.total(), 96);
    }

    #[test]
    fn dirty_read_traffic_involves_three_parties() {
        let mut dir = Directory::new();
        let mut tm = TrafficMatrix::new(8);
        dir.access(0, 3, 7, AccessKind::Write);
        tm.record(&dir.access(0, 5, 7, AccessKind::Read));
        assert_eq!(tm.between(5, 0), 16); // request
        assert_eq!(tm.between(0, 3), 16); // forward
        assert_eq!(tm.between(3, 5), 80); // data
        assert_eq!(tm.between(3, 0), 80); // sharing write-back
    }

    #[test]
    fn inbound_outbound_conserve_total() {
        let mut dir = Directory::new();
        let mut tm = TrafficMatrix::new(8);
        for i in 0..100u64 {
            let cpu = (i % 7 + 1) as usize;
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            tm.record(&dir.access(0, cpu, i % 16, kind));
        }
        assert_eq!(tm.inbound().iter().sum::<u64>(), tm.total());
        assert_eq!(tm.outbound().iter().sum::<u64>(), tm.total());
    }

    #[test]
    fn hot_spot_detection_on_all_to_one() {
        let mut dir = Directory::new();
        let mut tm = TrafficMatrix::new(16);
        // Everyone reads distinct lines homed at CPU 0.
        for cpu in 1..16 {
            for l in 0..10u64 {
                tm.record(&dir.access(0, cpu, (cpu as u64) * 100 + l, AccessKind::Read));
            }
        }
        assert_eq!(tm.hot_spots(4.0), vec![0]);
    }

    #[test]
    fn uniform_traffic_has_no_hot_spot() {
        let mut dir = Directory::new();
        let mut tm = TrafficMatrix::new(8);
        for src in 0..8usize {
            for dst in 0..8usize {
                if src != dst {
                    tm.record(&dir.access(dst, src, (src * 8 + dst) as u64, AccessKind::Read));
                }
            }
        }
        assert!(tm.hot_spots(4.0).is_empty());
    }
}
