//! Protocol transactions: the message legs a coherence operation generates.

use alphasim_net::MessageClass;
use serde::{Deserialize, Serialize};

/// Payload sizes on the 21364 fabric: short command packets and a 64-byte
/// cache block plus header.
pub mod bytes {
    /// A command packet (Request / Forward / invalidate).
    pub const COMMAND: u64 = 16;
    /// A data-bearing response: 64-byte block + header.
    pub const BLOCK: u64 = 80;
}

/// One protocol message between two CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Leg {
    /// Sending CPU.
    pub from: usize,
    /// Receiving CPU.
    pub to: usize,
    /// Coherence class (determines the virtual channel).
    pub class: MessageClass,
    /// Packet size in bytes.
    pub bytes: u64,
}

impl Leg {
    /// A command-sized leg.
    pub fn command(from: usize, to: usize, class: MessageClass) -> Self {
        Leg {
            from,
            to,
            class,
            bytes: bytes::COMMAND,
        }
    }

    /// A block-carrying leg.
    pub fn block(from: usize, to: usize, class: MessageClass) -> Self {
        Leg {
            from,
            to,
            class,
            bytes: bytes::BLOCK,
        }
    }

    /// Whether the leg actually crosses the fabric.
    pub fn is_remote(&self) -> bool {
        self.from != self.to
    }
}

/// What finally supplied the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedBy {
    /// The home node's memory (a "read-clean" in the paper's Fig. 12).
    Memory,
    /// Another CPU's cache (a "read-dirty": the block was Exclusive
    /// elsewhere and was forwarded).
    OwnerCache,
    /// The requester already had sufficient rights; no transaction needed.
    AlreadyHeld,
}

/// The full message pattern of one coherence operation.
///
/// `critical` legs happen strictly in sequence and determine the load-to-use
/// latency; `side` legs (invalidations, sharing write-backs) consume fabric
/// bandwidth but are off the critical path — the 21364's forwarding protocol
/// responds to the requester without waiting for them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// In-order critical-path legs.
    pub critical: Vec<Leg>,
    /// Concurrent off-critical-path legs.
    pub side: Vec<Leg>,
    /// Data source.
    pub served_by: ServedBy,
}

impl Transaction {
    /// A purely local operation.
    pub fn local(served_by: ServedBy) -> Self {
        Transaction {
            critical: Vec::new(),
            side: Vec::new(),
            served_by,
        }
    }

    /// Number of critical legs that cross the fabric.
    pub fn remote_hop_legs(&self) -> usize {
        self.critical.iter().filter(|l| l.is_remote()).count()
    }

    /// Total bytes this transaction puts on the fabric (critical + side,
    /// remote legs only).
    pub fn fabric_bytes(&self) -> u64 {
        self.critical
            .iter()
            .chain(&self.side)
            .filter(|l| l.is_remote())
            .map(|l| l.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leg_constructors() {
        let c = Leg::command(0, 1, MessageClass::Request);
        assert_eq!(c.bytes, 16);
        assert!(c.is_remote());
        let b = Leg::block(2, 2, MessageClass::BlockResponse);
        assert_eq!(b.bytes, 80);
        assert!(!b.is_remote());
    }

    #[test]
    fn fabric_bytes_ignores_local_legs() {
        let t = Transaction {
            critical: vec![
                Leg::command(0, 0, MessageClass::Request), // local, free
                Leg::block(1, 0, MessageClass::BlockResponse),
            ],
            side: vec![Leg::command(1, 2, MessageClass::Forward)],
            served_by: ServedBy::Memory,
        };
        assert_eq!(t.fabric_bytes(), 80 + 16);
        assert_eq!(t.remote_hop_legs(), 1);
    }

    #[test]
    fn local_transaction_is_empty() {
        let t = Transaction::local(ServedBy::AlreadyHeld);
        assert_eq!(t.fabric_bytes(), 0);
        assert!(t.critical.is_empty() && t.side.is_empty());
    }
}
