//! The Alpha 21364's directory-based, forwarding cache-coherence protocol
//! (paper §2).
//!
//! Three message types drive the protocol: a requesting processor sends a
//! **Request** to the home directory; if the block is Exclusive elsewhere
//! the directory sends a **Forward** to the owner, who sends the
//! **Response** straight to the requester (and a sharing write-back to the
//! directory); if the block is Shared and the request modifies it,
//! Forward/invalidates go to every sharer while the Response returns
//! immediately.
//!
//! [`Directory`] is the functional state machine; it emits
//! [`Transaction`]s — ordered critical-path [`Leg`]s plus concurrent side
//! legs — which the machine models in `alphasim-system` turn into latency
//! (Figs. 12–14: read-clean vs. the 3-hop read-dirty) and fabric traffic.
//!
//! # Examples
//!
//! ```
//! use alphasim_coherence::{Directory, AccessKind, ServedBy};
//!
//! let mut dir = Directory::new();
//! let t = dir.access(0, 1, 100, AccessKind::Read);
//! assert_eq!(t.served_by, ServedBy::Memory); // read-clean
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod directory;
pub mod retry;
mod traffic;
mod transaction;

pub use directory::{AccessKind, Directory, DirectoryStats, LineState};
pub use retry::{LivelockReport, PendingSet, PendingTx, RetryPolicy, StuckTx, Watchdog};
pub use traffic::TrafficMatrix;
pub use transaction::{bytes, Leg, ServedBy, Transaction};
