//! The global directory protocol of the 21364 (paper §2): a forwarding
//! protocol with Request, Forward, and Response message types.

use std::collections::{BTreeMap, BTreeSet};

use alphasim_net::MessageClass;
use serde::{Deserialize, Serialize};

use crate::transaction::{Leg, ServedBy, Transaction};

/// Directory state of one cache line at its home node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineState {
    /// Only memory holds the line.
    Uncached,
    /// Read-only copies at these CPUs (never empty).
    Shared(BTreeSet<usize>),
    /// One CPU holds the line writable (and possibly dirty).
    Exclusive(usize),
}

/// The kind of CPU access presented to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load needing a readable copy.
    Read,
    /// A store (or read-modify) needing an exclusive copy.
    Write,
}

/// Aggregate protocol statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    /// Reads served from memory (read-clean).
    pub reads_clean: u64,
    /// Reads forwarded to an exclusive owner (read-dirty).
    pub reads_dirty: u64,
    /// Writes (including upgrades).
    pub writes: u64,
    /// Invalidation commands sent to sharers.
    pub invalidations: u64,
    /// Operations that needed no transaction.
    pub silent: u64,
}

/// A machine-wide directory, tracking every line's state.
///
/// This is the protocol's *functional* core: given an access it returns the
/// [`Transaction`] (message legs) the 21364 would emit and updates the
/// sharing state. The latency/bandwidth meaning of those legs is supplied by
/// the machine model in `alphasim-system`.
///
/// # Examples
///
/// ```
/// use alphasim_coherence::{Directory, AccessKind, ServedBy};
///
/// let mut dir = Directory::new();
/// // CPU 2 writes line 7 whose home is CPU 0; later CPU 5 reads it.
/// dir.access(0, 2, 7, AccessKind::Write);
/// let t = dir.access(0, 5, 7, AccessKind::Read);
/// // A read-dirty: three critical legs (Request, Forward, Response).
/// assert_eq!(t.served_by, ServedBy::OwnerCache);
/// assert_eq!(t.critical.len(), 3);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Directory {
    /// Keyed by line address. A `BTreeMap` (not a hash map) so that stats
    /// and invariant sweeps iterate in address order — eviction scans and
    /// serialized snapshots are byte-identical across runs.
    lines: BTreeMap<u64, LineState>,
    stats: DirectoryStats,
}

impl Directory {
    /// An empty directory (all lines Uncached).
    pub fn new() -> Self {
        Directory::default()
    }

    /// The state of `line` (Uncached when never touched).
    pub fn state(&self, line: u64) -> LineState {
        self.lines
            .get(&line)
            .cloned()
            .unwrap_or(LineState::Uncached)
    }

    /// Protocol statistics so far.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Force `line` into `state`, bypassing the protocol.
    ///
    /// This exists for verification tooling (the `verify` crate's model
    /// checker replays abstract states through the real transition code)
    /// and for tests; production paths always go through [`access`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Shared` with an empty sharer set, which the
    /// protocol can never produce.
    ///
    /// [`access`]: Self::access
    pub fn seed_line(&mut self, line: u64, state: LineState) {
        if let LineState::Shared(s) = &state {
            assert!(!s.is_empty(), "Shared state needs at least one sharer");
        }
        if state == LineState::Uncached {
            self.lines.remove(&line);
        } else {
            self.lines.insert(line, state);
        }
    }

    /// Present an access from `requester` to `line` whose home is `home`,
    /// returning the transaction the protocol emits.
    pub fn access(
        &mut self,
        home: usize,
        requester: usize,
        line: u64,
        kind: AccessKind,
    ) -> Transaction {
        let state = self.lines.entry(line).or_insert(LineState::Uncached);
        match kind {
            AccessKind::Read => match state {
                LineState::Uncached => {
                    *state = LineState::Shared(BTreeSet::from([requester]));
                    self.stats.reads_clean += 1;
                    Transaction {
                        critical: vec![
                            Leg::command(requester, home, MessageClass::Request),
                            Leg::block(home, requester, MessageClass::BlockResponse),
                        ],
                        side: Vec::new(),
                        served_by: ServedBy::Memory,
                    }
                }
                LineState::Shared(sharers) => {
                    if sharers.contains(&requester) {
                        self.stats.silent += 1;
                        return Transaction::local(ServedBy::AlreadyHeld);
                    }
                    sharers.insert(requester);
                    self.stats.reads_clean += 1;
                    Transaction {
                        critical: vec![
                            Leg::command(requester, home, MessageClass::Request),
                            Leg::block(home, requester, MessageClass::BlockResponse),
                        ],
                        side: Vec::new(),
                        served_by: ServedBy::Memory,
                    }
                }
                LineState::Exclusive(owner) => {
                    let owner = *owner;
                    if owner == requester {
                        self.stats.silent += 1;
                        return Transaction::local(ServedBy::AlreadyHeld);
                    }
                    // Forwarding protocol: home forwards to the owner, the
                    // owner responds to the requester *and* to the directory
                    // (sharing write-back, off the critical path).
                    *state = LineState::Shared(BTreeSet::from([owner, requester]));
                    self.stats.reads_dirty += 1;
                    Transaction {
                        critical: vec![
                            Leg::command(requester, home, MessageClass::Request),
                            Leg::command(home, owner, MessageClass::Forward),
                            Leg::block(owner, requester, MessageClass::BlockResponse),
                        ],
                        side: vec![Leg::block(owner, home, MessageClass::BlockResponse)],
                        served_by: ServedBy::OwnerCache,
                    }
                }
            },
            AccessKind::Write => match state {
                LineState::Uncached => {
                    *state = LineState::Exclusive(requester);
                    self.stats.writes += 1;
                    Transaction {
                        critical: vec![
                            Leg::command(requester, home, MessageClass::Request),
                            Leg::block(home, requester, MessageClass::BlockResponse),
                        ],
                        side: Vec::new(),
                        served_by: ServedBy::Memory,
                    }
                }
                LineState::Shared(sharers) => {
                    // "If the block is in Shared state (and the request is to
                    // modify the block), Forward/invalidates are sent to each
                    // of the shared copies, and a Response is sent to the
                    // requestor."
                    let invalidees: Vec<usize> = sharers
                        .iter()
                        .copied()
                        .filter(|&s| s != requester)
                        .collect();
                    *state = LineState::Exclusive(requester);
                    self.stats.writes += 1;
                    self.stats.invalidations += invalidees.len() as u64;
                    Transaction {
                        critical: vec![
                            Leg::command(requester, home, MessageClass::Request),
                            Leg::block(home, requester, MessageClass::BlockResponse),
                        ],
                        side: invalidees
                            .into_iter()
                            .map(|s| Leg::command(home, s, MessageClass::Forward))
                            .collect(),
                        served_by: ServedBy::Memory,
                    }
                }
                LineState::Exclusive(owner) => {
                    let owner = *owner;
                    if owner == requester {
                        self.stats.silent += 1;
                        return Transaction::local(ServedBy::AlreadyHeld);
                    }
                    *state = LineState::Exclusive(requester);
                    self.stats.writes += 1;
                    self.stats.reads_dirty += 1;
                    Transaction {
                        critical: vec![
                            Leg::command(requester, home, MessageClass::Request),
                            Leg::command(home, owner, MessageClass::Forward),
                            Leg::block(owner, requester, MessageClass::BlockResponse),
                        ],
                        side: Vec::new(),
                        served_by: ServedBy::OwnerCache,
                    }
                }
            },
        }
    }

    /// Evict `line` from `cpu`'s cache: an exclusive owner writes the block
    /// back to the home (one off-critical-path leg); a sharer drops its copy
    /// silently.
    pub fn evict(&mut self, home: usize, cpu: usize, line: u64) -> Transaction {
        let Some(state) = self.lines.get_mut(&line) else {
            return Transaction::local(ServedBy::AlreadyHeld);
        };
        match state {
            LineState::Uncached => Transaction::local(ServedBy::AlreadyHeld),
            LineState::Shared(sharers) => {
                sharers.remove(&cpu);
                if sharers.is_empty() {
                    *state = LineState::Uncached;
                }
                Transaction::local(ServedBy::AlreadyHeld)
            }
            LineState::Exclusive(owner) if *owner == cpu => {
                *state = LineState::Uncached;
                Transaction {
                    critical: Vec::new(),
                    side: vec![Leg::block(cpu, home, MessageClass::BlockResponse)],
                    served_by: ServedBy::AlreadyHeld,
                }
            }
            LineState::Exclusive(_) => Transaction::local(ServedBy::AlreadyHeld),
        }
    }

    /// Coherence safety invariant: Shared sets are non-empty and an
    /// Exclusive owner never coexists with sharers (enforced by
    /// construction; exposed for property tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&line, state) in &self.lines {
            if let LineState::Shared(s) = state {
                if s.is_empty() {
                    return Err(format!("line {line}: empty sharer set"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_is_two_leg_clean() {
        let mut d = Directory::new();
        let t = d.access(0, 3, 42, AccessKind::Read);
        assert_eq!(t.served_by, ServedBy::Memory);
        assert_eq!(t.critical.len(), 2);
        assert_eq!(t.critical[0].class, MessageClass::Request);
        assert_eq!(t.critical[1].class, MessageClass::BlockResponse);
        assert_eq!(d.state(42), LineState::Shared(BTreeSet::from([3])));
    }

    #[test]
    fn repeat_read_is_silent() {
        let mut d = Directory::new();
        d.access(0, 3, 42, AccessKind::Read);
        let t = d.access(0, 3, 42, AccessKind::Read);
        assert_eq!(t.served_by, ServedBy::AlreadyHeld);
        assert!(t.critical.is_empty());
        assert_eq!(d.stats().silent, 1);
    }

    #[test]
    fn read_dirty_is_three_hop_with_sharing_writeback() {
        let mut d = Directory::new();
        d.access(0, 1, 9, AccessKind::Write);
        let t = d.access(0, 2, 9, AccessKind::Read);
        assert_eq!(t.served_by, ServedBy::OwnerCache);
        let classes: Vec<MessageClass> = t.critical.iter().map(|l| l.class).collect();
        assert_eq!(
            classes,
            [
                MessageClass::Request,
                MessageClass::Forward,
                MessageClass::BlockResponse
            ]
        );
        // Request goes requester→home, Forward home→owner, data owner→req.
        assert_eq!((t.critical[0].from, t.critical[0].to), (2, 0));
        assert_eq!((t.critical[1].from, t.critical[1].to), (0, 1));
        assert_eq!((t.critical[2].from, t.critical[2].to), (1, 2));
        assert_eq!(t.side.len(), 1, "sharing write-back to home");
        // Owner is downgraded to sharer.
        assert_eq!(d.state(9), LineState::Shared(BTreeSet::from([1, 2])));
        assert_eq!(d.stats().reads_dirty, 1);
    }

    #[test]
    fn write_to_shared_invalidates_all_other_sharers() {
        let mut d = Directory::new();
        for cpu in [1, 2, 3] {
            d.access(0, cpu, 5, AccessKind::Read);
        }
        let t = d.access(0, 2, 5, AccessKind::Write);
        assert_eq!(t.side.len(), 2, "invalidate sharers 1 and 3, not 2");
        let targets: BTreeSet<usize> = t.side.iter().map(|l| l.to).collect();
        assert_eq!(targets, BTreeSet::from([1, 3]));
        assert!(t.side.iter().all(|l| l.class == MessageClass::Forward));
        assert_eq!(d.state(5), LineState::Exclusive(2));
        assert_eq!(d.stats().invalidations, 2);
    }

    #[test]
    fn write_steals_exclusive_ownership() {
        let mut d = Directory::new();
        d.access(0, 1, 5, AccessKind::Write);
        let t = d.access(0, 2, 5, AccessKind::Write);
        assert_eq!(t.served_by, ServedBy::OwnerCache);
        assert_eq!(t.critical.len(), 3);
        assert_eq!(d.state(5), LineState::Exclusive(2));
    }

    #[test]
    fn write_by_owner_is_silent() {
        let mut d = Directory::new();
        d.access(0, 1, 5, AccessKind::Write);
        let t = d.access(0, 1, 5, AccessKind::Write);
        assert_eq!(t.served_by, ServedBy::AlreadyHeld);
    }

    #[test]
    fn local_read_legs_cost_nothing_on_fabric() {
        let mut d = Directory::new();
        // Requester IS the home: both legs are from==to.
        let t = d.access(4, 4, 7, AccessKind::Read);
        assert_eq!(t.fabric_bytes(), 0);
        assert_eq!(t.served_by, ServedBy::Memory);
    }

    #[test]
    fn exclusive_eviction_writes_back() {
        let mut d = Directory::new();
        d.access(0, 1, 5, AccessKind::Write);
        let t = d.evict(0, 1, 5);
        assert_eq!(t.side.len(), 1);
        assert_eq!((t.side[0].from, t.side[0].to), (1, 0));
        assert_eq!(d.state(5), LineState::Uncached);
    }

    #[test]
    fn sharer_eviction_is_silent_and_state_shrinks() {
        let mut d = Directory::new();
        d.access(0, 1, 5, AccessKind::Read);
        d.access(0, 2, 5, AccessKind::Read);
        let t = d.evict(0, 1, 5);
        assert_eq!(t.fabric_bytes(), 0);
        assert_eq!(d.state(5), LineState::Shared(BTreeSet::from([2])));
        d.evict(0, 2, 5);
        assert_eq!(d.state(5), LineState::Uncached);
        d.check_invariants().unwrap();
    }

    #[test]
    fn non_owner_eviction_changes_nothing() {
        let mut d = Directory::new();
        d.access(0, 1, 5, AccessKind::Write);
        d.evict(0, 2, 5);
        assert_eq!(d.state(5), LineState::Exclusive(1));
    }
}
