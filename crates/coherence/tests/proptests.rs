//! Property tests for the directory protocol: safety invariants under
//! arbitrary operation streams.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_coherence::{AccessKind, Directory, LineState, ServedBy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Read { cpu: usize, line: u64 },
    Write { cpu: usize, line: u64 },
    Evict { cpu: usize, line: u64 },
}

fn ops(cpus: usize, lines: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0usize..3, 0usize..cpus, 0u64..lines).prop_map(|(kind, cpu, line)| match kind {
            0 => Op::Read { cpu, line },
            1 => Op::Write { cpu, line },
            _ => Op::Evict { cpu, line },
        }),
        1..400,
    )
}

/// A trivially-correct shadow model: which CPU wrote each line last, and
/// who currently may read it.
#[derive(Default)]
struct Shadow {
    readers: std::collections::HashMap<u64, std::collections::BTreeSet<usize>>,
    writer: std::collections::HashMap<u64, usize>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-writer / multi-reader safety holds after every operation,
    /// and the directory's own invariant check passes.
    #[test]
    fn coherence_safety(ops in ops(8, 16)) {
        let mut dir = Directory::new();
        let mut shadow = Shadow::default();
        for op in &ops {
            match *op {
                Op::Read { cpu, line } => {
                    let t = dir.access(0, cpu, line, AccessKind::Read);
                    // Reading makes the CPU a legitimate reader.
                    shadow.readers.entry(line).or_default().insert(cpu);
                    shadow.writer.remove(&line);
                    // A read is served by memory, the owner's cache, or
                    // already held — never anything else.
                    prop_assert!(matches!(
                        t.served_by,
                        ServedBy::Memory | ServedBy::OwnerCache | ServedBy::AlreadyHeld
                    ));
                }
                Op::Write { cpu, line } => {
                    dir.access(0, cpu, line, AccessKind::Write);
                    shadow.readers.remove(&line);
                    shadow.writer.insert(line, cpu);
                }
                Op::Evict { cpu, line } => {
                    dir.evict(0, cpu, line);
                }
            }
            dir.check_invariants().unwrap();
            // Safety: a line with an exclusive owner has no sharer set.
            for l in 0..16u64 {
                match dir.state(l) {
                    LineState::Exclusive(_) => {},
                    LineState::Shared(s) => prop_assert!(!s.is_empty()),
                    LineState::Uncached => {}
                }
            }
        }
    }

    /// After any history, a write by CPU `w` makes `w` the exclusive owner,
    /// and every *other* CPU's next read is served by `w`'s cache
    /// (read-dirty) with the 3-hop critical path.
    #[test]
    fn write_then_foreign_read_is_three_hop(ops in ops(4, 8), w in 0usize..4, r in 0usize..4,
                                            line in 0u64..8) {
        prop_assume!(w != r);
        let mut dir = Directory::new();
        for op in &ops {
            match *op {
                Op::Read { cpu, line } => { dir.access(0, cpu, line, AccessKind::Read); }
                Op::Write { cpu, line } => { dir.access(0, cpu, line, AccessKind::Write); }
                Op::Evict { cpu, line } => { dir.evict(0, cpu, line); }
            }
        }
        dir.access(0, w, line, AccessKind::Write);
        prop_assert_eq!(dir.state(line), LineState::Exclusive(w));
        let t = dir.access(0, r, line, AccessKind::Read);
        prop_assert_eq!(t.served_by, ServedBy::OwnerCache);
        prop_assert_eq!(t.critical.len(), 3);
        prop_assert_eq!(t.critical[2].from, w);
        prop_assert_eq!(t.critical[2].to, r);
    }

    /// Protocol statistics are an exact accounting: every access lands in
    /// exactly one counter bucket.
    #[test]
    fn stats_account_every_access(ops in ops(6, 10)) {
        let mut dir = Directory::new();
        let mut accesses = 0u64;
        for op in &ops {
            match *op {
                Op::Read { cpu, line } => { dir.access(0, cpu, line, AccessKind::Read); accesses += 1; }
                Op::Write { cpu, line } => { dir.access(0, cpu, line, AccessKind::Write); accesses += 1; }
                Op::Evict { .. } => {}
            }
        }
        let s = dir.stats();
        // reads_dirty double-counts write-steals (they are both writes and
        // dirty fetches), so subtract the overlap bound.
        prop_assert!(s.reads_clean + s.writes + s.silent <= accesses + s.reads_dirty);
        prop_assert!(s.reads_clean + s.silent <= accesses);
    }
}
