//! ASCII rendering of a mesh snapshot — our stand-in for Xmesh's display
//! (Fig. 27).

use crate::snapshot::MeshSnapshot;

/// Which gauge to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Memory-controller utilization.
    Zbox,
    /// IP-link utilization.
    IpLinks,
    /// I/O port utilization.
    Io,
}

impl Metric {
    fn label(self) -> &'static str {
        match self {
            Metric::Zbox => "Zbox utilization (%)",
            Metric::IpLinks => "IP-link utilization (%)",
            Metric::Io => "I/O utilization (%)",
        }
    }

    fn value(self, snap: &MeshSnapshot, i: usize) -> f64 {
        let c = snap.get(i);
        match self {
            Metric::Zbox => c.zbox_util,
            Metric::IpLinks => c.ip_util,
            Metric::Io => c.io_util,
        }
    }
}

/// Shade character for a utilization fraction.
fn shade(u: f64) -> char {
    match () {
        _ if u >= 0.75 => '#',
        _ if u >= 0.50 => '@',
        _ if u >= 0.25 => '+',
        _ if u >= 0.10 => '.',
        _ => ' ',
    }
}

/// Render one metric of a snapshot as an ASCII grid: each cell shows the
/// node's percentage and a shade character.
///
/// # Examples
///
/// ```
/// use alphasim_xmesh::{MeshSnapshot, NodeCounters, render_metric, Metric};
/// let mut s = MeshSnapshot::new(2, 2);
/// s.set(0, NodeCounters { zbox_util: 0.53, ..Default::default() });
/// let art = render_metric(&s, Metric::Zbox);
/// assert!(art.contains("53"));
/// ```
pub fn render_metric(snap: &MeshSnapshot, metric: Metric) -> String {
    let mut out = String::new();
    out.push_str(metric.label());
    out.push('\n');
    let border = format!("+{}\n", "------+".repeat(snap.cols()));
    out.push_str(&border);
    for y in 0..snap.rows() {
        out.push('|');
        for x in 0..snap.cols() {
            let i = y * snap.cols() + x;
            let u = metric.value(snap, i);
            out.push_str(&format!("{:>3.0}% {}|", (u * 100.0).min(100.0), shade(u)));
        }
        out.push('\n');
        out.push_str(&border);
    }
    out
}

/// Render all three gauges, stacked — the full Xmesh panel.
pub fn render(snap: &MeshSnapshot) -> String {
    let mut out = String::new();
    for m in [Metric::Zbox, Metric::IpLinks, Metric::Io] {
        out.push_str(&render_metric(snap, m));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeCounters;

    fn hot_snapshot() -> MeshSnapshot {
        let mut s = MeshSnapshot::new(4, 4);
        for i in 0..16 {
            s.set(
                i,
                NodeCounters {
                    zbox_util: 0.04,
                    ip_util: 0.08,
                    io_util: 0.0,
                },
            );
        }
        s.set(
            0,
            NodeCounters {
                zbox_util: 0.53,
                ip_util: 0.4,
                io_util: 0.0,
            },
        );
        s
    }

    #[test]
    fn renders_grid_of_right_shape() {
        let art = render_metric(&hot_snapshot(), Metric::Zbox);
        // 4 rows of cells + 5 borders + title.
        assert_eq!(art.lines().count(), 1 + 5 + 4);
        assert!(art.contains("Zbox"));
    }

    #[test]
    fn hot_cell_stands_out() {
        let art = render_metric(&hot_snapshot(), Metric::Zbox);
        assert!(art.contains("53% @"), "{art}");
        assert!(art.matches("  4% ").count() == 15, "{art}");
    }

    #[test]
    fn shade_buckets() {
        assert_eq!(shade(0.9), '#');
        assert_eq!(shade(0.6), '@');
        assert_eq!(shade(0.3), '+');
        assert_eq!(shade(0.15), '.');
        assert_eq!(shade(0.01), ' ');
    }

    #[test]
    fn full_panel_has_all_metrics() {
        let art = render(&hot_snapshot());
        assert!(art.contains("Zbox"));
        assert!(art.contains("IP-link"));
        assert!(art.contains("I/O"));
    }
}
