//! The EV7's built-in, non-intrusive performance counters (paper §1,
//! reference \[3\]): named free-running counters per node, read by Xmesh
//! without perturbing the workload.
//!
//! A [`CounterBlock`] is one node's counter file; [`CounterDelta`] is the
//! difference between two reads, which is what every utilization
//! percentage in the paper's figures actually is: busy-events over an
//! interval divided by the interval's capacity.

use serde::{Deserialize, Serialize};

/// The counter file of one EV7 node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterBlock {
    /// Core cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Zbox busy cycles (both controllers).
    pub zbox_busy: u64,
    /// Bytes moved by the Zboxes.
    pub zbox_bytes: u64,
    /// Per-direction IP-link busy cycles: N, S, E, W.
    pub link_busy: [u64; 4],
    /// I/O port busy cycles.
    pub io_busy: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

/// The difference between two counter reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta(pub CounterBlock);

impl CounterBlock {
    /// A zeroed counter file.
    pub fn new() -> Self {
        CounterBlock::default()
    }

    /// Non-intrusive read: counters keep running, the caller gets a copy.
    pub fn read(&self) -> CounterBlock {
        *self
    }

    /// The delta since an earlier read.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier (counters are
    /// free-running and never decrease).
    pub fn since(&self, earlier: &CounterBlock) -> CounterDelta {
        let sub = |a: u64, b: u64| {
            a.checked_sub(b)
                .expect("counters are monotone; 'earlier' read is newer")
        };
        CounterDelta(CounterBlock {
            cycles: sub(self.cycles, earlier.cycles),
            instructions: sub(self.instructions, earlier.instructions),
            zbox_busy: sub(self.zbox_busy, earlier.zbox_busy),
            zbox_bytes: sub(self.zbox_bytes, earlier.zbox_bytes),
            link_busy: [
                sub(self.link_busy[0], earlier.link_busy[0]),
                sub(self.link_busy[1], earlier.link_busy[1]),
                sub(self.link_busy[2], earlier.link_busy[2]),
                sub(self.link_busy[3], earlier.link_busy[3]),
            ],
            io_busy: sub(self.io_busy, earlier.io_busy),
            l2_misses: sub(self.l2_misses, earlier.l2_misses),
        })
    }
}

impl CounterDelta {
    /// IPC over the interval (0 when no cycles elapsed).
    pub fn ipc(&self) -> f64 {
        if self.0.cycles == 0 {
            0.0
        } else {
            self.0.instructions as f64 / self.0.cycles as f64
        }
    }

    /// Zbox utilization over the interval.
    pub fn zbox_utilization(&self) -> f64 {
        if self.0.cycles == 0 {
            0.0
        } else {
            (self.0.zbox_busy as f64 / self.0.cycles as f64).min(1.0)
        }
    }

    /// Mean IP-link utilization over the interval.
    pub fn ip_utilization(&self) -> f64 {
        if self.0.cycles == 0 {
            return 0.0;
        }
        let mean = self.0.link_busy.iter().sum::<u64>() as f64 / 4.0;
        (mean / self.0.cycles as f64).min(1.0)
    }

    /// East/West vs North/South utilization split (Fig. 24's gauges):
    /// `(east_west, north_south)`. Link order is N, S, E, W.
    pub fn directional_utilization(&self) -> (f64, f64) {
        if self.0.cycles == 0 {
            return (0.0, 0.0);
        }
        let c = self.0.cycles as f64;
        let ns = (self.0.link_busy[0] + self.0.link_busy[1]) as f64 / 2.0 / c;
        let ew = (self.0.link_busy[2] + self.0.link_busy[3]) as f64 / 2.0 / c;
        (ew.min(1.0), ns.min(1.0))
    }

    /// L2 misses per thousand instructions.
    pub fn mpki(&self) -> f64 {
        if self.0.instructions == 0 {
            0.0
        } else {
            self.0.l2_misses as f64 * 1000.0 / self.0.instructions as f64
        }
    }

    /// The sampled [`crate::NodeCounters`] gauge values for this node.
    pub fn gauges(&self) -> crate::NodeCounters {
        crate::NodeCounters {
            zbox_util: self.zbox_utilization(),
            ip_util: self.ip_utilization(),
            io_util: if self.0.cycles == 0 {
                0.0
            } else {
                (self.0.io_busy as f64 / self.0.cycles as f64).min(1.0)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advanced() -> CounterBlock {
        CounterBlock {
            cycles: 1_000,
            instructions: 750,
            zbox_busy: 530,
            zbox_bytes: 64_000,
            link_busy: [100, 120, 600, 640],
            io_busy: 10,
            l2_misses: 30,
        }
    }

    #[test]
    fn deltas_subtract_fieldwise() {
        let start = CounterBlock::new();
        let end = advanced();
        let d = end.since(&start);
        assert_eq!(d.0, end);
        let half = CounterBlock {
            cycles: 500,
            ..CounterBlock::new()
        };
        let d2 = end.since(&half);
        assert_eq!(d2.0.cycles, 500);
    }

    #[test]
    fn derived_metrics() {
        let d = advanced().since(&CounterBlock::new());
        assert!((d.ipc() - 0.75).abs() < 1e-12);
        assert!((d.zbox_utilization() - 0.53).abs() < 1e-12);
        assert!((d.mpki() - 40.0).abs() < 1e-12);
        let (ew, ns) = d.directional_utilization();
        assert!(ew > ns, "E/W {ew} vs N/S {ns}");
        assert!((ew - 0.62).abs() < 1e-12);
        assert!((ns - 0.11).abs() < 1e-12);
    }

    #[test]
    fn gauges_feed_the_mesh_snapshot() {
        let d = advanced().since(&CounterBlock::new());
        let g = d.gauges();
        assert!((g.zbox_util - 0.53).abs() < 1e-12);
        assert!(g.ip_util > 0.3);
        assert!((g.io_util - 0.01).abs() < 1e-12);
        let mut snap = crate::MeshSnapshot::new(4, 4);
        snap.set(0, g);
        let report = crate::detect_hot_spots(&snap);
        assert_eq!(report.hot_nodes, vec![0]);
    }

    #[test]
    fn zero_interval_is_safe() {
        let d = CounterBlock::new().since(&CounterBlock::new());
        assert_eq!(d.ipc(), 0.0);
        assert_eq!(d.zbox_utilization(), 0.0);
        assert_eq!(d.directional_utilization(), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn reversed_reads_panic() {
        let _ = CounterBlock::new().since(&advanced());
    }
}
