//! Per-node counter snapshots and hot-spot detection.

use alphasim_kernel::stats::TimeSeries;
use alphasim_kernel::SimTime;
use serde::{Deserialize, Serialize};

/// One node's gauges, as fractions in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeCounters {
    /// Memory-controller (Zbox) busy fraction.
    pub zbox_util: f64,
    /// Mean utilization of the node's IP links.
    pub ip_util: f64,
    /// I/O port utilization.
    pub io_util: f64,
}

/// A point-in-time grid of per-node counters over a `cols × rows` mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshSnapshot {
    cols: usize,
    rows: usize,
    nodes: Vec<NodeCounters>,
}

impl MeshSnapshot {
    /// An all-zero snapshot.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "empty mesh");
        MeshSnapshot {
            cols,
            rows,
            nodes: vec![NodeCounters::default(); cols * rows],
        }
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the mesh has no nodes (never true; see [`MeshSnapshot::new`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Set node `i`'s counters.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, counters: NodeCounters) {
        self.nodes[i] = counters;
    }

    /// Node `i`'s counters.
    pub fn get(&self, i: usize) -> NodeCounters {
        self.nodes[i]
    }

    /// Mean Zbox utilization over all nodes.
    pub fn mean_zbox(&self) -> f64 {
        self.nodes.iter().map(|n| n.zbox_util).sum::<f64>() / self.nodes.len() as f64
    }

    /// Mean IP-link utilization over all nodes.
    pub fn mean_ip(&self) -> f64 {
        self.nodes.iter().map(|n| n.ip_util).sum::<f64>() / self.nodes.len() as f64
    }
}

/// The result of hot-spot detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotSpotReport {
    /// Nodes whose Zbox utilization dominates the rest.
    pub hot_nodes: Vec<usize>,
    /// Mean Zbox utilization of the non-hot nodes.
    pub background_zbox: f64,
}

/// Detect hot-spot traffic the way the paper's §6 does with Xmesh: a node
/// is hot when its Zbox utilization is both substantial in absolute terms
/// (> 25%) and far above the remaining nodes' mean (> 4×).
pub fn detect_hot_spots(snap: &MeshSnapshot) -> HotSpotReport {
    let n = snap.len();
    let mut hot = Vec::new();
    for i in 0..n {
        let me = snap.get(i).zbox_util;
        if me < 0.25 {
            continue;
        }
        let others: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| snap.get(j).zbox_util)
            .sum::<f64>()
            / (n - 1).max(1) as f64;
        if me > 4.0 * others.max(0.01) {
            hot.push(i);
        }
    }
    let background: Vec<f64> = (0..n)
        .filter(|i| !hot.contains(i))
        .map(|i| snap.get(i).zbox_util)
        .collect();
    HotSpotReport {
        hot_nodes: hot,
        background_zbox: if background.is_empty() {
            0.0
        } else {
            background.iter().sum::<f64>() / background.len() as f64
        },
    }
}

/// A collection of named utilization time series sampled on a common clock
/// — what an Xmesh strip chart shows (Figs. 10–11, 20, 22, 24).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    series: Vec<TimeSeries>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Record `samples` points of `f(t)` (with `t ∈ [0,1]`) under `name`,
    /// with `interval_ns` between samples.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        samples: usize,
        interval_ns: f64,
        mut f: impl FnMut(f64) -> f64,
    ) {
        let mut ts = TimeSeries::new(name);
        for i in 0..samples {
            let t = (i as f64 + 0.5) / samples as f64;
            let at = SimTime::from_ps(((i + 1) as f64 * interval_ns * 1000.0) as u64);
            ts.push(at, f(t));
        }
        self.series.push(ts);
    }

    /// The recorded series.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// A series by name.
    pub fn by_name(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_accessors() {
        let mut s = MeshSnapshot::new(4, 2);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        s.set(
            3,
            NodeCounters {
                zbox_util: 0.5,
                ip_util: 0.25,
                io_util: 0.1,
            },
        );
        assert_eq!(s.get(3).zbox_util, 0.5);
        assert!((s.mean_zbox() - 0.0625).abs() < 1e-12);
        assert!((s.mean_ip() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn hot_spot_detected_like_fig27() {
        // The paper: node 0 at 53%, everything else much lower.
        let mut s = MeshSnapshot::new(4, 4);
        for i in 0..16 {
            s.set(
                i,
                NodeCounters {
                    zbox_util: 0.04,
                    ip_util: 0.1,
                    io_util: 0.0,
                },
            );
        }
        s.set(
            0,
            NodeCounters {
                zbox_util: 0.53,
                ip_util: 0.4,
                io_util: 0.0,
            },
        );
        let r = detect_hot_spots(&s);
        assert_eq!(r.hot_nodes, vec![0]);
        assert!((r.background_zbox - 0.04).abs() < 1e-12);
    }

    #[test]
    fn uniform_load_is_not_a_hot_spot() {
        let mut s = MeshSnapshot::new(4, 4);
        for i in 0..16 {
            s.set(
                i,
                NodeCounters {
                    zbox_util: 0.5,
                    ip_util: 0.5,
                    io_util: 0.0,
                },
            );
        }
        assert!(detect_hot_spots(&s).hot_nodes.is_empty());
    }

    #[test]
    fn low_absolute_utilization_is_ignored() {
        let mut s = MeshSnapshot::new(2, 2);
        s.set(
            1,
            NodeCounters {
                zbox_util: 0.2, // relatively dominant but absolutely small
                ip_util: 0.0,
                io_util: 0.0,
            },
        );
        assert!(detect_hot_spots(&s).hot_nodes.is_empty());
    }

    #[test]
    fn timeline_records_and_finds_series() {
        let mut tl = Timeline::new();
        tl.record("zbox0", 10, 100.0, |t| t * 100.0);
        tl.record("ip0", 10, 100.0, |_| 5.0);
        assert_eq!(tl.series().len(), 2);
        let z = tl.by_name("zbox0").unwrap();
        assert_eq!(z.len(), 10);
        assert!(z.samples()[9].value > z.samples()[0].value);
        assert!(tl.by_name("nope").is_none());
    }
}
