//! Xmesh — the paper's graphical performance-monitoring tool, rebuilt
//! (paper §1, §6, Fig. 27; reference \[11\]).
//!
//! Xmesh "displays run-time information on utilization of CPUs, memory
//! controllers, inter-processor (IP) links, and I/O ports" and is how the
//! authors recognised hot-spot traffic ("the Zbox utilization on that CPU is
//! 53%, much higher than on any other CPU"). This crate provides the same
//! three capabilities over the simulator's counters:
//!
//! * [`MeshSnapshot`] — a point-in-time per-node utilization grid;
//! * [`render`] — an ASCII heat map of the grid (our Fig. 27);
//! * [`HotSpotReport`] / [`detect_hot_spots`] — the §6 detection rule.
//!
//! # Examples
//!
//! ```
//! use alphasim_xmesh::{MeshSnapshot, NodeCounters, detect_hot_spots};
//!
//! let mut snap = MeshSnapshot::new(4, 4);
//! snap.set(0, NodeCounters { zbox_util: 0.53, ip_util: 0.4, io_util: 0.0 });
//! let report = detect_hot_spots(&snap);
//! assert_eq!(report.hot_nodes, vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod counters;
mod render;
mod snapshot;

pub use counters::{CounterBlock, CounterDelta};
pub use render::{render, render_metric, Metric};
pub use snapshot::{detect_hot_spots, HotSpotReport, MeshSnapshot, NodeCounters, Timeline};
