//! Scratch probe for Table 1 constructions (not part of the library API).

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]
use alphasim_topology::graph::{bisection_width, DistanceMatrix};
use alphasim_topology::{Coord, Direction, LinkClass, NodeId, Port, Topology};

/// Torus with vertical wraps twisted by `tv` columns and horizontal wraps
/// twisted by `th` rows.
struct BiTwist {
    cols: usize,
    rows: usize,
    ports: Vec<Vec<Port>>,
}

impl BiTwist {
    fn new(cols: usize, rows: usize, tv: usize, th: usize) -> Self {
        let node = |x: usize, y: usize| NodeId::new(y * cols + x);
        let mut ports = vec![Vec::new(); cols * rows];
        for y in 0..rows {
            for x in 0..cols {
                let mut ps = Vec::new();
                // East
                if x + 1 < cols {
                    ps.push(Port::directed(
                        node(x + 1, y),
                        LinkClass::Board,
                        Direction::East,
                    ));
                } else {
                    ps.push(Port::directed(
                        node(0, (y + th) % rows),
                        LinkClass::Shuffle,
                        Direction::East,
                    ));
                }
                // West
                if x > 0 {
                    ps.push(Port::directed(
                        node(x - 1, y),
                        LinkClass::Board,
                        Direction::West,
                    ));
                } else {
                    ps.push(Port::directed(
                        node(cols - 1, (y + rows - th) % rows),
                        LinkClass::Shuffle,
                        Direction::West,
                    ));
                }
                // South
                if y + 1 < rows {
                    ps.push(Port::directed(
                        node(x, y + 1),
                        LinkClass::Board,
                        Direction::South,
                    ));
                } else {
                    ps.push(Port::directed(
                        node((x + tv) % cols, 0),
                        LinkClass::Shuffle,
                        Direction::South,
                    ));
                }
                // North
                if y > 0 {
                    ps.push(Port::directed(
                        node(x, y - 1),
                        LinkClass::Board,
                        Direction::North,
                    ));
                } else {
                    ps.push(Port::directed(
                        node((x + cols - tv) % cols, rows - 1),
                        LinkClass::Shuffle,
                        Direction::North,
                    ));
                }
                ports[node(x, y).index()] = ps;
            }
        }
        BiTwist { cols, rows, ports }
    }
}

impl Topology for BiTwist {
    fn name(&self) -> String {
        format!("bitwist-{}x{}", self.cols, self.rows)
    }
    fn node_count(&self) -> usize {
        self.cols * self.rows
    }
    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }
    fn is_endpoint(&self, _node: NodeId) -> bool {
        true
    }
    fn coord(&self, node: NodeId) -> Option<Coord> {
        Some(Coord::new(
            node.index() % self.cols,
            node.index() / self.cols,
        ))
    }
}

/// Wounded-fabric probe: how the torus metrics hold up as bisection links
/// die. Only live links count — a dead link contributes no bisection width
/// and no path.
fn wounded_fabric_probe() {
    use alphasim_topology::{Degraded, Torus2D};
    println!("\nwounded fabric (8x8 torus, cutting bisection links row by row):");
    let healthy = Torus2D::new(8, 8);
    let healthy_bis = bisection_width(&healthy);
    for cuts in 0..=6usize {
        let failed: Vec<(NodeId, NodeId)> = (0..cuts)
            .map(|row| (NodeId::new(row * 8 + 3), NodeId::new(row * 8 + 4)))
            .collect();
        let wounded =
            Degraded::try_new(Torus2D::new(8, 8), &failed).expect("bisection links exist");
        let d = DistanceMatrix::compute(&wounded);
        assert!(d.is_connected(), "{cuts} cuts must not partition");
        println!(
            "  {cuts} dead links: avg dist {:.3} worst {} bisection {}/{}",
            d.average_distance(),
            d.diameter(),
            bisection_width(&wounded),
            healthy_bis
        );
    }
}

fn main() {
    println!("targets: 4x2 1.200/1.500/2 | 4x4 1.067/1.333/1 | 8x4 1.171/1.500/2 | 8x8 1.185/1.333/1 | 16x8 1.371/1.500/2 | 16x16 1.454/1.778/1");
    for (c, r) in [(4usize, 2usize), (4, 4), (8, 4), (8, 8), (16, 8), (16, 16)] {
        let t = alphasim_topology::Torus2D::new(c, r);
        let dt = DistanceMatrix::compute(&t);
        let (ta, tw) = (dt.average_distance(), dt.diameter());
        let mut candidates = vec![(c / 2, 0), (c / 2, r / 2)];
        if r >= 4 {
            candidates.push((c / 2, r / 4));
        }
        if c >= 8 {
            candidates.push((c / 4, r / 2));
        }
        for (tv, th) in candidates {
            let b = BiTwist::new(c, r, tv, th);
            let db = DistanceMatrix::compute(&b);
            println!(
                "{c}x{r} twist v{tv} h{th}: avg {:.3} worst {:.3} ({}) bis {:.3}",
                ta / db.average_distance(),
                f64::from(tw) / f64::from(db.diameter()),
                db.diameter(),
                bisection_width(&b) as f64 / bisection_width(&t) as f64
            );
        }
    }
    wounded_fabric_probe();
}
