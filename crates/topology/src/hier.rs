//! Topologies of the previous-generation comparison machines: the GS320's
//! hierarchical switch, the ES45's shared bus, and the SC45 cluster.

use serde::{Deserialize, Serialize};

use crate::ids::{LinkClass, NodeId, Port};
use crate::Topology;

/// The AlphaServer GS320 fabric (paper §2): CPUs grouped four to a Quad
/// Building Block (QBB) behind a local switch, QBBs joined by a single
/// hierarchical global switch.
///
/// Node numbering: CPUs first (`0..cpus`), then one local-switch node per
/// QBB, then the global switch last. Only CPU nodes are endpoints; a QBB's
/// memory modules hang off its local switch, which the system model accounts
/// for in latency terms.
///
/// # Examples
///
/// ```
/// use alphasim_topology::{QbbTree, Topology, NodeId};
/// let gs320 = QbbTree::new(32);
/// assert_eq!(gs320.node_count(), 32 + 8 + 1);
/// assert!(gs320.is_endpoint(NodeId::new(31)));
/// assert!(!gs320.is_endpoint(NodeId::new(32)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QbbTree {
    cpus: usize,
    qbbs: usize,
    ports: Vec<Vec<Port>>,
}

impl QbbTree {
    /// CPUs per QBB in the GS320.
    pub const CPUS_PER_QBB: usize = 4;

    /// A GS320 with `cpus` processors (multiple of 4, at most 32).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero, not a multiple of 4, or exceeds 32.
    pub fn new(cpus: usize) -> Self {
        assert!(
            cpus > 0 && cpus.is_multiple_of(Self::CPUS_PER_QBB) && cpus <= 32,
            "GS320 supports 4..=32 CPUs in multiples of 4"
        );
        let qbbs = cpus / Self::CPUS_PER_QBB;
        let global = cpus + qbbs; // id of the global switch
        let mut ports = vec![Vec::new(); cpus + qbbs + 1];
        for cpu in 0..cpus {
            let switch = cpus + cpu / Self::CPUS_PER_QBB;
            ports[cpu].push(Port::undirected(NodeId::new(switch), LinkClass::QbbLocal));
            ports[switch].push(Port::undirected(NodeId::new(cpu), LinkClass::QbbLocal));
        }
        // Even a single-QBB machine wires its switch to the (unused)
        // global switch so the node graph stays connected.
        for q in 0..qbbs {
            let switch = cpus + q;
            ports[switch].push(Port::undirected(NodeId::new(global), LinkClass::QbbGlobal));
            ports[global].push(Port::undirected(NodeId::new(switch), LinkClass::QbbGlobal));
        }
        QbbTree { cpus, qbbs, ports }
    }

    /// Number of CPU endpoints.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Number of QBBs.
    pub fn qbbs(&self) -> usize {
        self.qbbs
    }

    /// The QBB index a CPU belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not a CPU node.
    pub fn qbb_of(&self, cpu: NodeId) -> usize {
        assert!(cpu.index() < self.cpus, "not a CPU node");
        cpu.index() / Self::CPUS_PER_QBB
    }

    /// The local-switch node of QBB `q`.
    pub fn local_switch(&self, q: usize) -> NodeId {
        assert!(q < self.qbbs, "QBB index out of range");
        NodeId::new(self.cpus + q)
    }

    /// The global-switch node.
    pub fn global_switch(&self) -> NodeId {
        NodeId::new(self.cpus + self.qbbs)
    }

    /// Whether two CPUs share a QBB (local vs. remote memory in Fig. 12).
    pub fn same_qbb(&self, a: NodeId, b: NodeId) -> bool {
        self.qbb_of(a) == self.qbb_of(b)
    }
}

impl Topology for QbbTree {
    fn name(&self) -> String {
        format!("gs320-{}cpu-{}qbb", self.cpus, self.qbbs)
    }

    fn node_count(&self) -> usize {
        self.cpus + self.qbbs + 1
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, node: NodeId) -> bool {
        node.index() < self.cpus
    }
}

/// The ES45's shared memory bus: up to four CPUs and one memory system on a
/// single arbitration domain. Node `cpus` is the bus/memory hub; CPUs are
/// `0..cpus`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedBus {
    cpus: usize,
    ports: Vec<Vec<Port>>,
}

impl SharedBus {
    /// A bus with `cpus` processors (1..=4 on an ES45).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or greater than 4.
    pub fn new(cpus: usize) -> Self {
        assert!((1..=4).contains(&cpus), "ES45 holds 1..=4 CPUs");
        let hub = cpus;
        let mut ports = vec![Vec::new(); cpus + 1];
        for cpu in 0..cpus {
            ports[cpu].push(Port::undirected(NodeId::new(hub), LinkClass::Bus));
            ports[hub].push(Port::undirected(NodeId::new(cpu), LinkClass::Bus));
        }
        SharedBus { cpus, ports }
    }

    /// Number of CPU endpoints.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The bus/memory hub node.
    pub fn hub(&self) -> NodeId {
        NodeId::new(self.cpus)
    }
}

impl Topology for SharedBus {
    fn name(&self) -> String {
        format!("es45-{}cpu", self.cpus)
    }

    fn node_count(&self) -> usize {
        self.cpus + 1
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, node: NodeId) -> bool {
        node.index() < self.cpus
    }
}

/// The SC45 cluster: ES45 boxes joined by a central Quadrics-style switch.
///
/// Each box's four CPUs connect to a per-box hub (its bus), hubs connect to
/// the cluster switch. CPUs are `0..cpus`, hubs `cpus..cpus+boxes`, switch
/// last.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StarCluster {
    cpus: usize,
    boxes: usize,
    ports: Vec<Vec<Port>>,
}

impl StarCluster {
    /// CPUs per ES45 box.
    pub const CPUS_PER_BOX: usize = 4;

    /// A cluster with `cpus` processors (multiple of 4).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or not a multiple of 4.
    pub fn new(cpus: usize) -> Self {
        assert!(
            cpus > 0 && cpus.is_multiple_of(Self::CPUS_PER_BOX),
            "SC45 grows in 4-CPU boxes"
        );
        let boxes = cpus / Self::CPUS_PER_BOX;
        let switch = cpus + boxes;
        let mut ports = vec![Vec::new(); cpus + boxes + 1];
        for cpu in 0..cpus {
            let hub = cpus + cpu / Self::CPUS_PER_BOX;
            ports[cpu].push(Port::undirected(NodeId::new(hub), LinkClass::Bus));
            ports[hub].push(Port::undirected(NodeId::new(cpu), LinkClass::Bus));
        }
        for b in 0..boxes {
            let hub = cpus + b;
            ports[hub].push(Port::undirected(NodeId::new(switch), LinkClass::Cluster));
            ports[switch].push(Port::undirected(NodeId::new(hub), LinkClass::Cluster));
        }
        StarCluster { cpus, boxes, ports }
    }

    /// Number of CPU endpoints.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Number of ES45 boxes.
    pub fn boxes(&self) -> usize {
        self.boxes
    }

    /// Whether two CPUs share an ES45 box.
    pub fn same_box(&self, a: NodeId, b: NodeId) -> bool {
        assert!(a.index() < self.cpus && b.index() < self.cpus);
        a.index() / Self::CPUS_PER_BOX == b.index() / Self::CPUS_PER_BOX
    }
}

impl Topology for StarCluster {
    fn name(&self) -> String {
        format!("sc45-{}cpu-{}box", self.cpus, self.boxes)
    }

    fn node_count(&self) -> usize {
        self.cpus + self.boxes + 1
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, node: NodeId) -> bool {
        node.index() < self.cpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DistanceMatrix;

    #[test]
    fn gs320_structure() {
        let g = QbbTree::new(16);
        assert_eq!(g.qbbs(), 4);
        assert_eq!(g.endpoints().len(), 16);
        assert_eq!(g.qbb_of(NodeId::new(0)), 0);
        assert_eq!(g.qbb_of(NodeId::new(15)), 3);
        assert!(g.same_qbb(NodeId::new(4), NodeId::new(7)));
        assert!(!g.same_qbb(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn gs320_distances_have_two_levels() {
        let g = QbbTree::new(16);
        let d = DistanceMatrix::compute(&g);
        // Same QBB: cpu -> local switch -> cpu = 2 hops.
        assert_eq!(d.distance(NodeId::new(0), NodeId::new(1)), 2);
        // Remote QBB: cpu -> local -> global -> local -> cpu = 4 hops.
        assert_eq!(d.distance(NodeId::new(0), NodeId::new(4)), 4);
        assert_eq!(d.diameter(), 4);
        assert!(d.is_connected());
    }

    #[test]
    fn single_qbb_has_no_global_hops() {
        let g = QbbTree::new(4);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.diameter(), 2);
        // 4 CPU links + the (idle) global-switch uplink.
        assert!(g.ports(g.local_switch(0)).len() == 5);
    }

    #[test]
    #[should_panic(expected = "multiples of 4")]
    fn gs320_rejects_odd_counts() {
        let _ = QbbTree::new(6);
    }

    #[test]
    fn es45_bus_is_a_star() {
        let b = SharedBus::new(4);
        let d = DistanceMatrix::compute(&b);
        assert_eq!(d.diameter(), 2);
        assert_eq!(b.endpoints().len(), 4);
        assert_eq!(b.ports(b.hub()).len(), 4);
    }

    #[test]
    fn sc45_cluster_levels() {
        let c = StarCluster::new(16);
        assert_eq!(c.boxes(), 4);
        let d = DistanceMatrix::compute(&c);
        // In-box: 2 hops; cross-box: cpu->hub->switch->hub->cpu = 4 hops.
        assert_eq!(d.distance(NodeId::new(0), NodeId::new(3)), 2);
        assert_eq!(d.distance(NodeId::new(0), NodeId::new(4)), 4);
        assert!(c.same_box(NodeId::new(0), NodeId::new(3)));
        assert!(!c.same_box(NodeId::new(0), NodeId::new(4)));
    }

    #[test]
    fn switches_are_not_endpoints() {
        let g = QbbTree::new(8);
        for sw in 8..g.node_count() {
            assert!(!g.is_endpoint(NodeId::new(sw)));
        }
        let c = StarCluster::new(8);
        for hub in 8..c.node_count() {
            assert!(!c.is_endpoint(NodeId::new(hub)));
        }
    }
}
