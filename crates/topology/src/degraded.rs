//! Failure injection: a topology with links (or nodes' ports) removed.
//!
//! The GS1280 was sold on glueless fault containment — cables can be
//! re-routed around (the shuffle experiment literally swaps them) and the
//! RDRAM subsystem carries a redundant channel. [`Degraded`] removes
//! chosen links from any topology so routing, latency and load studies can
//! be rerun on the wounded fabric.

use serde::{Deserialize, Serialize};

use crate::ids::{Coord, NodeId, Port};
use crate::Topology;

/// Why a set of link failures could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedError {
    /// The named link does not exist in the underlying topology.
    NoSuchLink {
        /// Claimed source of the link.
        from: NodeId,
        /// Claimed destination.
        to: NodeId,
    },
}

impl std::fmt::Display for DegradedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedError::NoSuchLink { from, to } => {
                write!(f, "no link {from} -> {to} to fail")
            }
        }
    }
}

impl std::error::Error for DegradedError {}

/// A wrapper that hides failed links of an underlying topology.
///
/// Failures are *undirected*: failing `a ↔ b` removes both directed ports.
///
/// # Examples
///
/// ```
/// use alphasim_topology::{Degraded, Torus2D, Topology, NodeId};
/// use alphasim_topology::graph::DistanceMatrix;
///
/// let torus = Torus2D::new(4, 4);
/// let degraded = Degraded::new(torus, &[(NodeId::new(0), NodeId::new(1))]);
/// let d = DistanceMatrix::compute(&degraded);
/// assert!(d.is_connected(), "a torus survives one link failure");
/// assert!(d.distance(NodeId::new(0), NodeId::new(1)) > 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Degraded<T> {
    inner: T,
    failed: Vec<(NodeId, NodeId)>,
    ports: Vec<Vec<Port>>,
}

impl<T: Topology> Degraded<T> {
    /// `inner` with every link in `failed` removed (both directions).
    ///
    /// # Panics
    ///
    /// Panics if a named link does not exist in `inner`; fault-injection
    /// callers working from a generated plan should prefer
    /// [`try_new`](Self::try_new) and handle the error.
    pub fn new(inner: T, failed: &[(NodeId, NodeId)]) -> Self {
        match Self::try_new(inner, failed) {
            Ok(degraded) => degraded,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Self::new): `inner` with every link in `failed`
    /// removed, or a [`DegradedError`] naming the first link that does not
    /// exist (rather than aborting mid-campaign).
    pub fn try_new(inner: T, failed: &[(NodeId, NodeId)]) -> Result<Self, DegradedError> {
        for &(a, b) in failed {
            if a.index() >= inner.node_count() || !inner.ports(a).iter().any(|p| p.to == b) {
                return Err(DegradedError::NoSuchLink { from: a, to: b });
            }
        }
        let is_failed = |from: NodeId, to: NodeId| {
            failed
                .iter()
                .any(|&(a, b)| (a == from && b == to) || (a == to && b == from))
        };
        let ports = (0..inner.node_count())
            .map(|i| {
                let node = NodeId::new(i);
                inner
                    .ports(node)
                    .iter()
                    .filter(|p| !is_failed(node, p.to))
                    .copied()
                    .collect()
            })
            .collect();
        Ok(Degraded {
            inner,
            failed: failed.to_vec(),
            ports,
        })
    }

    /// The healthy topology underneath.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The failed links.
    pub fn failed_links(&self) -> &[(NodeId, NodeId)] {
        &self.failed
    }
}

impl<T: Topology> Topology for Degraded<T> {
    fn name(&self) -> String {
        format!("{}-degraded{}", self.inner.name(), self.failed.len())
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, node: NodeId) -> bool {
        self.inner.is_endpoint(node)
    }

    fn coord(&self, node: NodeId) -> Option<Coord> {
        self.inner.coord(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DistanceMatrix;
    use crate::torus::Torus2D;

    #[test]
    fn failing_a_link_removes_both_directions() {
        let t = Degraded::new(Torus2D::new(4, 4), &[(NodeId::new(0), NodeId::new(1))]);
        assert!(!t
            .ports(NodeId::new(0))
            .iter()
            .any(|p| p.to == NodeId::new(1)));
        assert!(!t
            .ports(NodeId::new(1))
            .iter()
            .any(|p| p.to == NodeId::new(0)));
        assert_eq!(t.ports(NodeId::new(0)).len(), 3);
        assert_eq!(t.failed_links().len(), 1);
    }

    #[test]
    fn torus_tolerates_single_failures_everywhere() {
        let base = Torus2D::new(4, 4);
        for i in 0..16 {
            let node = NodeId::new(i);
            for p in base.ports(node).to_vec() {
                let degraded = Degraded::new(base.clone(), &[(node, p.to)]);
                let d = DistanceMatrix::compute(&degraded);
                assert!(d.is_connected(), "failure {node}->{}", p.to);
                // Worst-case detour grows by at most a few hops.
                assert!(d.diameter() <= 6);
            }
        }
    }

    #[test]
    fn detours_lengthen_paths() {
        let base = Torus2D::new(4, 4);
        let healthy = DistanceMatrix::compute(&base);
        let degraded = Degraded::new(base, &[(NodeId::new(0), NodeId::new(1))]);
        let wounded = DistanceMatrix::compute(&degraded);
        assert_eq!(wounded.distance(NodeId::new(0), NodeId::new(1)), 3);
        assert!(wounded.average_distance() > healthy.average_distance());
    }

    #[test]
    fn multiple_failures_can_partition_a_small_ring() {
        // Cutting both horizontal links of a 2x1 "torus"... a 2x2 torus has
        // doubled links; cut all four around node 0.
        let base = Torus2D::new(2, 2);
        let cuts: Vec<(NodeId, NodeId)> = base
            .ports(NodeId::new(0))
            .iter()
            .map(|p| (NodeId::new(0), p.to))
            .collect();
        let degraded = Degraded::new(base, &cuts);
        let d = DistanceMatrix::compute(&degraded);
        assert!(!d.is_connected(), "fully cut node must be unreachable");
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn rejects_nonexistent_link() {
        let _ = Degraded::new(Torus2D::new(4, 4), &[(NodeId::new(0), NodeId::new(10))]);
    }

    #[test]
    fn try_new_reports_bad_links_instead_of_panicking() {
        let err = Degraded::try_new(Torus2D::new(4, 4), &[(NodeId::new(0), NodeId::new(10))])
            .unwrap_err();
        assert_eq!(
            err,
            DegradedError::NoSuchLink {
                from: NodeId::new(0),
                to: NodeId::new(10),
            }
        );
        assert!(err.to_string().contains("no link"));
        // Out-of-range endpoints error rather than panic too.
        let oob = Degraded::try_new(Torus2D::new(2, 2), &[(NodeId::new(99), NodeId::new(0))]);
        assert!(oob.is_err());
    }

    #[test]
    fn try_new_matches_new_on_valid_input() {
        let cuts = [(NodeId::new(0), NodeId::new(1))];
        let a = Degraded::new(Torus2D::new(4, 4), &cuts);
        let b = Degraded::try_new(Torus2D::new(4, 4), &cuts).unwrap();
        assert_eq!(a.failed_links(), b.failed_links());
        assert_eq!(a.ports(NodeId::new(0)), b.ports(NodeId::new(0)));
    }
}
