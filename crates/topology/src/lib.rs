//! Interconnect topologies of the GS1280 reproduction.
//!
//! The paper's machines are built on three very different fabrics:
//!
//! * **GS1280** — a 2-D, adaptive, torus of Alpha 21364 routers
//!   ([`Torus2D`]), optionally rewired into the paper's "shuffle"
//!   configuration ([`ShuffleTorus`], §4.1 / Figs. 16–17 / Table 1);
//! * **GS320** — four-CPU Quad Building Blocks behind a local switch, joined
//!   by a hierarchical global switch ([`QbbTree`]);
//! * **ES45 / SC45** — a 4-CPU shared-bus SMP ([`SharedBus`]), clustered
//!   through a central Quadrics-style switch ([`StarCluster`]).
//!
//! All of them implement [`Topology`], a directed-adjacency view that the
//! network simulator (`alphasim-net`) and the graph analyses in [`graph`]
//! consume. [`table1`] reproduces the paper's Table 1 analytically.
//!
//! # Examples
//!
//! ```
//! use alphasim_topology::{Torus2D, Topology, graph::DistanceMatrix};
//!
//! let torus = Torus2D::new(4, 4);
//! let dist = DistanceMatrix::compute(&torus);
//! assert_eq!(dist.diameter(), 4); // 2 hops in each dimension
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod degraded;
pub mod graph;
mod hier;
mod ids;
pub mod route;
mod shuffle;
pub mod table1;
mod torus;
pub mod updown;

pub use degraded::{Degraded, DegradedError};
pub use hier::{QbbTree, SharedBus, StarCluster};
pub use ids::{Coord, Direction, LinkClass, NodeId, Port};
pub use shuffle::ShuffleTorus;
pub use torus::Torus2D;
pub use updown::{UpDownError, UpDownRoutes};

/// A directed-adjacency view of an interconnect.
///
/// Nodes are identified by dense [`NodeId`]s in `0..node_count()`. A node is
/// either an *endpoint* (a CPU that sources/sinks traffic and owns memory) or
/// an internal switch. Each node exposes its outgoing [`Port`]s; every link in
/// the reproduced machines is full duplex, so the reverse port always exists
/// on the peer.
pub trait Topology {
    /// Human-readable topology name (used in reports).
    fn name(&self) -> String;

    /// Total number of nodes, endpoints and switches together.
    fn node_count(&self) -> usize;

    /// Outgoing ports of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn ports(&self, node: NodeId) -> &[Port];

    /// Whether `node` is a traffic endpoint (a CPU) rather than a switch.
    fn is_endpoint(&self, node: NodeId) -> bool;

    /// Planar coordinate of `node`, for topologies laid out on a grid.
    fn coord(&self, _node: NodeId) -> Option<Coord> {
        None
    }

    /// All endpoint node ids, in ascending order.
    fn endpoints(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .map(NodeId::new)
            .filter(|&n| self.is_endpoint(n))
            .collect()
    }

    /// Total number of directed links.
    fn link_count(&self) -> usize {
        (0..self.node_count())
            .map(|n| self.ports(NodeId::new(n)).len())
            .sum()
    }
}
