//! Routing for the reproduced fabrics.
//!
//! The 21364 uses *minimal adaptive* routing: only minimal paths are used,
//! but a message may pick the less congested minimal next hop (§2). Deadlock
//! freedom comes from (a) per-coherence-class virtual channels with an
//! acyclic class order, (b) VC0/VC1 "dateline" channels within each torus
//! ring, and (c) dimension-order (X then Y) escape routing, plus an Adaptive
//! channel that can always drain into the escape channels.
//!
//! This module provides the route tables the network simulator consumes and
//! a channel-dependency-graph checker that *proves* the escape network
//! acyclic — reproducing the paper's deadlock-avoidance argument as an
//! executable property.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::ids::{Direction, LinkClass, NodeId};
use crate::torus::Torus2D;
use crate::Topology;

/// How shuffle links may be used (paper §4.1, Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Any link on a minimal path, at any hop (plain torus behaviour).
    Minimal,
    /// "Shuffle with 1-hop": shuffle links only as the *first* hop.
    ShuffleFirstHop,
    /// "Shuffle with 2-hops": shuffle links only within the first two hops.
    ShuffleFirstTwoHops,
}

impl RoutePolicy {
    /// Maximum hop index (0-based) at which a shuffle link may be taken;
    /// `None` means no restriction.
    fn shuffle_hop_limit(self) -> Option<u32> {
        match self {
            RoutePolicy::Minimal => None,
            RoutePolicy::ShuffleFirstHop => Some(1),
            RoutePolicy::ShuffleFirstTwoHops => Some(2),
        }
    }
}

/// Precomputed minimal routes under a [`RoutePolicy`].
///
/// Distances are computed on a layered graph whose state is
/// `(node, hops-taken, capped)`, so a policy that forbids shuffle links after
/// hop *k* still yields correct shortest distances and never dead-ends.
///
/// # Examples
///
/// ```
/// use alphasim_topology::{Torus2D, NodeId};
/// use alphasim_topology::route::{Routes, RoutePolicy};
///
/// let torus = Torus2D::new(4, 4);
/// let routes = Routes::compute(&torus, RoutePolicy::Minimal);
/// // From node 0 to node 2 (two columns east) both E and W are minimal on
/// // a 4-ring, so there are two candidate ports.
/// let ports = routes.minimal_ports(&torus, NodeId::new(0), 0, NodeId::new(2));
/// assert_eq!(ports.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Routes {
    n: usize,
    layers: u32,
    policy: RoutePolicy,
    /// dist[layer][at][dst] = remaining hops from `at` to `dst` having
    /// already taken `layer` hops (layer saturates at `layers - 1`).
    dist: Vec<Vec<u32>>,
}

impl Routes {
    /// Distance value meaning "unreachable".
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Compute routes over `topo` under `policy`.
    pub fn compute<T: Topology + ?Sized>(topo: &T, policy: RoutePolicy) -> Self {
        let n = topo.node_count();
        let layers = policy.shuffle_hop_limit().map_or(1, |l| l + 1);
        // The policy makes distances depend on how many hops a packet has
        // already taken, so we BFS a layered graph with states
        // `(node, k = min(hops_taken, layers-1))`. Transitions: from
        // `(at, k)` over a port allowed at hop index `k` to
        // `(port.to, min(k+1, layers-1))`.
        //
        // Reverse adjacency: incoming links of each node.
        let mut rev: Vec<Vec<(usize, LinkClass)>> = vec![Vec::new(); n];
        for at in 0..n {
            for p in topo.ports(NodeId::new(at)) {
                rev[p.to.index()].push((at, p.class));
            }
        }
        let idx = |node: usize, k: u32| node * layers as usize + k as usize;
        let mut dist = vec![vec![Self::UNREACHABLE; n * n]; layers as usize];
        let mut remaining = vec![Self::UNREACHABLE; n * layers as usize];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            remaining.fill(Self::UNREACHABLE);
            queue.clear();
            for k in 0..layers {
                remaining[idx(dst, k)] = 0;
                queue.push_back((dst, k));
            }
            while let Some((node, k)) = queue.pop_front() {
                let d = remaining[idx(node, k)];
                // Predecessor layers kp with min(kp+1, layers-1) == k.
                let mut preds = [u32::MAX; 2];
                let mut np = 0;
                if k + 1 == layers {
                    preds[np] = layers - 1;
                    np += 1;
                    if layers >= 2 {
                        preds[np] = layers - 2;
                        np += 1;
                    }
                } else if k > 0 {
                    preds[np] = k - 1;
                    np += 1;
                }
                for &(at, class) in &rev[node] {
                    for &kp in &preds[..np] {
                        if policy_allows(policy, class, kp) {
                            let s = idx(at, kp);
                            if remaining[s] == Self::UNREACHABLE {
                                remaining[s] = d + 1;
                                queue.push_back((at, kp));
                            }
                        }
                    }
                }
            }
            for k in 0..layers {
                for at in 0..n {
                    dist[k as usize][at * n + dst] = remaining[idx(at, k)];
                }
            }
        }
        Routes {
            n,
            layers,
            policy,
            dist,
        }
    }

    /// The policy these routes were computed under.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Remaining hops from `at` to `dst` with `taken` hops already behind.
    pub fn distance(&self, at: NodeId, taken: u32, dst: NodeId) -> u32 {
        let k = taken.min(self.layers - 1) as usize;
        self.dist[k][at.index() * self.n + dst.index()]
    }

    /// Indices (into `topo.ports(at)`) of every port on a minimal remaining
    /// path from `at` to `dst` given `taken` hops so far — the adaptive
    /// candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `at` under the policy.
    pub fn minimal_ports<T: Topology + ?Sized>(
        &self,
        topo: &T,
        at: NodeId,
        taken: u32,
        dst: NodeId,
    ) -> Vec<usize> {
        let here = self.distance(at, taken, dst);
        assert!(here != Self::UNREACHABLE, "destination unreachable");
        let k = taken.min(self.layers - 1);
        let next_taken = taken + 1;
        topo.ports(at)
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                policy_allows(self.policy, p.class, k)
                    && self.distance(p.to, next_taken, dst) != Self::UNREACHABLE
                    && self.distance(p.to, next_taken, dst) + 1 == here
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Mean hop distance over ordered endpoint pairs, under this policy.
    pub fn average_distance<T: Topology + ?Sized>(&self, topo: &T) -> f64 {
        let eps = topo.endpoints();
        let mut total = 0u64;
        let mut pairs = 0u64;
        for &a in &eps {
            for &b in &eps {
                if a != b {
                    total += u64::from(self.distance(a, 0, b));
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

fn policy_allows(policy: RoutePolicy, class: LinkClass, hop_index: u32) -> bool {
    if class != LinkClass::Shuffle {
        return true;
    }
    match policy.shuffle_hop_limit() {
        None => true,
        Some(limit) => hop_index < limit,
    }
}

/// Dimension-order (X then Y) next direction on a plain torus — the escape
/// route that guarantees inter-dimensional deadlock freedom (§2, citing
/// Duato et al.).
///
/// Ties on a ring of even length (distance exactly half way) resolve East /
/// South. Returns `None` when `at == dst`.
pub fn dimension_order_direction(torus: &Torus2D, at: NodeId, dst: NodeId) -> Option<Direction> {
    let a = torus.coord_of(at);
    let b = torus.coord_of(dst);
    if a == b {
        return None;
    }
    if a.x != b.x {
        let cols = torus.cols();
        let east = (b.x as usize + cols - a.x as usize) % cols;
        let west = cols - east;
        Some(if east <= west {
            Direction::East
        } else {
            Direction::West
        })
    } else {
        let rows = torus.rows();
        let south = (b.y as usize + rows - a.y as usize) % rows;
        let north = rows - south;
        Some(if south <= north {
            Direction::South
        } else {
            Direction::North
        })
    }
}

/// A virtual-channel id on the escape network: VC0 before a packet crosses
/// the ring's dateline (the wrap-around link), VC1 after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EscapeChannel {
    /// Source node of the directed physical link.
    pub from: NodeId,
    /// Destination node of the directed physical link.
    pub to: NodeId,
    /// Dateline virtual channel (0 or 1).
    pub vc: u8,
}

/// The dimension-order escape path from `src` to `dst` as a sequence of
/// virtual channels, one per physical hop.
///
/// With `dateline_vcs == true`, packets start each ring on VC0 and move to
/// VC1 after crossing that ring's wrap link (the 21364's intra-dimension
/// deadlock fix); entering a new dimension resets the packet to VC0. With
/// `false` every hop reports VC0, modelling a single-VC torus.
///
/// Returns the empty path when `src == dst`.
pub fn escape_path(
    torus: &Torus2D,
    src: NodeId,
    dst: NodeId,
    dateline_vcs: bool,
) -> Vec<EscapeChannel> {
    let mut path = Vec::new();
    let mut at = src;
    let mut vc = 0u8;
    let mut prev_horizontal: Option<bool> = None;
    while at != dst {
        let dir = dimension_order_direction(torus, at, dst).expect("not yet arrived");
        let port = torus
            .ports(at)
            .iter()
            .find(|p| p.dir == Some(dir))
            .expect("torus has the escape direction");
        // Crossing a wrap link: adjacent ring positions that are not
        // numerically adjacent. On 2-rings the two nodes are mutually
        // adjacent; the 2-cycle is harmless for the CDG because the two
        // directions use distinct buffers.
        let here = torus.coord_of(at);
        let there = torus.coord_of(port.to);
        let crossing = if dir.is_horizontal() {
            wraps(here.x as usize, there.x as usize, torus.cols())
        } else {
            wraps(here.y as usize, there.y as usize, torus.rows())
        };
        // Moving into a new dimension resets the dateline VC.
        if prev_horizontal.is_some_and(|h| h != dir.is_horizontal()) {
            vc = 0;
        }
        path.push(EscapeChannel {
            from: at,
            to: port.to,
            vc: if dateline_vcs { vc } else { 0 },
        });
        if crossing && dateline_vcs {
            vc = 1;
        }
        prev_horizontal = Some(dir.is_horizontal());
        at = port.to;
    }
    path
}

/// Build the channel-dependency graph of dimension-order escape routing on
/// `torus` and report whether it is acyclic.
///
/// With `dateline_vcs == true`, packets start each ring on VC0 and move to
/// VC1 after crossing that ring's wrap link — the 21364's intra-dimension
/// deadlock fix. With `false` (a single VC per link) the wrap rings create
/// cyclic dependencies and this function reports a cycle, demonstrating why
/// the VCs are necessary.
///
/// The richer analyzer in the `verify` crate builds on [`escape_path`] to
/// cover all coherence classes and degraded topologies and to report the
/// offending cycle; this boolean form is kept as the in-crate spot check.
pub fn escape_network_is_acyclic(torus: &Torus2D, dateline_vcs: bool) -> bool {
    use std::collections::{BTreeMap, BTreeSet};
    let n = torus.node_count();
    let mut edges: BTreeMap<EscapeChannel, BTreeSet<EscapeChannel>> = BTreeMap::new();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let path = escape_path(torus, NodeId::new(src), NodeId::new(dst), dateline_vcs);
            for pair in path.windows(2) {
                edges.entry(pair[0]).or_default().insert(pair[1]);
            }
            for &chan in &path {
                edges.entry(chan).or_default();
            }
        }
    }
    // DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let keys: Vec<EscapeChannel> = edges.keys().copied().collect();
    let mut marks: BTreeMap<EscapeChannel, Mark> = keys.iter().map(|&k| (k, Mark::White)).collect();
    fn dfs(
        u: EscapeChannel,
        edges: &BTreeMap<EscapeChannel, BTreeSet<EscapeChannel>>,
        marks: &mut BTreeMap<EscapeChannel, Mark>,
    ) -> bool {
        marks.insert(u, Mark::Grey);
        if let Some(nexts) = edges.get(&u) {
            for &v in nexts {
                match marks.get(&v).copied().unwrap_or(Mark::White) {
                    Mark::Grey => return false, // cycle
                    Mark::White => {
                        if !dfs(v, edges, marks) {
                            return false;
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        marks.insert(u, Mark::Black);
        true
    }
    for &k in &keys {
        if marks[&k] == Mark::White && !dfs(k, &edges, &mut marks) {
            return false;
        }
    }
    true
}

fn wraps(a: usize, b: usize, len: usize) -> bool {
    if len <= 2 {
        return false;
    }
    // Adjacent ring positions that are not numerically adjacent use the wrap.
    a.abs_diff(b) == len - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DistanceMatrix;
    use crate::ShuffleTorus;

    #[test]
    fn minimal_routes_match_distance_matrix() {
        let t = Torus2D::new(4, 4);
        let routes = Routes::compute(&t, RoutePolicy::Minimal);
        let d = DistanceMatrix::compute(&t);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    routes.distance(NodeId::new(a), 0, NodeId::new(b)),
                    d.distance(NodeId::new(a), NodeId::new(b)),
                );
            }
        }
    }

    #[test]
    fn minimal_ports_make_progress() {
        let t = Torus2D::new(8, 4);
        let routes = Routes::compute(&t, RoutePolicy::Minimal);
        for a in 0..32 {
            for b in 0..32 {
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                let ports = routes.minimal_ports(&t, a, 0, b);
                assert!(!ports.is_empty());
                for pi in ports {
                    let to = t.ports(a)[pi].to;
                    assert_eq!(routes.distance(to, 1, b) + 1, routes.distance(a, 0, b));
                }
            }
        }
    }

    #[test]
    fn walking_minimal_ports_reaches_destination() {
        let t = ShuffleTorus::new(8, 4);
        for policy in [
            RoutePolicy::Minimal,
            RoutePolicy::ShuffleFirstHop,
            RoutePolicy::ShuffleFirstTwoHops,
        ] {
            let routes = Routes::compute(&t, policy);
            for a in 0..32 {
                for b in 0..32 {
                    if a == b {
                        continue;
                    }
                    let (src, dst) = (NodeId::new(a), NodeId::new(b));
                    let mut at = src;
                    let mut taken = 0u32;
                    while at != dst {
                        let ports = routes.minimal_ports(&t, at, taken, dst);
                        assert!(!ports.is_empty(), "{policy:?}: stuck at {at} for {dst}");
                        at = t.ports(at)[ports[0]].to;
                        taken += 1;
                        assert!(taken <= 16, "{policy:?}: runaway route");
                    }
                }
            }
        }
    }

    #[test]
    fn shuffle_policy_orders_average_distance() {
        // Restricting shuffle links can only lengthen paths:
        // minimal <= two-hop <= one-hop <= plain torus.
        let s = ShuffleTorus::new(4, 2);
        let t = Torus2D::new(4, 2);
        let free = Routes::compute(&s, RoutePolicy::Minimal).average_distance(&s);
        let two = Routes::compute(&s, RoutePolicy::ShuffleFirstTwoHops).average_distance(&s);
        let one = Routes::compute(&s, RoutePolicy::ShuffleFirstHop).average_distance(&s);
        let torus = Routes::compute(&t, RoutePolicy::Minimal).average_distance(&t);
        assert!(free <= two + 1e-12);
        assert!(two <= one + 1e-12);
        assert!(one <= torus + 1e-12, "one={one} torus={torus}");
    }

    #[test]
    fn shuffle_first_hop_still_never_dead_ends() {
        let s = ShuffleTorus::new(8, 4);
        let routes = Routes::compute(&s, RoutePolicy::ShuffleFirstHop);
        for a in 0..32 {
            for b in 0..32 {
                if a != b {
                    assert_ne!(
                        routes.distance(NodeId::new(a), 0, NodeId::new(b)),
                        Routes::UNREACHABLE
                    );
                }
            }
        }
    }

    #[test]
    fn dimension_order_goes_x_first() {
        let t = Torus2D::new(4, 4);
        let n = |x, y| t.node_at(crate::Coord::new(x, y));
        assert_eq!(
            dimension_order_direction(&t, n(0, 0), n(2, 2)),
            Some(Direction::East)
        );
        assert_eq!(
            dimension_order_direction(&t, n(2, 0), n(2, 2)),
            Some(Direction::South)
        );
        assert_eq!(
            dimension_order_direction(&t, n(0, 0), n(3, 0)),
            Some(Direction::West)
        );
        assert_eq!(dimension_order_direction(&t, n(1, 1), n(1, 1)), None);
    }

    #[test]
    fn dimension_order_paths_are_minimal() {
        let t = Torus2D::new(8, 4);
        for a in 0..32 {
            for b in 0..32 {
                let (src, dst) = (NodeId::new(a), NodeId::new(b));
                let mut at = src;
                let mut hops = 0;
                while let Some(dir) = dimension_order_direction(&t, at, dst) {
                    at = t.ports(at).iter().find(|p| p.dir == Some(dir)).unwrap().to;
                    hops += 1;
                }
                assert_eq!(hops, t.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn escape_paths_follow_dimension_order_and_stamp_datelines() {
        let t = Torus2D::new(4, 4);
        for a in 0..16 {
            for b in 0..16 {
                let (src, dst) = (NodeId::new(a), NodeId::new(b));
                let path = escape_path(&t, src, dst, true);
                assert_eq!(path.len(), t.hop_distance(src, dst));
                if a == b {
                    continue;
                }
                assert_eq!(path[0].from, src);
                assert_eq!(path.last().unwrap().to, dst);
                for pair in path.windows(2) {
                    assert_eq!(pair[0].to, pair[1].from);
                    // The dateline VC never steps back within a dimension.
                    let same_dim = (t.coord_of(pair[0].from).y == t.coord_of(pair[0].to).y)
                        == (t.coord_of(pair[1].from).y == t.coord_of(pair[1].to).y);
                    if same_dim {
                        assert!(pair[1].vc >= pair[0].vc, "{path:?}");
                    }
                }
                // Without datelines every hop reports VC0.
                assert!(escape_path(&t, src, dst, false).iter().all(|c| c.vc == 0));
            }
        }
    }

    #[test]
    fn escape_network_acyclic_with_dateline_vcs() {
        for (c, r) in [(4, 4), (8, 4), (4, 2), (8, 8)] {
            assert!(
                escape_network_is_acyclic(&Torus2D::new(c, r), true),
                "{c}x{r} escape CDG has a cycle despite dateline VCs"
            );
        }
    }

    #[test]
    fn escape_network_cyclic_without_vcs_on_large_rings() {
        // The paper's point: a torus (wrap links) deadlocks without VC0/VC1.
        assert!(!escape_network_is_acyclic(&Torus2D::new(4, 4), false));
        assert!(!escape_network_is_acyclic(&Torus2D::new(8, 4), false));
        // A 2x2 "torus" has no true wrap links, so even one VC suffices.
        assert!(escape_network_is_acyclic(&Torus2D::new(2, 2), false));
    }
}
