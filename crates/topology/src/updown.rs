//! Up*/down* escape routing for wounded fabrics.
//!
//! Dimension-order routing with dateline VCs proves the *healthy* torus
//! deadlock-free, but a fault campaign (PR 2) cuts links mid-run, and a cut
//! can remove exactly the link dimension-order routing insists on. The
//! classic repair — used by Autonet and by every spanning-tree-based
//! irregular-fabric router since — is **up*/down*** routing: root a BFS
//! spanning tree at node 0, call a link *up* when it leads toward the root
//! (smaller `(depth, id)` rank) and *down* otherwise, and restrict every
//! route to zero or more up hops followed by zero or more down hops. A
//! packet never turns down-then-up, so channel dependencies follow the rank
//! order monotonically: up channels only feed channels of still-smaller head
//! rank (or the down network), down channels only feed larger head ranks —
//! no cycle can close.
//!
//! [`UpDownRoutes`] computes shortest *legal* paths on any connected
//! [`Topology`], deterministically (ties break on port order). The `verify`
//! crate builds its channel-dependency graph over these paths and proves the
//! acyclicity claim above for every single and double link cut the fault
//! sets can produce, instead of trusting the folklore argument.

use crate::ids::NodeId;
use crate::route::EscapeChannel;
use crate::Topology;

use std::collections::VecDeque;

/// Escape routes over a (possibly degraded) topology, restricted to
/// up*/down* legal paths on a BFS spanning tree rooted at node 0.
///
/// # Examples
///
/// ```
/// use alphasim_topology::{Degraded, NodeId, Torus2D, UpDownRoutes};
///
/// let wounded = Degraded::new(Torus2D::new(4, 4), &[(NodeId::new(0), NodeId::new(1))]);
/// let routes = UpDownRoutes::compute(&wounded).expect("still connected");
/// let path = routes.path(&wounded, NodeId::new(0), NodeId::new(1));
/// assert_eq!(path.first().expect("non-empty").from, NodeId::new(0));
/// assert_eq!(path.last().expect("non-empty").to, NodeId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct UpDownRoutes {
    /// Total order on nodes: `rank[v] = depth(v) * n + v`, root-first.
    rank: Vec<u64>,
}

/// Why up*/down* routes could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpDownError {
    /// Some node is unreachable from the root; no spanning tree exists.
    Disconnected {
        /// The first unreachable node.
        node: NodeId,
    },
}

impl std::fmt::Display for UpDownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpDownError::Disconnected { node } => {
                write!(f, "fabric is partitioned: {node} unreachable from n0")
            }
        }
    }
}

impl std::error::Error for UpDownError {}

/// Phase encoding used in the [`EscapeChannel::vc`] field of up*/down*
/// paths: up hops ride VC0, down hops VC1.
pub const UP_VC: u8 = 0;
/// See [`UP_VC`].
pub const DOWN_VC: u8 = 1;

impl UpDownRoutes {
    /// Root a BFS spanning tree at node 0 of `topo` and derive the rank
    /// order, or report the partition if `topo` is disconnected.
    pub fn compute<T: Topology + ?Sized>(topo: &T) -> Result<Self, UpDownError> {
        let n = topo.node_count();
        assert!(n > 0, "empty topology");
        let mut depth = vec![u64::MAX; n];
        depth[0] = 0;
        let mut queue = VecDeque::from([0usize]);
        while let Some(at) = queue.pop_front() {
            for p in topo.ports(NodeId::new(at)) {
                let to = p.to.index();
                if depth[to] == u64::MAX {
                    depth[to] = depth[at] + 1;
                    queue.push_back(to);
                }
            }
        }
        if let Some(node) = (0..n).find(|&v| depth[v] == u64::MAX) {
            return Err(UpDownError::Disconnected {
                node: NodeId::new(node),
            });
        }
        let rank = (0..n).map(|v| depth[v] * n as u64 + v as u64).collect();
        Ok(UpDownRoutes { rank })
    }

    /// Whether the directed link `from -> to` is an *up* link (toward the
    /// root in rank order).
    pub fn is_up(&self, from: NodeId, to: NodeId) -> bool {
        self.rank[to.index()] < self.rank[from.index()]
    }

    /// The shortest up*/down* legal path from `src` to `dst`, one
    /// [`EscapeChannel`] per hop with `vc` = [`UP_VC`] on up hops and
    /// [`DOWN_VC`] on down hops. Deterministic: ties break on port order.
    ///
    /// Empty when `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is not the topology these routes were computed for
    /// (a legal path always exists on the spanning tree itself).
    pub fn path<T: Topology + ?Sized>(
        &self,
        topo: &T,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<EscapeChannel> {
        self.path_with_dist(topo, src, dst, &self.distances_to(topo, dst))
    }

    /// [`path`](Self::path) with the destination's distance field supplied
    /// by the caller, so sweeps over many sources share one BFS.
    fn path_with_dist<T: Topology + ?Sized>(
        &self,
        topo: &T,
        src: NodeId,
        dst: NodeId,
        dist: &[u32],
    ) -> Vec<EscapeChannel> {
        let n = topo.node_count();
        let mut path = Vec::new();
        let (mut at, mut phase) = (src, 0usize);
        while at != dst {
            let here = dist[phase * n + at.index()];
            assert!(here != u32::MAX, "no legal up*/down* path {src} -> {dst}");
            let mut step = None;
            for p in topo.ports(at) {
                let next_phase = if self.is_up(at, p.to) { phase } else { 1 };
                // A down-then-up turn is illegal: an up hop out of the down
                // phase never continues a legal path.
                if phase == 1 && next_phase == 0 {
                    continue;
                }
                let there = dist[next_phase * n + p.to.index()];
                if there != u32::MAX && there + 1 == here {
                    step = Some((p.to, next_phase));
                    break;
                }
            }
            let (to, next_phase) = step.expect("a minimal legal next hop exists");
            path.push(EscapeChannel {
                from: at,
                to,
                vc: if next_phase == 0 { UP_VC } else { DOWN_VC },
            });
            at = to;
            phase = next_phase;
        }
        path
    }

    /// Legal-path distances from every `(node, phase)` state to `dst`,
    /// indexed `phase * n + node` with phase 0 = still climbing (up hops
    /// allowed), phase 1 = descending (down hops only). `u32::MAX` marks
    /// states that cannot reach `dst` legally.
    fn distances_to<T: Topology + ?Sized>(&self, topo: &T, dst: NodeId) -> Vec<u32> {
        self.distances_to_with(topo, dst, &reverse_adjacency(topo))
    }

    /// [`distances_to`](Self::distances_to) with the reverse adjacency
    /// supplied by the caller, so all-pairs sweeps build it once instead
    /// of once per destination.
    fn distances_to_with<T: Topology + ?Sized>(
        &self,
        topo: &T,
        dst: NodeId,
        radj: &[Vec<NodeId>],
    ) -> Vec<u32> {
        let n = topo.node_count();
        // Backward BFS over the layered legality graph: forward transitions
        // are (v, up) -up-> (w, up), (v, up) -down-> (w, down),
        // (v, down) -down-> (w, down). Arrival in either phase counts.
        let mut dist = vec![u32::MAX; 2 * n];
        let mut queue = VecDeque::new();
        for phase in [0usize, 1] {
            dist[phase * n + dst.index()] = 0;
            queue.push_back(phase * n + dst.index());
        }
        while let Some(state) = queue.pop_front() {
            let (phase, node) = (state / n, state % n);
            let d = dist[state];
            // Predecessors (v, pp) with a forward edge into (node, phase);
            // legality depends on the hop direction.
            for &from in &radj[node] {
                let up_hop = self.is_up(from, NodeId::new(node));
                let preds: &[usize] = match (up_hop, phase) {
                    (true, 0) => &[0],     // up hop keeps the up phase
                    (false, 1) => &[0, 1], // down hop enters/continues down
                    // An up hop cannot land in the down phase, and a down
                    // hop never lands in the up phase.
                    _ => &[],
                };
                for &pp in preds {
                    let s = pp * n + from.index();
                    if dist[s] == u32::MAX {
                        dist[s] = d + 1;
                        queue.push_back(s);
                    }
                }
            }
        }
        dist
    }

    /// Up*/down* paths for every ordered endpoint pair, in `(src, dst)`
    /// lexicographic order.
    pub fn all_pairs<T: Topology + ?Sized>(&self, topo: &T) -> Vec<Vec<EscapeChannel>> {
        let n = topo.node_count();
        let mut paths = Vec::with_capacity(n * (n - 1));
        self.for_each_pair(topo, |path| paths.push(path.to_vec()));
        paths
    }

    /// Visit the up*/down* path of every ordered endpoint pair in
    /// `(src, dst)` lexicographic order without materializing them all —
    /// at 1024 nodes the million-path vector of [`all_pairs`]
    /// (Self::all_pairs) costs hundreds of megabytes, while the visitor
    /// needs one path at a time.
    pub fn for_each_pair<T: Topology + ?Sized>(
        &self,
        topo: &T,
        mut visit: impl FnMut(&[EscapeChannel]),
    ) {
        let n = topo.node_count();
        let radj = reverse_adjacency(topo);
        // One backward BFS per destination, shared across all sources.
        let dists: Vec<Vec<u32>> = (0..n)
            .map(|dst| self.distances_to_with(topo, NodeId::new(dst), &radj))
            .collect();
        for src in 0..n {
            for (dst, dist) in dists.iter().enumerate() {
                if src != dst {
                    visit(&self.path_with_dist(topo, NodeId::new(src), NodeId::new(dst), dist));
                }
            }
        }
    }
}

/// `radj[w]` lists every node with a port into `w`, in port-scan order.
fn reverse_adjacency<T: Topology + ?Sized>(topo: &T) -> Vec<Vec<NodeId>> {
    let n = topo.node_count();
    let mut radj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n {
        let from = NodeId::new(v);
        for p in topo.ports(from) {
            radj[p.to.index()].push(from);
        }
    }
    radj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Degraded, Torus2D};

    #[test]
    fn paths_are_legal_and_reach_their_destination() {
        let t = Torus2D::new(4, 4);
        let routes = UpDownRoutes::compute(&t).expect("torus is connected");
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                let path = routes.path(&t, NodeId::new(src), NodeId::new(dst));
                assert_eq!(path.first().expect("non-empty").from, NodeId::new(src));
                assert_eq!(path.last().expect("non-empty").to, NodeId::new(dst));
                // Contiguous, and never down-then-up.
                let mut descended = false;
                for pair in path.windows(2) {
                    assert_eq!(pair[0].to, pair[1].from);
                }
                for hop in &path {
                    let up = routes.is_up(hop.from, hop.to);
                    assert_eq!(hop.vc, if up { UP_VC } else { DOWN_VC });
                    if up {
                        assert!(!descended, "down-then-up turn in {path:?}");
                    } else {
                        descended = true;
                    }
                }
            }
        }
    }

    #[test]
    fn survives_single_cuts_and_is_deterministic() {
        let base = Torus2D::new(4, 4);
        let wounded = Degraded::new(base, &[(NodeId::new(0), NodeId::new(1))]);
        let routes = UpDownRoutes::compute(&wounded).expect("connected");
        let a = routes.all_pairs(&wounded);
        let b = UpDownRoutes::compute(&wounded)
            .expect("connected")
            .all_pairs(&wounded);
        assert_eq!(a, b, "route computation must be deterministic");
        assert_eq!(a.len(), 16 * 15);
        // The cut link is never used.
        for path in &a {
            for hop in path {
                let ends = (
                    hop.from.index().min(hop.to.index()),
                    hop.from.index().max(hop.to.index()),
                );
                assert_ne!(ends, (0, 1), "path uses the failed link: {path:?}");
            }
        }
    }

    #[test]
    fn partition_is_reported_not_panicked() {
        let base = Torus2D::new(2, 2);
        let cuts: Vec<(NodeId, NodeId)> = base
            .ports(NodeId::new(0))
            .iter()
            .map(|p| (NodeId::new(0), p.to))
            .collect();
        let cut_off = Degraded::new(base, &cuts);
        let err = UpDownRoutes::compute(&cut_off).expect_err("node 0 is isolated");
        assert!(matches!(err, UpDownError::Disconnected { .. }));
        assert!(err.to_string().contains("partitioned"));
    }

    #[test]
    fn rank_orders_root_first() {
        let t = Torus2D::new(4, 4);
        let routes = UpDownRoutes::compute(&t).expect("connected");
        // The root has the smallest rank; its neighbors point up at it.
        for p in t.ports(NodeId::new(0)) {
            assert!(routes.is_up(p.to, NodeId::new(0)));
            assert!(!routes.is_up(NodeId::new(0), p.to));
        }
    }
}
