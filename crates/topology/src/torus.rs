//! The GS1280's 2-D torus fabric (paper §2, Fig. 3).

use serde::{Deserialize, Serialize};

use crate::ids::{Coord, Direction, LinkClass, NodeId, Port};
use crate::Topology;

/// A `cols × rows` 2-D torus of EV7 routers, one CPU per node.
///
/// Node ids are assigned row-major: node `y * cols + x` sits at column `x`,
/// row `y`. Every node has an East, West, North and South port. For
/// `rows == 2` the North and South ports of a node reach the *same*
/// neighbor — the "redundant North–South connections" the paper's shuffle
/// rewiring (§4.1) repurposes. Likewise `cols == 2` yields redundant
/// East–West links. Degenerate 1-wide dimensions get no links in that
/// dimension.
///
/// Link classes model the GS1280 packaging (used to reproduce Fig. 13):
///
/// * vertical links inside a dual-CPU module (rows `2m ↔ 2m+1`) are
///   [`LinkClass::Module`];
/// * other non-wrap links are [`LinkClass::Board`];
/// * wrap-around links are [`LinkClass::Cable`].
///
/// # Examples
///
/// ```
/// use alphasim_topology::{Torus2D, Topology, NodeId};
/// let t = Torus2D::new(4, 4); // the paper's 16-CPU machine
/// assert_eq!(t.node_count(), 16);
/// assert_eq!(t.ports(NodeId::new(0)).len(), 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Torus2D {
    cols: usize,
    rows: usize,
    ports: Vec<Vec<Port>>,
}

impl Torus2D {
    /// A torus with `cols` columns and `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        let mut torus = Torus2D {
            cols,
            rows,
            ports: Vec::new(),
        };
        torus.ports = (0..cols * rows)
            .map(|i| torus.build_ports(NodeId::new(i)))
            .collect();
        torus
    }

    /// The standard configuration for `cpus` processors, matching the
    /// paper's machine sizes: 4 → 2×2, 8 → 4×2, 16 → 4×4, 32 → 8×4,
    /// 64 → 8×8, plus the projected larger builds 128 → 16×8 and
    /// 256 → 16×16 (the paper's §7 scaling discussion).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is not one of the supported machine sizes.
    pub fn for_cpus(cpus: usize) -> Self {
        let (cols, rows) = match cpus {
            2 => (2, 1),
            4 => (2, 2),
            8 => (4, 2),
            16 => (4, 4),
            32 => (8, 4),
            64 => (8, 8),
            128 => (16, 8),
            256 => (16, 16),
            _ => panic!("unsupported GS1280 size: {cpus} CPUs"),
        };
        Torus2D::new(cols, rows)
    }

    /// Number of columns (East–West ring length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (North–South ring length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The node at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn node_at(&self, coord: Coord) -> NodeId {
        let (x, y) = (coord.x as usize, coord.y as usize);
        assert!(x < self.cols && y < self.rows, "coordinate off-grid");
        NodeId::new(y * self.cols + x)
    }

    /// The coordinate of a node.
    pub fn coord_of(&self, node: NodeId) -> Coord {
        let i = node.index();
        assert!(i < self.cols * self.rows, "node out of range");
        Coord::new(i % self.cols, i / self.cols)
    }

    /// Minimal hop distance between two nodes (torus metric).
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        ring_distance(ca.x as usize, cb.x as usize, self.cols)
            + ring_distance(ca.y as usize, cb.y as usize, self.rows)
    }

    /// The other CPU on the same dual-CPU module, if any.
    ///
    /// Modules pair vertically adjacent rows `2m` and `2m+1` of a column;
    /// a machine with an odd row count leaves the last row unpaired.
    pub fn module_partner(&self, node: NodeId) -> Option<NodeId> {
        let c = self.coord_of(node);
        let y = c.y as usize;
        let partner_y = if y.is_multiple_of(2) { y + 1 } else { y - 1 };
        if partner_y < self.rows {
            Some(self.node_at(Coord::new(c.x as usize, partner_y)))
        } else {
            None
        }
    }

    fn vertical_class(&self, y_from: usize, y_to: usize) -> LinkClass {
        // Wrap link?
        let wrap = (y_from + 1) % self.rows == y_to || (y_to + 1) % self.rows == y_from;
        let adjacent = y_from.abs_diff(y_to) == 1;
        if !adjacent && wrap && self.rows > 2 {
            return LinkClass::Cable;
        }
        // Same-module link: rows 2m ↔ 2m+1.
        if y_from.min(y_to).is_multiple_of(2) && y_from.abs_diff(y_to) == 1 {
            LinkClass::Module
        } else {
            LinkClass::Board
        }
    }

    fn horizontal_class(&self, x_from: usize, x_to: usize) -> LinkClass {
        let adjacent = x_from.abs_diff(x_to) == 1;
        if !adjacent && self.cols > 2 {
            LinkClass::Cable
        } else {
            LinkClass::Board
        }
    }

    fn build_ports(&self, node: NodeId) -> Vec<Port> {
        let c = self.coord_of(node);
        let (x, y) = (c.x as usize, c.y as usize);
        let mut ports = Vec::with_capacity(4);
        if self.cols > 1 {
            let east = (x + 1) % self.cols;
            let west = (x + self.cols - 1) % self.cols;
            ports.push(Port::directed(
                self.node_at(Coord::new(east, y)),
                self.horizontal_class(x, east),
                Direction::East,
            ));
            ports.push(Port::directed(
                self.node_at(Coord::new(west, y)),
                self.horizontal_class(x, west),
                Direction::West,
            ));
        }
        if self.rows > 1 {
            let south = (y + 1) % self.rows;
            let north = (y + self.rows - 1) % self.rows;
            ports.push(Port::directed(
                self.node_at(Coord::new(x, north)),
                self.vertical_class(y, north),
                Direction::North,
            ));
            ports.push(Port::directed(
                self.node_at(Coord::new(x, south)),
                self.vertical_class(y, south),
                Direction::South,
            ));
        }
        ports
    }
}

impl Topology for Torus2D {
    fn name(&self) -> String {
        format!("torus-{}x{}", self.cols, self.rows)
    }

    fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, _node: NodeId) -> bool {
        true
    }

    fn coord(&self, node: NodeId) -> Option<Coord> {
        Some(self.coord_of(node))
    }
}

/// Distance around a ring of length `len` between positions `a` and `b`.
pub(crate) fn ring_distance(a: usize, b: usize, len: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(len - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_roundtrip() {
        let t = Torus2D::new(8, 4);
        for i in 0..32 {
            let n = NodeId::new(i);
            assert_eq!(t.node_at(t.coord_of(n)), n);
        }
    }

    #[test]
    fn every_node_has_four_ports_in_2d() {
        let t = Torus2D::new(4, 4);
        for i in 0..16 {
            assert_eq!(t.ports(NodeId::new(i)).len(), 4);
        }
        assert_eq!(t.link_count(), 64);
    }

    #[test]
    fn redundant_links_when_dimension_is_two() {
        // In a 4x2 torus, North and South of a node both reach the same peer.
        let t = Torus2D::new(4, 2);
        let ports = t.ports(NodeId::new(0));
        let vertical: Vec<_> = ports
            .iter()
            .filter(|p| p.dir.is_some_and(|d| !d.is_horizontal()))
            .collect();
        assert_eq!(vertical.len(), 2);
        assert_eq!(vertical[0].to, vertical[1].to);
        assert_eq!(vertical[0].to, NodeId::new(4));
    }

    #[test]
    fn links_are_symmetric() {
        for (c, r) in [(4, 4), (8, 4), (4, 2), (8, 8), (2, 2)] {
            let t = Torus2D::new(c, r);
            for i in 0..t.node_count() {
                let n = NodeId::new(i);
                for p in t.ports(n) {
                    let back = t
                        .ports(p.to)
                        .iter()
                        .filter(|q| q.to == n && q.class == p.class)
                        .count();
                    assert!(back >= 1, "missing reverse of {n}->{}", p.to);
                }
            }
        }
    }

    #[test]
    fn hop_distance_matches_torus_metric() {
        let t = Torus2D::new(4, 4);
        let n = |x, y| t.node_at(Coord::new(x, y));
        assert_eq!(t.hop_distance(n(0, 0), n(0, 0)), 0);
        assert_eq!(t.hop_distance(n(0, 0), n(3, 0)), 1); // wrap
        assert_eq!(t.hop_distance(n(0, 0), n(2, 2)), 4); // worst case
        assert_eq!(t.hop_distance(n(1, 1), n(3, 3)), 4);
    }

    #[test]
    fn link_classes_follow_packaging() {
        let t = Torus2D::new(4, 4);
        let n = |x, y| t.node_at(Coord::new(x, y));
        let class = |from: NodeId, to: NodeId| {
            t.ports(from)
                .iter()
                .find(|p| p.to == to)
                .expect("link exists")
                .class
        };
        // Rows 0-1 are one module; 1-2 crosses modules; wraps are cables.
        assert_eq!(class(n(0, 0), n(0, 1)), LinkClass::Module);
        assert_eq!(class(n(0, 1), n(0, 2)), LinkClass::Board);
        assert_eq!(class(n(0, 2), n(0, 3)), LinkClass::Module);
        assert_eq!(class(n(0, 0), n(0, 3)), LinkClass::Cable);
        assert_eq!(class(n(0, 0), n(1, 0)), LinkClass::Board);
        assert_eq!(class(n(0, 0), n(3, 0)), LinkClass::Cable);
    }

    #[test]
    fn module_partners_pair_up() {
        let t = Torus2D::new(4, 4);
        for i in 0..16 {
            let n = NodeId::new(i);
            let partner = t.module_partner(n).unwrap();
            assert_eq!(t.module_partner(partner), Some(n));
            assert_ne!(partner, n);
        }
        // Odd row count: last row unpaired.
        let t3 = Torus2D::new(2, 3);
        assert_eq!(t3.module_partner(t3.node_at(Coord::new(0, 2))), None);
    }

    #[test]
    fn for_cpus_matches_paper_shapes() {
        assert_eq!(Torus2D::for_cpus(16).name(), "torus-4x4");
        assert_eq!(Torus2D::for_cpus(32).name(), "torus-8x4");
        assert_eq!(Torus2D::for_cpus(64).name(), "torus-8x8");
        assert_eq!(Torus2D::for_cpus(8).name(), "torus-4x2");
    }

    #[test]
    #[should_panic(expected = "unsupported GS1280 size")]
    fn for_cpus_rejects_odd_sizes() {
        let _ = Torus2D::for_cpus(12);
    }

    #[test]
    fn degenerate_single_row_has_no_vertical_links() {
        let t = Torus2D::new(2, 1);
        assert_eq!(t.ports(NodeId::new(0)).len(), 2);
        assert!(t
            .ports(NodeId::new(0))
            .iter()
            .all(|p| p.dir.unwrap().is_horizontal()));
    }

    #[test]
    fn ring_distance_basics() {
        assert_eq!(ring_distance(0, 3, 4), 1);
        assert_eq!(ring_distance(0, 2, 4), 2);
        assert_eq!(ring_distance(1, 1, 4), 0);
        assert_eq!(ring_distance(0, 7, 8), 1);
    }
}
