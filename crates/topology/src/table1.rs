//! Table 1 of the paper: analytical performance gains of the shuffle
//! interconnect over the plain torus.
//!
//! For each machine shape the paper reports three ratios (torus value over
//! shuffle value for the latency columns, shuffle over torus for bisection —
//! in all three columns larger means "shuffle better"):
//!
//! ```text
//!            aver. latency   worst latency   bisection width
//!   4x2        1.200           1.500           2.000
//!   4x4        1.067           1.333           1.000
//!   8x4        1.171           1.500           2.000
//!   8x8        1.185           1.333           1.000
//!   16x8       1.371           1.500           2.000
//!   16x16      1.454           1.778           1.000
//! ```
//!
//! # Reconstruction fidelity
//!
//! The paper attributes these numbers to "a simple analytical model" it does
//! not specify; only the 8-CPU (4×2) cable swap is drawn (Figs. 16–17). Our
//! [`ShuffleTorus`] generalises that swap as a twisted torus, which
//! reproduces the 4×2 and 4×4 rows *exactly*, the 8×4 row within 3 %, and
//! the worst-latency and bisection columns for every shape except the
//! worst-latency entry of 16×16 (paper 1.778, twisted torus 1.333). The
//! paper's average-latency gains *grow* with system size, which no
//! degree-preserving re-aiming of wrap cables achieves (a twist of `P/2`
//! matters less as rings grow); the published large-shape averages likely
//! come from a more aggressive hypothetical rewiring. EXPERIMENTS.md tables
//! report computed-vs-paper for all 18 cells.

use serde::{Deserialize, Serialize};

use crate::graph::{bisection_width, DistanceMatrix};
use crate::{ShuffleTorus, Torus2D};

/// The shuffle-vs-torus gains for one machine shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShuffleGains {
    /// Columns of the torus.
    pub cols: usize,
    /// Rows of the torus.
    pub rows: usize,
    /// Torus average hop distance / shuffle average hop distance.
    pub avg_latency_gain: f64,
    /// Torus diameter / shuffle diameter.
    pub worst_latency_gain: f64,
    /// Shuffle bisection width / torus bisection width.
    pub bisection_gain: f64,
    /// Raw torus metrics `(avg, worst, bisection)`.
    pub torus: (f64, u32, usize),
    /// Raw shuffle metrics `(avg, worst, bisection)`.
    pub shuffle: (f64, u32, usize),
}

/// Compute the three Table 1 ratios for a `cols × rows` machine.
///
/// # Examples
///
/// ```
/// use alphasim_topology::table1::shuffle_gains;
/// let g = shuffle_gains(4, 2);
/// assert!((g.avg_latency_gain - 1.2).abs() < 1e-9);
/// assert!((g.worst_latency_gain - 1.5).abs() < 1e-9);
/// assert!((g.bisection_gain - 2.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics on shapes the shuffle construction does not support
/// (odd or <4 columns, <2 rows).
pub fn shuffle_gains(cols: usize, rows: usize) -> ShuffleGains {
    let torus = Torus2D::new(cols, rows);
    let shuffle = ShuffleTorus::new(cols, rows);
    let dt = DistanceMatrix::compute(&torus);
    let ds = DistanceMatrix::compute(&shuffle);
    let torus_metrics = (
        dt.average_distance(),
        dt.diameter(),
        bisection_width(&torus),
    );
    let shuffle_metrics = (
        ds.average_distance(),
        ds.diameter(),
        bisection_width(&shuffle),
    );
    ShuffleGains {
        cols,
        rows,
        avg_latency_gain: torus_metrics.0 / shuffle_metrics.0,
        worst_latency_gain: f64::from(torus_metrics.1) / f64::from(shuffle_metrics.1),
        bisection_gain: shuffle_metrics.2 as f64 / torus_metrics.2 as f64,
        torus: torus_metrics,
        shuffle: shuffle_metrics,
    }
}

/// The machine shapes of Table 1, as `(cols, rows)`.
pub const TABLE1_SHAPES: [(usize, usize); 6] = [(4, 2), (4, 4), (8, 4), (8, 8), (16, 8), (16, 16)];

/// The paper's published Table 1 values, in [`TABLE1_SHAPES`] order:
/// `(avg latency, worst latency, bisection width)` gains.
pub const TABLE1_PAPER: [(f64, f64, f64); 6] = [
    (1.200, 1.500, 2.000),
    (1.067, 1.333, 1.000),
    (1.171, 1.500, 2.000),
    (1.185, 1.333, 1.000),
    (1.371, 1.500, 2.000),
    (1.454, 1.778, 1.000),
];

/// Compute the whole of Table 1.
pub fn table1() -> Vec<ShuffleGains> {
    TABLE1_SHAPES
        .iter()
        .map(|&(c, r)| shuffle_gains(c, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_shapes_double_bisection() {
        for &(c, r) in &[(4usize, 2usize), (8, 4), (16, 8)] {
            let g = shuffle_gains(c, r);
            assert!(
                (g.bisection_gain - 2.0).abs() < 1e-9,
                "{c}x{r}: {}",
                g.bisection_gain
            );
        }
    }

    #[test]
    fn square_shapes_keep_bisection() {
        for &(c, r) in &[(4usize, 4usize), (8, 8), (16, 16)] {
            let g = shuffle_gains(c, r);
            assert!(
                (g.bisection_gain - 1.0).abs() < 1e-9,
                "{c}x{r}: {}",
                g.bisection_gain
            );
        }
    }

    #[test]
    fn worst_latency_gains_match_paper_except_16x16() {
        // See the module docs: our reconstruction matches the worst-case
        // column everywhere but the extrapolated 16x16 entry.
        for (&(c, r), &(_, worst, _)) in TABLE1_SHAPES.iter().zip(TABLE1_PAPER.iter()) {
            if (c, r) == (16, 16) {
                continue;
            }
            let g = shuffle_gains(c, r);
            assert!(
                (g.worst_latency_gain - worst).abs() < 0.01,
                "{c}x{r}: computed {} vs paper {worst}",
                g.worst_latency_gain
            );
        }
    }

    #[test]
    fn small_shape_average_gains_match_paper_exactly() {
        // 4x2 and 4x4 are the shapes the paper actually draws; the
        // twisted-torus reconstruction reproduces them exactly, and 8x4
        // within 3%.
        let g = shuffle_gains(4, 2);
        assert!((g.avg_latency_gain - 1.200).abs() < 1e-9);
        let g = shuffle_gains(4, 4);
        assert!((g.avg_latency_gain - 1.067).abs() < 1e-3);
        let g = shuffle_gains(8, 4);
        assert!((g.avg_latency_gain - 1.171).abs() / 1.171 < 0.03);
    }

    #[test]
    fn rectangular_shapes_gain_more_than_squares() {
        // The paper's qualitative claim: "shuffle is more beneficial in
        // rectangular rather than in square shaped interconnects".
        let t = table1();
        // Shapes alternate rect, square, rect, square, rect, square.
        for pair in t.chunks(2) {
            let (rect, square) = (&pair[0], &pair[1]);
            assert!(rect.bisection_gain > square.bisection_gain);
            assert!(rect.worst_latency_gain > square.worst_latency_gain);
            assert!(rect.avg_latency_gain > square.avg_latency_gain);
        }
    }

    #[test]
    fn gains_never_below_one() {
        for g in table1() {
            assert!(g.avg_latency_gain >= 1.0 - 1e-9);
            assert!(g.worst_latency_gain >= 1.0 - 1e-9);
            assert!(g.bisection_gain >= 1.0 - 1e-9);
        }
    }
}
