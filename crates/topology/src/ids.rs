//! Identifiers shared across topology, network and system crates.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense node identifier within one topology.
///
/// # Examples
///
/// ```
/// use alphasim_topology::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// A node id from its dense index.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

/// A position on the 2-D torus grid: `x` is the column (East–West ring),
/// `y` is the row (North–South ring).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column index, `0..cols`.
    pub x: u16,
    /// Row index, `0..rows`.
    pub y: u16,
}

impl Coord {
    /// A coordinate from column and row.
    pub fn new(x: usize, y: usize) -> Self {
        Coord {
            x: u16::try_from(x).expect("column exceeds u16"),
            y: u16::try_from(y).expect("row exceeds u16"),
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Compass direction of a torus port, matching the paper's router description
/// ("the router connects to 4 links that connect to 4 neighbors in the torus:
/// North, South, East, and West").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// +x neighbor.
    East,
    /// −x neighbor.
    West,
    /// −y neighbor.
    North,
    /// +y neighbor.
    South,
}

impl Direction {
    /// All four directions, in a fixed order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// Whether the direction moves along the x (East–West) dimension.
    pub fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
        };
        f.write_str(s)
    }
}

/// Physical class of a link, which determines its latency and (for the
/// paper's Fig. 13) explains why 1-hop neighbors differ: same-module
/// neighbors are reached in 139 ns, cabled neighbors in 154 ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Between the two CPUs of one dual-processor module (shortest).
    Module,
    /// Backplane/board link between modules in the same drawer.
    Board,
    /// Inter-drawer cable (torus wrap-around links).
    Cable,
    /// A re-aimed "shuffle" link (§4.1); physically a cable.
    Shuffle,
    /// GS320 CPU ↔ QBB local-switch link.
    QbbLocal,
    /// GS320 QBB ↔ global-switch link.
    QbbGlobal,
    /// ES45 shared memory bus segment.
    Bus,
    /// SC45 Quadrics-style cluster link.
    Cluster,
}

impl LinkClass {
    /// Whether this class is part of a torus fabric (as opposed to the
    /// hierarchical-switch or bus machines).
    pub fn is_torus(self) -> bool {
        matches!(
            self,
            LinkClass::Module | LinkClass::Board | LinkClass::Cable | LinkClass::Shuffle
        )
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::Module => "module",
            LinkClass::Board => "board",
            LinkClass::Cable => "cable",
            LinkClass::Shuffle => "shuffle",
            LinkClass::QbbLocal => "qbb-local",
            LinkClass::QbbGlobal => "qbb-global",
            LinkClass::Bus => "bus",
            LinkClass::Cluster => "cluster",
        };
        f.write_str(s)
    }
}

/// One outgoing directed link of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Port {
    /// The node this port leads to.
    pub to: NodeId,
    /// Physical class (latency/bandwidth bucket).
    pub class: LinkClass,
    /// Compass direction, for torus fabrics.
    pub dir: Option<Direction>,
}

impl Port {
    /// A port with a direction (torus fabrics).
    pub fn directed(to: NodeId, class: LinkClass, dir: Direction) -> Self {
        Port {
            to,
            class,
            dir: Some(dir),
        }
    }

    /// A port without a compass direction (switches, buses).
    pub fn undirected(to: NodeId, class: LinkClass) -> Self {
        Port {
            to,
            class,
            dir: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 63, 255] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(NodeId::from(i), NodeId::new(i));
        }
    }

    #[test]
    fn direction_opposites_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
            assert_eq!(d.is_horizontal(), d.opposite().is_horizontal());
        }
    }

    #[test]
    fn link_class_torus_membership() {
        assert!(LinkClass::Module.is_torus());
        assert!(LinkClass::Shuffle.is_torus());
        assert!(!LinkClass::QbbGlobal.is_torus());
        assert!(!LinkClass::Bus.is_torus());
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(format!("{}", Coord::new(2, 3)), "(2,3)");
        assert_eq!(format!("{}", Direction::North), "N");
        assert_eq!(format!("{}", LinkClass::Cable), "cable");
    }
}
