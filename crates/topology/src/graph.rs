//! Graph analyses over [`Topology`]: all-pairs hop distances and the three
//! metrics of the paper's Table 1 (average latency, worst-case latency,
//! bisection width).

use crate::ids::NodeId;
use crate::Topology;

/// All-pairs hop distances, computed by breadth-first search from every node.
///
/// # Examples
///
/// ```
/// use alphasim_topology::{Torus2D, graph::DistanceMatrix, NodeId};
/// let d = DistanceMatrix::compute(&Torus2D::new(4, 2));
/// assert_eq!(d.distance(NodeId::new(0), NodeId::new(2)), 2);
/// assert_eq!(d.diameter(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>,
    endpoints: Vec<NodeId>,
}

impl DistanceMatrix {
    /// Distance value meaning "unreachable".
    pub const UNREACHABLE: u32 = u32::MAX;

    /// BFS all-pairs distances over `topo`.
    pub fn compute<T: Topology + ?Sized>(topo: &T) -> Self {
        let n = topo.node_count();
        let mut dist = vec![Self::UNREACHABLE; n * n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            queue.clear();
            queue.push_back(NodeId::new(src));
            while let Some(u) = queue.pop_front() {
                let du = row[u.index()];
                for p in topo.ports(u) {
                    let v = p.to.index();
                    if row[v] == Self::UNREACHABLE {
                        row[v] = du + 1;
                        queue.push_back(p.to);
                    }
                }
            }
        }
        DistanceMatrix {
            n,
            dist,
            endpoints: topo.endpoints(),
        }
    }

    /// Hop distance from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.dist.iter().all(|&d| d != Self::UNREACHABLE)
    }

    /// Mean hop distance over ordered endpoint pairs with `src != dst`.
    pub fn average_distance(&self) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for &a in &self.endpoints {
            for &b in &self.endpoints {
                if a != b {
                    total += u64::from(self.distance(a, b));
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    /// Worst-case hop distance between endpoints (network diameter).
    pub fn diameter(&self) -> u32 {
        let mut worst = 0;
        for &a in &self.endpoints {
            for &b in &self.endpoints {
                if a != b {
                    worst = worst.max(self.distance(a, b));
                }
            }
        }
        worst
    }

    /// Mean hop distance from one endpoint to all other endpoints.
    pub fn average_from(&self, src: NodeId) -> f64 {
        let others: Vec<u32> = self
            .endpoints
            .iter()
            .filter(|&&b| b != src)
            .map(|&b| self.distance(src, b))
            .collect();
        if others.is_empty() {
            0.0
        } else {
            others.iter().map(|&d| u64::from(d)).sum::<u64>() as f64 / others.len() as f64
        }
    }
}

/// Bisection width of a grid-laid-out topology: the minimum, over
/// axis-aligned halvings, of the number of (undirected) links crossing the
/// cut. Both torus dimensions may wrap, so every rotation of the halving is
/// tried.
///
/// Matches the notion used in the paper's Table 1, where the shuffle doubles
/// the bisection of 2:1-aspect tori and leaves square tori unchanged.
///
/// # Panics
///
/// Panics if the topology has nodes without coordinates or if neither grid
/// dimension is even.
pub fn bisection_width<T: Topology + ?Sized>(topo: &T) -> usize {
    let n = topo.node_count();
    let coords: Vec<_> = (0..n)
        .map(|i| {
            topo.coord(NodeId::new(i))
                .expect("bisection requires a grid layout")
        })
        .collect();
    let cols = coords.iter().map(|c| c.x as usize).max().unwrap_or(0) + 1;
    let rows = coords.iter().map(|c| c.y as usize).max().unwrap_or(0) + 1;
    assert!(
        cols % 2 == 0 || rows % 2 == 0,
        "bisection needs one even dimension"
    );

    let mut best = usize::MAX;
    // Horizontal halvings: a contiguous band of cols/2 columns (mod cols).
    if cols % 2 == 0 {
        for offset in 0..cols {
            let in_half = |x: usize| (x + cols - offset) % cols < cols / 2;
            best = best.min(crossing_links(topo, |i| in_half(coords[i].x as usize)));
        }
    }
    if rows % 2 == 0 {
        for offset in 0..rows {
            let in_half = |y: usize| (y + rows - offset) % rows < rows / 2;
            best = best.min(crossing_links(topo, |i| in_half(coords[i].y as usize)));
        }
    }
    best
}

/// Count undirected links with endpoints on opposite sides of `in_half`.
fn crossing_links<T: Topology + ?Sized>(topo: &T, in_half: impl Fn(usize) -> bool) -> usize {
    let mut directed = 0;
    for i in 0..topo.node_count() {
        for p in topo.ports(NodeId::new(i)) {
            if in_half(i) != in_half(p.to.index()) {
                directed += 1;
            }
        }
    }
    // Every full-duplex link was counted once per direction.
    directed / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShuffleTorus, Torus2D};

    #[test]
    fn distances_match_torus_metric() {
        let t = Torus2D::new(8, 4);
        let d = DistanceMatrix::compute(&t);
        for a in 0..32 {
            for b in 0..32 {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                assert_eq!(d.distance(na, nb), t.hop_distance(na, nb) as u32);
            }
        }
    }

    #[test]
    fn torus_is_connected_and_symmetric() {
        let d = DistanceMatrix::compute(&Torus2D::new(4, 4));
        assert!(d.is_connected());
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    d.distance(NodeId::new(a), NodeId::new(b)),
                    d.distance(NodeId::new(b), NodeId::new(a))
                );
            }
        }
    }

    #[test]
    fn known_average_distances() {
        // 4x4 torus: per-source total distance 32 over 15 peers.
        let d = DistanceMatrix::compute(&Torus2D::new(4, 4));
        assert!((d.average_distance() - 32.0 / 15.0).abs() < 1e-12);
        // 4x2 torus: {E:1, EE:2, W:1, V:1, VE:2, VEE:3, VW:2} = 12 over 7.
        let d = DistanceMatrix::compute(&Torus2D::new(4, 2));
        assert!((d.average_distance() - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn known_diameters() {
        assert_eq!(DistanceMatrix::compute(&Torus2D::new(4, 4)).diameter(), 4);
        assert_eq!(DistanceMatrix::compute(&Torus2D::new(8, 8)).diameter(), 8);
        assert_eq!(DistanceMatrix::compute(&Torus2D::new(8, 4)).diameter(), 6);
        assert_eq!(
            DistanceMatrix::compute(&Torus2D::new(16, 16)).diameter(),
            16
        );
    }

    #[test]
    fn average_from_matches_manual() {
        let t = Torus2D::new(4, 4);
        let d = DistanceMatrix::compute(&t);
        let avg = d.average_from(NodeId::new(0));
        assert!((avg - 32.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn torus_bisections() {
        // kxk torus: 2k links per axis cut.
        assert_eq!(bisection_width(&Torus2D::new(4, 4)), 8);
        assert_eq!(bisection_width(&Torus2D::new(8, 8)), 16);
        // 4x2: x-cut crosses 2 rows x 2 links = 4; y-cut crosses 4 doubled = 8.
        assert_eq!(bisection_width(&Torus2D::new(4, 2)), 4);
        // 8x4 rectangular: x-cut 4 rows x 2 = 8.
        assert_eq!(bisection_width(&Torus2D::new(8, 4)), 8);
    }

    #[test]
    fn shuffle_doubles_rectangular_bisection() {
        assert_eq!(bisection_width(&ShuffleTorus::new(4, 2)), 8);
        assert_eq!(bisection_width(&ShuffleTorus::new(8, 4)), 16);
        // Square stays put (Table 1: bisection ratio 1.0).
        assert_eq!(bisection_width(&ShuffleTorus::new(4, 4)), 8);
        assert_eq!(bisection_width(&ShuffleTorus::new(8, 8)), 16);
    }
}
