//! The paper's "shuffle" interconnect (§4.1, Figs. 16–17, Table 1).
//!
//! The GS1280's torus has spare vertical connectivity: in an 8-CPU (4×2)
//! machine the North and South links of each node reach the *same* neighbor.
//! The paper's proposal re-aims one of these redundant links at the farthest
//! node — a simple cable swap. We generalise exactly as Table 1 does, to
//! tall tori without redundant links, by re-aiming the North–South
//! *wrap-around* cables: the wrap link that closed column `c` now connects
//! row `rows-1` of column `c` to row `0` of column `(c + cols/2) mod cols`.
//! The result is a twisted torus.

use serde::{Deserialize, Serialize};

use crate::ids::{Coord, Direction, LinkClass, NodeId, Port};
use crate::torus::Torus2D;
use crate::Topology;

/// A `cols × rows` torus with the shuffle rewiring applied.
///
/// * `rows == 2`: each node keeps one plain vertical link to its partner and
///   gains a [`LinkClass::Shuffle`] link to the other row at column
///   `x + cols/2` (the redundant-link swap of Fig. 17).
/// * `rows >= 3`: the vertical wrap cables are twisted by `cols/2` columns;
///   all other links are unchanged.
///
/// # Examples
///
/// ```
/// use alphasim_topology::{ShuffleTorus, Topology};
/// let s = ShuffleTorus::new(4, 2); // the paper's 8-CPU prototype
/// assert_eq!(s.node_count(), 8);
/// // Shuffle shortens the diameter from 3 to 2 (Table 1: worst 1.5x).
/// use alphasim_topology::graph::DistanceMatrix;
/// assert_eq!(DistanceMatrix::compute(&s).diameter(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShuffleTorus {
    base: Torus2D,
    ports: Vec<Vec<Port>>,
}

impl ShuffleTorus {
    /// A shuffled torus with `cols` columns and `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is odd or less than 4 (the twist needs a distinct
    /// "farthest column"), or if `rows < 2`.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(
            cols >= 4 && cols.is_multiple_of(2),
            "shuffle needs an even column count >= 4"
        );
        assert!(rows >= 2, "shuffle needs at least two rows");
        let base = Torus2D::new(cols, rows);
        let twist = cols / 2;
        let mut ports: Vec<Vec<Port>> = Vec::with_capacity(cols * rows);
        for i in 0..cols * rows {
            let node = NodeId::new(i);
            let c = base.coord_of(node);
            let (x, y) = (c.x as usize, c.y as usize);
            let mut node_ports = Vec::with_capacity(4);
            for p in base.ports(node) {
                let dir = p.dir.expect("torus ports are directed");
                if dir.is_horizontal() {
                    node_ports.push(*p);
                    continue;
                }
                if rows == 2 {
                    // Keep exactly one plain vertical link (say, South) and
                    // replace the redundant one (North) with the shuffle link.
                    match dir {
                        Direction::South => node_ports.push(*p),
                        Direction::North => {
                            let tx = (x + twist) % cols;
                            let ty = 1 - y;
                            node_ports.push(Port::directed(
                                base.node_at(Coord::new(tx, ty)),
                                LinkClass::Shuffle,
                                Direction::North,
                            ));
                        }
                        _ => unreachable!(),
                    }
                    continue;
                }
                // rows >= 3: twist only the wrap cables.
                let wraps_north = dir == Direction::North && y == 0;
                let wraps_south = dir == Direction::South && y == rows - 1;
                if wraps_north {
                    // Reverse of some column's twisted wrap: the wrap that
                    // *arrives* at (x, 0) comes from column (x - twist).
                    let sx = (x + cols - twist) % cols;
                    node_ports.push(Port::directed(
                        base.node_at(Coord::new(sx, rows - 1)),
                        LinkClass::Shuffle,
                        Direction::North,
                    ));
                } else if wraps_south {
                    let tx = (x + twist) % cols;
                    node_ports.push(Port::directed(
                        base.node_at(Coord::new(tx, 0)),
                        LinkClass::Shuffle,
                        Direction::South,
                    ));
                } else {
                    node_ports.push(*p);
                }
            }
            ports.push(node_ports);
        }
        ShuffleTorus { base, ports }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.base.cols()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.base.rows()
    }

    /// The node at a coordinate (same layout as the underlying torus).
    pub fn node_at(&self, coord: Coord) -> NodeId {
        self.base.node_at(coord)
    }

    /// The untwisted torus this shuffle was derived from.
    pub fn base(&self) -> &Torus2D {
        &self.base
    }
}

impl Topology for ShuffleTorus {
    fn name(&self) -> String {
        format!("shuffle-{}x{}", self.base.cols(), self.base.rows())
    }

    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, _node: NodeId) -> bool {
        true
    }

    fn coord(&self, node: NodeId) -> Option<Coord> {
        self.base.coord(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DistanceMatrix;

    #[test]
    fn degree_is_preserved() {
        for (c, r) in [(4, 2), (4, 4), (8, 4), (8, 8)] {
            let s = ShuffleTorus::new(c, r);
            for i in 0..s.node_count() {
                assert_eq!(s.ports(NodeId::new(i)).len(), 4, "{c}x{r} node {i}");
            }
        }
    }

    #[test]
    fn links_remain_symmetric() {
        for (c, r) in [(4, 2), (4, 4), (8, 4), (16, 8), (16, 16)] {
            let s = ShuffleTorus::new(c, r);
            for i in 0..s.node_count() {
                let n = NodeId::new(i);
                for p in s.ports(n) {
                    assert!(
                        s.ports(p.to).iter().any(|q| q.to == n),
                        "{}: no reverse for {n}->{}",
                        s.name(),
                        p.to
                    );
                }
            }
        }
    }

    #[test]
    fn shuffle_4x2_matches_figure_17() {
        // Node (0,0) keeps E/W, one vertical to (0,1), one shuffle to (2,1).
        let s = ShuffleTorus::new(4, 2);
        let n0 = s.node_at(Coord::new(0, 0));
        let targets: Vec<NodeId> = s.ports(n0).iter().map(|p| p.to).collect();
        assert!(targets.contains(&s.node_at(Coord::new(1, 0))));
        assert!(targets.contains(&s.node_at(Coord::new(3, 0))));
        assert!(targets.contains(&s.node_at(Coord::new(0, 1))));
        assert!(targets.contains(&s.node_at(Coord::new(2, 1))));
    }

    #[test]
    fn shuffle_4x2_average_distance_improves_by_1_2x() {
        // Table 1, first row: average latency gain 1.200.
        let torus = DistanceMatrix::compute(&Torus2D::new(4, 2));
        let shuffle = DistanceMatrix::compute(&ShuffleTorus::new(4, 2));
        let ratio = torus.average_distance() / shuffle.average_distance();
        assert!((ratio - 1.2).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn tall_shuffle_twists_only_the_wrap() {
        let s = ShuffleTorus::new(8, 4);
        // Interior vertical link is untouched.
        let n = s.node_at(Coord::new(3, 1));
        assert!(s
            .ports(n)
            .iter()
            .any(|p| p.to == s.node_at(Coord::new(3, 2)) && p.class != LinkClass::Shuffle));
        // Wrap from the bottom row lands cols/2 away.
        let bottom = s.node_at(Coord::new(0, 3));
        let shuffle_port = s
            .ports(bottom)
            .iter()
            .find(|p| p.class == LinkClass::Shuffle)
            .expect("bottom row has a shuffle port");
        assert_eq!(shuffle_port.to, s.node_at(Coord::new(4, 0)));
    }

    #[test]
    fn shuffle_never_lengthens_distances() {
        for (c, r) in [(4, 2), (4, 4), (8, 4)] {
            let torus = DistanceMatrix::compute(&Torus2D::new(c, r));
            let shuf = DistanceMatrix::compute(&ShuffleTorus::new(c, r));
            assert!(shuf.average_distance() <= torus.average_distance() + 1e-12);
            assert!(shuf.diameter() <= torus.diameter());
        }
    }

    #[test]
    #[should_panic(expected = "even column count")]
    fn rejects_odd_columns() {
        let _ = ShuffleTorus::new(5, 4);
    }
}
