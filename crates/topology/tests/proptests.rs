//! Property tests for topologies and routing.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_topology::graph::{bisection_width, DistanceMatrix};
use alphasim_topology::route::{escape_network_is_acyclic, RoutePolicy, Routes};
use alphasim_topology::{Degraded, NodeId, ShuffleTorus, Topology, Torus2D};
use proptest::prelude::*;

/// Every full-duplex link of `t`, once per pair.
fn torus_links(t: &Torus2D) -> Vec<(NodeId, NodeId)> {
    let mut links = Vec::new();
    for n in 0..t.node_count() {
        let a = NodeId::new(n);
        for p in t.ports(a) {
            if a.index() < p.to.index() {
                links.push((a, p.to));
            }
        }
    }
    links
}

/// The 4x4 or 8x8 experiment tori (edge connectivity 4).
fn experiment_torus(big: bool) -> Torus2D {
    if big {
        Torus2D::new(8, 8)
    } else {
        Torus2D::new(4, 4)
    }
}

fn torus_shapes() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=8, 1usize..=8).prop_filter("at least 2 nodes", |&(c, r)| c * r >= 2)
}

fn shuffle_shapes() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=6, 1usize..=4).prop_map(|(c2, r)| (2 * c2, r + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hop distances are a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn torus_distance_is_a_metric((c, r) in torus_shapes()) {
        let t = Torus2D::new(c, r);
        let d = DistanceMatrix::compute(&t);
        let n = t.node_count();
        for a in 0..n {
            prop_assert_eq!(d.distance(NodeId::new(a), NodeId::new(a)), 0);
            for b in 0..n {
                let ab = d.distance(NodeId::new(a), NodeId::new(b));
                prop_assert_eq!(ab, d.distance(NodeId::new(b), NodeId::new(a)));
                if a != b { prop_assert!(ab > 0); }
                for k in 0..n {
                    prop_assert!(
                        ab <= d.distance(NodeId::new(a), NodeId::new(k))
                            + d.distance(NodeId::new(k), NodeId::new(b))
                    );
                }
            }
        }
    }

    /// Average distance never exceeds the diameter.
    #[test]
    fn average_at_most_worst((c, r) in torus_shapes()) {
        let t = Torus2D::new(c, r);
        let d = DistanceMatrix::compute(&t);
        prop_assert!(d.average_distance() <= f64::from(d.diameter()) + 1e-12);
        prop_assert!(d.is_connected());
    }

    /// The shuffle rewiring keeps the fabric connected, degree-4 on torus
    /// links, and never lengthens the diameter.
    #[test]
    fn shuffle_preserves_connectivity((c, r) in shuffle_shapes()) {
        let t = Torus2D::new(c, r);
        let s = ShuffleTorus::new(c, r);
        let dt = DistanceMatrix::compute(&t);
        let ds = DistanceMatrix::compute(&s);
        prop_assert!(ds.is_connected());
        prop_assert!(ds.diameter() <= dt.diameter());
        prop_assert!(ds.average_distance() <= dt.average_distance() + 1e-12);
        for i in 0..s.node_count() {
            prop_assert_eq!(s.ports(NodeId::new(i)).len(), t.ports(NodeId::new(i)).len());
        }
    }

    /// Every minimal-port step strictly decreases remaining distance, for
    /// every policy, so walks terminate at the destination.
    #[test]
    fn routes_always_progress((c, r) in shuffle_shapes(), policy_ix in 0usize..3) {
        let policy = [RoutePolicy::Minimal, RoutePolicy::ShuffleFirstHop,
                      RoutePolicy::ShuffleFirstTwoHops][policy_ix];
        let s = ShuffleTorus::new(c, r);
        let routes = Routes::compute(&s, policy);
        let n = s.node_count();
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                let (src, dst) = (NodeId::new(a), NodeId::new(b));
                let mut at = src;
                let mut taken = 0u32;
                while at != dst {
                    let d = routes.distance(at, taken, dst);
                    let ports = routes.minimal_ports(&s, at, taken, dst);
                    prop_assert!(!ports.is_empty());
                    at = s.ports(at)[ports[0]].to;
                    taken += 1;
                    prop_assert_eq!(routes.distance(at, taken, dst) + 1, d);
                    prop_assert!(taken < 64);
                }
            }
        }
    }

    /// The dimension-order escape network with dateline VCs is deadlock
    /// free on every torus shape.
    #[test]
    fn escape_network_acyclic((c, r) in (2usize..=6, 2usize..=6)) {
        prop_assert!(escape_network_is_acyclic(&Torus2D::new(c, r), true));
    }

    /// Bisection width is positive and no more than the total link count.
    #[test]
    fn bisection_is_sane((c2, r2) in (1usize..=4, 1usize..=4)) {
        let (c, r) = (2 * c2, 2 * r2);
        let t = Torus2D::new(c, r);
        let b = bisection_width(&t);
        prop_assert!(b > 0);
        prop_assert!(b <= t.link_count() / 2);
    }

    /// The experiment tori (4x4, 8x8) stay connected under ANY single link
    /// failure — degree 4 gives edge connectivity 4, so the fault-injection
    /// sweep can cut a link anywhere without partitioning.
    #[test]
    fn torus_survives_any_single_link_failure(big in any::<bool>(), ix in 0usize..4096) {
        let t = experiment_torus(big);
        let links = torus_links(&t);
        let cut = links[ix % links.len()];
        let wounded = Degraded::try_new(t, &[cut]).expect("enumerated link exists");
        prop_assert!(DistanceMatrix::compute(&wounded).is_connected());
    }

    /// … and under ANY double link failure.
    #[test]
    fn torus_survives_any_double_link_failure(
        big in any::<bool>(),
        i in 0usize..4096,
        j in 0usize..4096,
    ) {
        let t = experiment_torus(big);
        let links = torus_links(&t);
        let a = links[i % links.len()];
        let b = links[j % links.len()];
        prop_assume!(a != b);
        let wounded = Degraded::try_new(t, &[a, b]).expect("enumerated links exist");
        prop_assert!(DistanceMatrix::compute(&wounded).is_connected());
    }

    /// Failing a link can only lengthen paths: no pairwise distance ever
    /// decreases (routing around a wound is monotone in cost).
    #[test]
    fn link_failure_never_shortens_distances(big in any::<bool>(), ix in 0usize..4096) {
        let t = experiment_torus(big);
        let links = torus_links(&t);
        let cut = links[ix % links.len()];
        let healthy = DistanceMatrix::compute(&t);
        let n = t.node_count();
        let wounded = Degraded::try_new(t, &[cut]).expect("enumerated link exists");
        let after = DistanceMatrix::compute(&wounded);
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                prop_assert!(
                    after.distance(a, b) >= healthy.distance(a, b),
                    "{a} -> {b} got shorter after cutting {cut:?}"
                );
            }
        }
    }
}
