//! Property tests for the workload models.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_workloads::spec::{MachinePerf, PhasePattern, SpecProfile, Suite};
use alphasim_workloads::{Gups, GupsConfig, PointerChase, Stream, StreamKernel};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = SpecProfile> {
    (
        0.5f64..2.0,                             // base_ipc
        0.0f64..60.0,                            // refs_per_kinst
        (16u64..200_000).prop_map(|k| k * 1024), // working set
        0.0f64..=1.0,                            // overlap
    )
        .prop_map(|(base_ipc, refs, ws, overlap)| SpecProfile {
            name: "synthetic",
            suite: Suite::Fp,
            base_ipc,
            refs_per_kinst: refs,
            working_set: ws,
            overlap,
            phase: PhasePattern::Flat,
        })
}

proptest! {
    /// A bigger cache never lowers modelled IPC (all else equal).
    #[test]
    fn bigger_cache_never_hurts(profile in arb_profile()) {
        let small = MachinePerf::gs1280();
        let mut big = small.clone();
        big.l2_bytes *= 4;
        prop_assert!(profile.ipc(&big) >= profile.ipc(&small) - 1e-12);
    }

    /// Faster memory never lowers modelled IPC.
    #[test]
    fn faster_memory_never_hurts(profile in arb_profile(), speedup in 1.0f64..4.0) {
        let slow = MachinePerf::gs1280();
        let mut fast = slow.clone();
        fast.memory_latency_ns /= speedup;
        prop_assert!(profile.ipc(&fast) >= profile.ipc(&slow) - 1e-12);
    }

    /// Striping (higher effective latency, capped bandwidth) never raises
    /// IPC or rate — Fig. 25 can only show degradations.
    #[test]
    fn striping_never_helps(profile in arb_profile(), n in 1usize..32) {
        let plain = MachinePerf::gs1280();
        let striped = MachinePerf::gs1280_striped();
        prop_assert!(profile.ipc(&striped) <= profile.ipc(&plain) + 1e-12);
        prop_assert!(profile.rate(&striped, n) <= profile.rate(&plain, n) + 1e-9);
    }

    /// IPC is bounded by the core's base IPC and is always positive.
    #[test]
    fn ipc_is_bounded(profile in arb_profile()) {
        for m in [MachinePerf::gs1280(), MachinePerf::es45(), MachinePerf::gs320()] {
            let ipc = profile.ipc(&m);
            prop_assert!(ipc > 0.0);
            prop_assert!(ipc <= profile.base_ipc + 1e-12);
        }
    }

    /// Rate never decreases when copies are added.
    #[test]
    fn rate_is_monotone_in_copies(profile in arb_profile(), n in 1usize..31) {
        let m = MachinePerf::gs320();
        prop_assert!(profile.rate(&m, n + 1) >= profile.rate(&m, n) - 1e-9);
    }

    /// The GUPS home map is a balanced partition of the table.
    #[test]
    fn gups_homes_partition(entries_log in 8u32..16, cpus in 1usize..32) {
        let entries = 1u64 << entries_log;
        prop_assume!(entries as usize >= cpus);
        let cfg = GupsConfig::new(entries, cpus);
        let mut counts = vec![0u64; cpus];
        for i in 0..entries {
            counts[cfg.home_of(i)] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap(),
            *counts.iter().max().unwrap(),
        );
        prop_assert!(max - min <= 1 + entries / cpus as u64 / 8, "{counts:?}");
        prop_assert_eq!(counts.iter().sum::<u64>(), entries);
    }

    /// GUPS updates are always reversible (XOR involution), whatever the
    /// seed and count.
    #[test]
    fn gups_always_restores(seed in 0u64..1000, updates in 1u64..5000) {
        let mut g = Gups::new(GupsConfig::new(1 << 10, 4));
        let mut r1 = alphasim_kernel::DetRng::seeded(seed);
        g.run(&mut r1, updates);
        let mut r2 = alphasim_kernel::DetRng::seeded(seed);
        g.run(&mut r2, updates);
        prop_assert!(g.verify_restored().is_ok());
    }

    /// Pointer-chase addresses always stay inside the dataset and visit
    /// every element exactly once per lap.
    #[test]
    fn pointer_chase_covers_dataset(size_k in 1u64..256, stride_pow in 2u32..10) {
        let stride = 1u64 << stride_pow;
        let size = size_k * 1024;
        prop_assume!(size >= stride);
        let pc = PointerChase::new(size, stride);
        let n = pc.elements();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..n {
            let a = pc.address(i).get();
            prop_assert!(a < size);
            prop_assert_eq!(a % stride, 0);
            seen.insert(a);
        }
        prop_assert_eq!(seen.len() as u64, n);
    }

    /// STREAM kernels always verify after any executed sequence.
    #[test]
    fn stream_always_verifies(seq in prop::collection::vec(0usize..4, 1..20), n in 1usize..300) {
        let kernels = [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ];
        let mut s = Stream::new(n);
        let executed: Vec<StreamKernel> = seq.iter().map(|&i| kernels[i]).collect();
        for &k in &executed {
            s.run(k);
        }
        prop_assert!(s.verify(&executed).is_ok());
    }
}
