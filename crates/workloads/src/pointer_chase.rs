//! The lmbench-style dependent-load ("pointer chase") kernel behind the
//! paper's Figs. 4 and 5.
//!
//! A chain of pointers is laid out over `size` bytes at a fixed `stride`;
//! each load's address depends on the previous load's value, so no two loads
//! overlap and the measured time per load is the true load-to-use latency of
//! whatever level the chain lands in.

use alphasim_cache::{Addr, CacheHierarchy};
use alphasim_kernel::SimDuration;
use serde::{Deserialize, Serialize};

/// A pointer-chase configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointerChase {
    /// Total dataset size in bytes.
    pub size: u64,
    /// Stride between consecutive elements in bytes.
    pub stride: u64,
    /// Base address of the dataset.
    pub base: u64,
}

impl PointerChase {
    /// A chase over `size` bytes at `stride`, based at address 0.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `size < stride`.
    pub fn new(size: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(size >= stride, "need at least one element");
        PointerChase {
            size,
            stride,
            base: 0,
        }
    }

    /// Number of elements in the chain.
    pub fn elements(&self) -> u64 {
        self.size / self.stride
    }

    /// The address of element `i` of the cyclic chain.
    pub fn address(&self, i: u64) -> Addr {
        Addr::new(self.base + (i % self.elements()) * self.stride)
    }

    /// Walk the chain through a cache hierarchy for `loads` dependent
    /// loads (after one warm-up pass over the chain) and return the mean
    /// load-to-use latency. `memory_latency` supplies the cost of a full
    /// miss for each address (e.g. open- vs. closed-page from a Zbox
    /// model).
    pub fn run(
        &self,
        hierarchy: &mut CacheHierarchy,
        mut memory_latency: impl FnMut(Addr) -> SimDuration,
        loads: u64,
    ) -> SimDuration {
        assert!(loads > 0, "need at least one measured load");
        // Warm-up pass: populate caches exactly as a real run would.
        for i in 0..self.elements() {
            let a = self.address(i);
            let ml = memory_latency(a);
            hierarchy.load(a, ml);
        }
        let mut total = SimDuration::ZERO;
        for i in 0..loads {
            let a = self.address(i);
            let ml = memory_latency(a);
            total += hierarchy.load(a, ml).latency;
        }
        total / loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_cache::HierarchyConfig;

    fn mem(_a: Addr) -> SimDuration {
        SimDuration::from_ns(83.0)
    }

    #[test]
    fn element_addressing_wraps() {
        let pc = PointerChase::new(1024, 64);
        assert_eq!(pc.elements(), 16);
        assert_eq!(pc.address(0), Addr::new(0));
        assert_eq!(pc.address(16), Addr::new(0));
        assert_eq!(pc.address(17), Addr::new(64));
    }

    #[test]
    fn small_set_measures_l1() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let pc = PointerChase::new(16 * 1024, 64);
        let lat = pc.run(&mut h, mem, 1000);
        assert_eq!(lat, h.config().l1_latency);
    }

    #[test]
    fn mid_set_measures_l2() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let pc = PointerChase::new(512 * 1024, 64);
        let lat = pc.run(&mut h, mem, 2000);
        assert_eq!(lat, h.config().l2_latency);
    }

    #[test]
    fn large_set_measures_memory() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let pc = PointerChase::new(8 * 1024 * 1024, 64);
        let lat = pc.run(&mut h, mem, 2000);
        // LRU over a sequential sweep larger than L2: every load misses.
        assert_eq!(lat.as_ns(), 83.0);
    }

    #[test]
    fn ev68_crossover_band() {
        // The paper's Fig. 4 crossover: at 8 MB the EV68's 16 MB B-cache
        // still hits (24 ns) while the EV7 goes to memory (83 ns).
        let mut ev7 = CacheHierarchy::new(HierarchyConfig::ev7());
        let mut ev68 = CacheHierarchy::new(HierarchyConfig::ev68());
        let pc = PointerChase::new(8 * 1024 * 1024, 64);
        let l7 = pc.run(&mut ev7, mem, 2000);
        let l68 = pc.run(&mut ev68, |_| SimDuration::from_ns(185.0), 2000);
        assert!(l68 < l7, "EV68 {l68} should beat EV7 {l7} at 8 MB");
    }

    #[test]
    fn sub_line_stride_amortizes() {
        // Stride 8: eight loads per 64 B line, 7 of them L1 hits even for
        // huge datasets.
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let pc = PointerChase::new(8 * 1024 * 1024, 8);
        let lat = pc.run(&mut h, mem, 8000);
        let full_miss = SimDuration::from_ns(83.0);
        assert!(lat < full_miss / 4, "amortized latency {lat}");
    }
}
