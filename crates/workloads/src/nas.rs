//! The NAS Parallel kernel family (paper §5.2).
//!
//! "With the exception of EP (embarrassingly parallel), majority of these
//! kernels (solvers, FFT, grid, integer sort) put significant stress on
//! memory bandwidth (when size C is used)." Each kernel is modelled by the
//! machine resource that bounds it: per-CPU compute for EP, aggregate
//! sustainable memory bandwidth for the others, with kernel-specific
//! traffic intensities. SP's model lives in [`crate::apps::NasSpModel`];
//! this module generalises it to the family so the §5.2 claim — GS1280
//! wins on everything except EP, where all machines tie per clock — is
//! testable.

use serde::{Deserialize, Serialize};

use crate::apps::AppMachine;

/// A NAS Parallel kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NasKernel {
    /// Embarrassingly parallel: random-number generation, no memory or
    /// communication stress.
    Ep,
    /// Multigrid: memory-bandwidth-bound grid sweeps.
    Mg,
    /// 3-D FFT: bandwidth-bound with all-to-all transposes.
    Ft,
    /// Integer sort: bandwidth-bound random scatter.
    Is,
    /// Conjugate gradient: irregular sparse accesses, latency-sensitive.
    Cg,
    /// Scalar pentadiagonal solver (the paper's Fig. 21 example).
    Sp,
    /// Block tridiagonal solver.
    Bt,
    /// Lower-upper Gauss-Seidel solver.
    Lu,
}

impl NasKernel {
    /// The whole family.
    pub const ALL: [NasKernel; 8] = [
        NasKernel::Ep,
        NasKernel::Mg,
        NasKernel::Ft,
        NasKernel::Is,
        NasKernel::Cg,
        NasKernel::Sp,
        NasKernel::Bt,
        NasKernel::Lu,
    ];

    /// Kernel name as NPB spells it.
    pub fn name(self) -> &'static str {
        match self {
            NasKernel::Ep => "EP",
            NasKernel::Mg => "MG",
            NasKernel::Ft => "FT",
            NasKernel::Is => "IS",
            NasKernel::Cg => "CG",
            NasKernel::Sp => "SP",
            NasKernel::Bt => "BT",
            NasKernel::Lu => "LU",
        }
    }

    /// Memory traffic per operation in bytes at class C (0 = compute
    /// bound).
    pub fn bytes_per_op(self) -> f64 {
        match self {
            NasKernel::Ep => 0.0,
            NasKernel::Mg => 3.2,
            NasKernel::Ft => 2.8,
            NasKernel::Is => 4.0,
            NasKernel::Cg => 3.6,
            NasKernel::Sp => 2.4,
            NasKernel::Bt => 1.9,
            NasKernel::Lu => 2.1,
        }
    }

    /// Peak per-CPU operation rate when memory is free, MOPS.
    pub fn peak_mops_per_cpu(self) -> f64 {
        match self {
            NasKernel::Ep => 320.0, // random-number heavy, low IPC
            NasKernel::Is => 900.0, // integer ops are cheap
            _ => 640.0,
        }
    }

    /// Whether the kernel is memory-bandwidth bound at class C.
    pub fn is_bandwidth_bound(self) -> bool {
        self.bytes_per_op() > 0.0
    }

    /// Aggregate MOPS on `machine` with `cpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or exceeds the machine.
    pub fn mops(self, machine: &AppMachine, cpus: usize) -> f64 {
        assert!(
            cpus >= 1 && cpus <= machine.cpus(),
            "CPU count out of range"
        );
        let cpu_bound = self.peak_mops_per_cpu() * cpus as f64;
        let eff = 0.97f64.powf((cpus as f64).log2().max(0.0));
        if !self.is_bandwidth_bound() {
            return cpu_bound * eff;
        }
        let bw_bound = machine.stream_gbps_public(cpus) * 1e9 / self.bytes_per_op() / 1e6;
        bw_bound.min(cpu_bound) * eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_system::{Gs1280, Gs320, Sc45};

    fn machines() -> (AppMachine, AppMachine, AppMachine) {
        (
            AppMachine::Gs1280(Gs1280::builder().cpus(16).build()),
            AppMachine::Gs320(Gs320::new(16)),
            AppMachine::Sc45(Sc45::new(16)),
        )
    }

    #[test]
    fn ep_is_machine_agnostic() {
        // §5.2's exception: EP ties across machines (same core family).
        let (g, q, s) = machines();
        let a = NasKernel::Ep.mops(&g, 16);
        let b = NasKernel::Ep.mops(&q, 16);
        let c = NasKernel::Ep.mops(&s, 16);
        assert!((a - b).abs() / a < 0.02, "{a} {b}");
        assert!((a - c).abs() / a < 0.02, "{a} {c}");
    }

    #[test]
    fn bandwidth_kernels_favor_gs1280() {
        let (g, q, s) = machines();
        for k in NasKernel::ALL {
            if !k.is_bandwidth_bound() {
                continue;
            }
            let a = k.mops(&g, 16);
            let b = k.mops(&q, 16);
            let c = k.mops(&s, 16);
            assert!(a > 2.0 * b, "{}: GS1280 {a} vs GS320 {b}", k.name());
            assert!(a > 1.5 * c, "{}: GS1280 {a} vs SC45 {c}", k.name());
        }
    }

    #[test]
    fn names_and_family_size() {
        assert_eq!(NasKernel::ALL.len(), 8);
        let names: Vec<&str> = NasKernel::ALL.iter().map(|k| k.name()).collect();
        assert!(names.contains(&"SP"));
        assert!(names.contains(&"EP"));
    }

    #[test]
    fn mops_scales_with_cpus() {
        let g = AppMachine::Gs1280(Gs1280::builder().cpus(32).build());
        for k in NasKernel::ALL {
            assert!(
                k.mops(&g, 32) > 1.6 * k.mops(&g, 8),
                "{} fails to scale",
                k.name()
            );
        }
    }
}
