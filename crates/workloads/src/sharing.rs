//! Data-sharing microbenchmarks over the trace-driven coherent machine.
//!
//! The paper attributes the GS1280's biggest parallel-workload wins to its
//! "efficient Read-Dirty implementation" (§3.4): applications with heavy
//! data sharing keep fetching lines out of other CPUs' caches. These
//! kernels generate the canonical sharing patterns and report what the
//! coherence protocol did with them.

use alphasim_cache::Addr;
use alphasim_kernel::SimDuration;
use alphasim_system::{CoherentMachine, CoherentStats};
use serde::{Deserialize, Serialize};

/// Result of one sharing kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingResult {
    /// Mean access latency over the kernel.
    pub mean_latency: SimDuration,
    /// Fraction of accesses served by a remote cache (read-dirty).
    pub dirty_fraction: f64,
    /// Invalidations per access.
    pub invalidations_per_access: f64,
    /// Raw machine statistics.
    pub stats: CoherentStats,
}

fn result_of(machine: &CoherentMachine, before: CoherentStats) -> SharingResult {
    let after = machine.stats();
    let accesses = after.total() - before.total();
    let dirty = after.remote_dirty - before.remote_dirty;
    let inv = after.invalidations - before.invalidations;
    SharingResult {
        mean_latency: machine.mean_latency(),
        dirty_fraction: if accesses == 0 {
            0.0
        } else {
            dirty as f64 / accesses as f64
        },
        invalidations_per_access: if accesses == 0 {
            0.0
        } else {
            inv as f64 / accesses as f64
        },
        stats: after,
    }
}

/// Ping-pong: two CPUs alternately store to and load from one line. Every
/// transfer after warm-up is a dirty cache-to-cache forward — the purest
/// measure of the 3-hop path.
pub fn ping_pong(
    machine: &mut CoherentMachine,
    a: usize,
    b: usize,
    line_addr: Addr,
    rounds: usize,
) -> SharingResult {
    assert!(a != b, "ping-pong needs two distinct CPUs");
    let before = machine.stats();
    for _ in 0..rounds {
        machine.access(a, line_addr, true);
        machine.access(b, line_addr, true);
    }
    result_of(machine, before)
}

/// Migratory sharing: a lock-protected datum visits every CPU in turn; each
/// visitor loads then stores it.
pub fn migratory(machine: &mut CoherentMachine, line_addr: Addr, rounds: usize) -> SharingResult {
    let cpus = machine.cpus();
    let before = machine.stats();
    for r in 0..rounds {
        let cpu = r % cpus;
        machine.access(cpu, line_addr, false);
        machine.access(cpu, line_addr, true);
    }
    result_of(machine, before)
}

/// Producer/consumers: one CPU updates a block of lines, every other CPU
/// reads them, repeatedly — invalidation broadcast followed by a fan-out of
/// dirty reads.
pub fn producer_consumers(
    machine: &mut CoherentMachine,
    producer: usize,
    base: Addr,
    lines: u64,
    rounds: usize,
) -> SharingResult {
    let cpus = machine.cpus();
    let before = machine.stats();
    for _ in 0..rounds {
        for l in 0..lines {
            machine.access(producer, base.offset(l * 64), true);
        }
        for cpu in (0..cpus).filter(|&c| c != producer) {
            for l in 0..lines {
                machine.access(cpu, base.offset(l * 64), false);
            }
        }
    }
    result_of(machine, before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_system::Gs1280;

    fn machine() -> CoherentMachine {
        CoherentMachine::new(Gs1280::builder().cpus(16).mem_per_cpu(1 << 22).build())
    }

    fn addr(cpu: usize, off: u64) -> Addr {
        Addr::new(cpu as u64 * (1 << 22) + off)
    }

    #[test]
    fn ping_pong_is_all_dirty_after_warmup() {
        let mut m = machine();
        let r = ping_pong(&mut m, 2, 9, addr(0, 0), 100);
        assert!(
            r.dirty_fraction > 0.9,
            "dirty fraction {}",
            r.dirty_fraction
        );
        // Every transfer is a 3-hop forward: mean latency in the dirty band.
        let ns = r.mean_latency.as_ns();
        assert!((100.0..350.0).contains(&ns), "latency {ns}");
    }

    #[test]
    fn ping_pong_between_neighbors_beats_opposite_corners() {
        let mut near = machine();
        // CPUs 0 and 4 are module partners on the 4x4 layout.
        let rn = ping_pong(&mut near, 0, 4, addr(0, 0), 100);
        let mut far = machine();
        // CPU 10 is the 4-hop corner from CPU 0.
        let rf = ping_pong(&mut far, 0, 10, addr(0, 0), 100);
        assert!(
            rf.mean_latency > rn.mean_latency,
            "far {} near {}",
            rf.mean_latency,
            rn.mean_latency
        );
    }

    #[test]
    fn migratory_visits_generate_dirty_chains() {
        let mut m = machine();
        let r = migratory(&mut m, addr(5, 64), 64);
        // Each visit's load fetches from the previous owner.
        assert!(r.dirty_fraction > 0.4, "{}", r.dirty_fraction);
    }

    #[test]
    fn producer_consumers_invalidate_then_fan_out() {
        let mut m = machine();
        let r = producer_consumers(&mut m, 3, addr(3, 0), 4, 5);
        assert!(
            r.invalidations_per_access > 0.05,
            "{}",
            r.invalidations_per_access
        );
        assert!(r.stats.remote_dirty > 0);
        // The first consumer takes the dirty copy; later consumers read the
        // now-shared line from home memory.
        assert!(r.stats.remote_clean > 0);
    }

    #[test]
    fn private_working_sets_stay_local() {
        // Control: no sharing means no dirty traffic at all.
        let mut m = machine();
        let before = m.stats();
        for cpu in 0..16 {
            for l in 0..32u64 {
                m.access(cpu, addr(cpu, l * 64), true);
                m.access(cpu, addr(cpu, l * 64), false);
            }
        }
        let after = m.stats();
        assert_eq!(after.remote_dirty - before.remote_dirty, 0);
        assert_eq!(after.remote_clean - before.remote_clean, 0);
        assert_eq!(m.stats().invalidations, 0);
    }
}

#[cfg(test)]
mod cross_machine_tests {
    use super::*;
    use alphasim_system::{Gs1280, Gs320};

    /// The paper's §3.4 claim, as an end-to-end sharing workload: the same
    /// ping-pong on the GS320's fabric runs several times slower than on
    /// the GS1280.
    #[test]
    fn ping_pong_is_several_times_slower_on_gs320() {
        let mut new_machine =
            CoherentMachine::new(Gs1280::builder().cpus(16).mem_per_cpu(1 << 30).build());
        let mut old_machine = CoherentMachine::new_gs320(Gs320::new(16));
        let line = Addr::new(64);
        let new = ping_pong(&mut new_machine, 2, 9, line, 100);
        let old = ping_pong(&mut old_machine, 2, 9, line, 100);
        assert!(old.dirty_fraction > 0.9 && new.dirty_fraction > 0.9);
        let ratio = old.mean_latency.as_ns() / new.mean_latency.as_ns();
        assert!(
            (3.0..12.0).contains(&ratio),
            "GS320/GS1280 sharing ratio {ratio}"
        );
    }

    /// Migratory sharing shows the same ordering.
    #[test]
    fn migratory_ordering_across_machines() {
        let mut new_machine =
            CoherentMachine::new(Gs1280::builder().cpus(16).mem_per_cpu(1 << 30).build());
        let mut old_machine = CoherentMachine::new_gs320(Gs320::new(16));
        let line = Addr::new(4096);
        let new = migratory(&mut new_machine, line, 64);
        let old = migratory(&mut old_machine, line, 64);
        assert!(old.mean_latency > new.mean_latency * 2);
    }
}
