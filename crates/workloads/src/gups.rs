//! GUPS — Giga-Updates Per Second (paper §5.3, Figs. 23–24).
//!
//! Each thread repeatedly updates a randomly chosen element of a table that
//! "spans the entire memory in the system", so nearly every update is a
//! remote access and aggregate throughput is limited by inter-processor
//! (bisection) bandwidth — the resource where the GS1280 is over 10× ahead
//! of the GS320.
//!
//! This module provides the kernel semantics (an actual XOR-update table
//! with verification) and the index → home-CPU mapping; the throughput
//! experiment composes these with the load-test engine in
//! `alphasim-system`.

use alphasim_kernel::DetRng;
use serde::{Deserialize, Serialize};

/// A GUPS table configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GupsConfig {
    /// Table entries (power of two).
    pub entries: u64,
    /// CPUs sharing the table (it is distributed round-robin by block).
    pub cpus: usize,
}

impl GupsConfig {
    /// A table of `entries` (power of two) spread over `cpus`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `cpus` is zero.
    pub fn new(entries: u64, cpus: usize) -> Self {
        assert!(entries.is_power_of_two(), "GUPS tables are 2^k entries");
        assert!(cpus > 0, "need at least one CPU");
        GupsConfig { entries, cpus }
    }

    /// The home CPU of table index `i`: the table spans all memory, in
    /// equal contiguous blocks per CPU.
    pub fn home_of(&self, i: u64) -> usize {
        assert!(i < self.entries, "index out of table");
        ((i as u128 * self.cpus as u128) / self.entries as u128) as usize
    }

    /// Fraction of updates from `cpu` that touch remote memory under
    /// uniform random indices: `(cpus-1)/cpus`.
    pub fn remote_fraction(&self) -> f64 {
        (self.cpus - 1) as f64 / self.cpus as f64
    }
}

/// An executable GUPS instance: a real table, real XOR updates, and the
/// reference benchmark's self-check (re-applying the same update stream
/// restores the initial table).
#[derive(Debug, Clone)]
pub struct Gups {
    config: GupsConfig,
    table: Vec<u64>,
}

impl Gups {
    /// A table initialised as `table[i] = i`.
    pub fn new(config: GupsConfig) -> Self {
        Gups {
            config,
            table: (0..config.entries).collect(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> GupsConfig {
        self.config
    }

    /// Apply `updates` XOR updates driven by `rng`, returning the sequence
    /// of updated indices (for traffic replay).
    pub fn run(&mut self, rng: &mut DetRng, updates: u64) -> Vec<u64> {
        let mask = self.config.entries - 1;
        let mut touched = Vec::with_capacity(updates as usize);
        for _ in 0..updates {
            let r = rng.bits();
            let idx = r & mask;
            self.table[idx as usize] ^= r;
            touched.push(idx);
        }
        touched
    }

    /// The benchmark's verification: XOR is an involution, so replaying an
    /// identical update stream restores `table[i] == i`.
    ///
    /// # Errors
    ///
    /// Returns the first corrupted index.
    pub fn verify_restored(&self) -> Result<(), u64> {
        for (i, &v) in self.table.iter().enumerate() {
            if v != i as u64 {
                return Err(i as u64);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_mapping_is_balanced() {
        let cfg = GupsConfig::new(1 << 16, 16);
        let mut counts = vec![0u64; 16];
        for i in 0..cfg.entries {
            counts[cfg.home_of(i)] += 1;
        }
        for &c in &counts {
            assert_eq!(c, (1 << 16) / 16);
        }
    }

    #[test]
    fn home_mapping_is_monotone_blocks() {
        let cfg = GupsConfig::new(1 << 10, 4);
        assert_eq!(cfg.home_of(0), 0);
        assert_eq!(cfg.home_of(255), 0);
        assert_eq!(cfg.home_of(256), 1);
        assert_eq!(cfg.home_of(1023), 3);
    }

    #[test]
    fn remote_fraction_grows_with_cpus() {
        assert_eq!(GupsConfig::new(64, 1).remote_fraction(), 0.0);
        assert!((GupsConfig::new(64, 32).remote_fraction() - 31.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn xor_updates_are_reversible() {
        let mut g = Gups::new(GupsConfig::new(1 << 12, 4));
        let mut rng = DetRng::seeded(42);
        g.run(&mut rng, 10_000);
        assert!(g.verify_restored().is_err(), "table must actually change");
        // Replay the identical stream.
        let mut rng2 = DetRng::seeded(42);
        g.run(&mut rng2, 10_000);
        g.verify_restored().unwrap();
    }

    #[test]
    fn update_indices_are_uniformish() {
        let mut g = Gups::new(GupsConfig::new(1 << 8, 4));
        let mut rng = DetRng::seeded(7);
        let touched = g.run(&mut rng, 100_000);
        let mut counts = vec![0u64; 256];
        for &i in &touched {
            counts[i as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 250 && *max < 550, "min {min} max {max}");
    }

    #[test]
    #[should_panic(expected = "2^k entries")]
    fn rejects_non_power_of_two() {
        let _ = GupsConfig::new(1000, 4);
    }
}
