//! The three application classes of §5: Fluent (CPU-bound CFD), NAS SP
//! (memory-bandwidth-bound MPI), and the traffic signatures behind their
//! utilization figures (Figs. 19–22). GUPS, the third class, lives in
//! [`crate::gups`].

use alphasim_system::{Gs1280, Gs320, Sc45};
use serde::{Deserialize, Serialize};

/// Which machine an application model is evaluated on.
#[derive(Debug, Clone)]
pub enum AppMachine {
    /// The GS1280.
    Gs1280(Gs1280),
    /// The GS320.
    Gs320(Gs320),
    /// An SC45 cluster (ES45 boxes).
    Sc45(Sc45),
}

impl AppMachine {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AppMachine::Gs1280(m) => m.calibration().kind.to_string(),
            AppMachine::Gs320(m) => m.calibration().kind.to_string(),
            AppMachine::Sc45(m) => m.calibration().kind.to_string(),
        }
    }

    /// CPU count.
    pub fn cpus(&self) -> usize {
        match self {
            AppMachine::Gs1280(m) => m.cpus(),
            AppMachine::Gs320(m) => m.cpus(),
            AppMachine::Sc45(m) => m.cpus(),
        }
    }

    fn clock_ghz(&self) -> f64 {
        match self {
            AppMachine::Gs1280(m) => m.calibration().clock.ghz(),
            AppMachine::Gs320(m) => m.calibration().clock.ghz(),
            AppMachine::Sc45(m) => m.calibration().clock.ghz(),
        }
    }

    fn l2_bytes(&self) -> u64 {
        match self {
            AppMachine::Gs1280(m) => m.calibration().hierarchy.l2.size_bytes(),
            AppMachine::Gs320(m) => m.calibration().hierarchy.l2.size_bytes(),
            AppMachine::Sc45(m) => m.calibration().hierarchy.l2.size_bytes(),
        }
    }

    /// Counted STREAM-triad bandwidth with `cpus` active CPUs (the
    /// resource bound for bandwidth-limited kernels).
    pub fn stream_gbps_public(&self, cpus: usize) -> f64 {
        self.stream_gbps(cpus)
    }

    /// Local memory load-to-use latency in ns.
    pub fn local_latency_ns(&self) -> f64 {
        match self {
            AppMachine::Gs1280(m) => m.local_latency(true).as_ns(),
            AppMachine::Gs320(m) => m.local_latency(true).as_ns(),
            AppMachine::Sc45(m) => m.local_latency(true).as_ns(),
        }
    }

    fn stream_gbps(&self, cpus: usize) -> f64 {
        match self {
            AppMachine::Gs1280(m) => m.stream_triad_gbps(cpus),
            AppMachine::Gs320(m) => m.stream_triad_gbps(cpus),
            AppMachine::Sc45(m) => m.stream_triad_gbps(cpus),
        }
    }

    /// Per-message synchronisation cost in microseconds for MPI-style
    /// exchanges.
    fn mpi_overhead_us(&self) -> f64 {
        match self {
            // Shared-memory MPI over the torus: cheap.
            AppMachine::Gs1280(_) => 1.2,
            // GS320's switch makes messaging slower.
            AppMachine::Gs320(_) => 6.0,
            // Quadrics user-level messaging.
            AppMachine::Sc45(_) => 5.0,
        }
    }
}

/// Fluent (§5.1, Figs. 19–20): a cache-blocked CFD solver that stresses
/// neither the memory controllers nor the IP links; the large off-chip
/// caches of the older machines often *help* it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluentModel {
    /// Mesh cells of the case (the paper's `fl5l1` is ~M-cell scale).
    pub cells: u64,
    /// Per-cell, per-iteration work in FLOP.
    pub flops_per_cell: f64,
    /// Cache-blocked working set per CPU, bytes per cell.
    pub bytes_per_cell: f64,
}

impl FluentModel {
    /// The paper's large `fl5l1` case (flow around a fighter aircraft).
    pub fn fl5l1() -> Self {
        FluentModel {
            cells: 1_200_000,
            flops_per_cell: 2_000.0,
            bytes_per_cell: 400.0,
        }
    }

    /// Fluent "rating" (runs per day, the paper's Fig. 19 metric; higher is
    /// better) on `machine` with `cpus` CPUs.
    pub fn rating(&self, machine: &AppMachine, cpus: usize) -> f64 {
        assert!(
            cpus >= 1 && cpus <= machine.cpus(),
            "CPU count out of range"
        );
        // Per-CPU compute speed: clock-bound, boosted when the per-CPU
        // block fits the cache (blocked solvers re-use aggressively).
        let block_bytes = self.cells as f64 * self.bytes_per_cell / cpus as f64;
        let cache_bonus = if block_bytes <= machine.l2_bytes() as f64 {
            1.15 // fully cache-resident blocks
        } else {
            // Partial reuse; big caches capture more of the block.
            1.0 + 0.15 * (machine.l2_bytes() as f64 / block_bytes).min(1.0)
        };
        // The share of the block the cache cannot capture pays memory
        // latency; the GS320's ~330 ns makes this the visible gap in
        // Fig. 19 despite its big cache.
        let uncovered = (1.0 - machine.l2_bytes() as f64 / block_bytes).max(0.0);
        let mem_penalty = 1.0 + uncovered * machine.local_latency_ns() / 800.0;
        let flops_per_sec_per_cpu = machine.clock_ghz() * 1e9 * 0.8 * cache_bonus / mem_penalty;
        // Parallel efficiency: halo exchanges per iteration.
        let compute_s =
            self.cells as f64 * self.flops_per_cell / (flops_per_sec_per_cpu * cpus as f64);
        let comm_s = (cpus as f64).log2().max(0.0) * machine.mpi_overhead_us() * 1e-6 * 40.0; // exchanges per iteration
        let seconds_per_iter = compute_s + comm_s;
        // Rating = runs/day; one run ≈ 1000 iterations.
        86_400.0 / (seconds_per_iter * 1000.0)
    }

    /// Mean Zbox utilization (fraction): low by construction (Fig. 20
    /// shows ≤ ~12%, average ~5%).
    pub fn zbox_utilization(&self) -> f64 {
        0.05
    }

    /// Mean IP-link utilization (fraction): lower still.
    pub fn ip_utilization(&self) -> f64 {
        0.02
    }
}

/// NAS Parallel SP (§5.2, Figs. 21–22): a memory-bandwidth-bound MPI
/// solver. Throughput in MOPS follows the machine's aggregate sustainable
/// memory bandwidth, with ~26% Zbox utilization on the GS1280 and low IP
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasSpModel {
    /// Bytes of memory traffic per operation (class C is ~2.4 B/op).
    pub bytes_per_op: f64,
    /// Peak per-CPU op rate when memory is free, MOPS.
    pub peak_mops_per_cpu: f64,
}

impl NasSpModel {
    /// Class C.
    pub fn class_c() -> Self {
        NasSpModel {
            bytes_per_op: 2.4,
            peak_mops_per_cpu: 640.0,
        }
    }

    /// Aggregate MOPS on `machine` with `cpus` CPUs (Fig. 21).
    pub fn mops(&self, machine: &AppMachine, cpus: usize) -> f64 {
        assert!(
            cpus >= 1 && cpus <= machine.cpus(),
            "CPU count out of range"
        );
        let bw_bound = machine.stream_gbps(cpus) * 1e9 / self.bytes_per_op / 1e6;
        let cpu_bound = self.peak_mops_per_cpu * cpus as f64;
        // MPI overhead shaves a few percent per doubling.
        let eff = 0.97f64.powf((cpus as f64).log2().max(0.0));
        bw_bound.min(cpu_bound) * eff
    }

    /// Mean Zbox utilization (Fig. 22 shows ~26% on the GS1280).
    pub fn zbox_utilization(&self) -> f64 {
        0.26
    }

    /// Mean IP-link utilization: low, like most MPI codes (§5.2).
    pub fn ip_utilization(&self) -> f64 {
        0.04
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machines(cpus: usize) -> Vec<AppMachine> {
        vec![
            AppMachine::Gs1280(Gs1280::builder().cpus(cpus).build()),
            AppMachine::Gs320(Gs320::new(cpus.min(32))),
            AppMachine::Sc45(Sc45::new(cpus)),
        ]
    }

    #[test]
    fn fluent_is_comparable_between_gs1280_and_sc45() {
        // §5.1: "GS1280 shows comparable performance to ES45" on Fluent.
        let f = FluentModel::fl5l1();
        for cpus in [4usize, 16] {
            let ms = machines(16);
            let g = f.rating(&ms[0], cpus);
            let s = f.rating(&ms[2], cpus);
            let ratio = g / s;
            assert!((0.6..=1.6).contains(&ratio), "{cpus}P ratio {ratio}");
        }
    }

    #[test]
    fn fluent_scales_with_cpus() {
        let f = FluentModel::fl5l1();
        let m = AppMachine::Gs1280(Gs1280::builder().cpus(32).build());
        let r4 = f.rating(&m, 4);
        let r16 = f.rating(&m, 16);
        let r32 = f.rating(&m, 32);
        assert!(r16 > 2.5 * r4, "r4={r4} r16={r16}");
        assert!(r32 > r16);
    }

    #[test]
    fn fluent_barely_touches_memory_and_links() {
        let f = FluentModel::fl5l1();
        assert!(f.zbox_utilization() < 0.15);
        assert!(f.ip_utilization() < 0.1);
    }

    #[test]
    fn sp_advantage_tracks_memory_bandwidth() {
        // §5.2 / Fig. 21: GS1280 >> SC45 > GS320 on SP.
        let sp = NasSpModel::class_c();
        let ms = machines(16);
        let g = sp.mops(&ms[0], 16);
        let q = sp.mops(&ms[1], 16);
        let s = sp.mops(&ms[2], 16);
        assert!(g > 2.0 * s, "GS1280 {g} vs SC45 {s}");
        assert!(s > q, "SC45 {s} vs GS320 {q}");
        assert!(g > 5.0 * q, "GS1280 {g} vs GS320 {q}");
    }

    #[test]
    fn sp_scales_near_linearly_on_gs1280() {
        let sp = NasSpModel::class_c();
        let m = AppMachine::Gs1280(Gs1280::builder().cpus(32).build());
        let m8 = sp.mops(&m, 8);
        let m32 = sp.mops(&m, 32);
        assert!(m32 > 3.4 * m8, "8P {m8} 32P {m32}");
    }

    #[test]
    fn sp_utilization_signature() {
        let sp = NasSpModel::class_c();
        assert!((0.2..=0.35).contains(&sp.zbox_utilization()));
        assert!(sp.ip_utilization() < 0.1);
    }
}
