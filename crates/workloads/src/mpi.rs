//! MPI-style communication cost models (paper §5.2).
//!
//! "The kernels are decomposed using MPI and can run on either
//! shared-memory or cluster systems … The GS1280 provides very high IP-link
//! bandwidth that in many cases exceeds the needs of MPI applications (many
//! of which are designed for cluster interconnects with much lower
//! bandwidth requirements)."
//!
//! This module prices the collectives those applications are built from —
//! point-to-point, 2-D halo exchange, all-reduce, all-to-all — on each
//! machine, from its latency/bandwidth parameters. The punchline the tests
//! assert: the GS1280's fabric makes MPI communication nearly free compared
//! to the cluster, which is why bandwidth-bound MPI codes inherit the
//! *memory* advantage (Fig. 21) rather than a communication advantage.

use alphasim_system::{Gs1280, Sc45};
use alphasim_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Per-machine MPI transport parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpiTransport {
    /// Display name.
    pub name: &'static str,
    /// Per-message latency (software + fabric), microseconds.
    pub latency_us: f64,
    /// Point-to-point streaming bandwidth, GB/s.
    pub bandwidth_gbps: f64,
}

impl MpiTransport {
    /// Shared-memory MPI over the GS1280 torus: software overhead
    /// dominates; the fabric adds tens of nanoseconds and 3.1 GB/s of
    /// per-direction bandwidth per link.
    pub fn gs1280(machine: &Gs1280) -> Self {
        // Average one-way fabric latency enters the per-message cost.
        let fabric_ns = machine.average_latency_all_pairs().as_ns();
        MpiTransport {
            name: "GS1280 shared-memory MPI",
            latency_us: 1.0 + fabric_ns / 1000.0,
            bandwidth_gbps: machine.timing().bandwidth_gbps,
        }
    }

    /// Quadrics-style cluster MPI on the SC45: user-level messaging in the
    /// ~5 µs class, ~0.32 GB/s per rail.
    pub fn sc45(machine: &Sc45) -> Self {
        let cross_ns = machine
            .message_latency(NodeId::new(0), NodeId::new(4.min(machine.cpus() - 1)))
            .as_ns();
        MpiTransport {
            name: "SC45 Quadrics MPI",
            latency_us: 3.0 + cross_ns / 1000.0,
            bandwidth_gbps: 0.32,
        }
    }

    /// Cost of one point-to-point message of `bytes`, in microseconds
    /// (alpha-beta model).
    pub fn p2p_us(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 / (self.bandwidth_gbps * 1e3)
    }

    /// Cost of a 2-D halo exchange: each rank swaps four faces of
    /// `face_bytes` with its neighbors (two phases of two concurrent
    /// sends).
    pub fn halo2d_us(&self, face_bytes: u64) -> f64 {
        2.0 * self.p2p_us(face_bytes) * 2.0
    }

    /// Cost of an all-reduce of `bytes` over `ranks` (recursive doubling:
    /// `log2(ranks)` rounds of paired exchanges).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn allreduce_us(&self, ranks: usize, bytes: u64) -> f64 {
        assert!(ranks > 0, "need at least one rank");
        (ranks as f64).log2().ceil().max(0.0) * self.p2p_us(bytes)
    }

    /// Cost of an all-to-all of `bytes` per pair over `ranks` (each rank
    /// sends `ranks-1` messages; the fabric pipelines them at its
    /// bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn alltoall_us(&self, ranks: usize, bytes: u64) -> f64 {
        assert!(ranks > 0, "need at least one rank");
        let msgs = (ranks - 1) as f64;
        self.latency_us * msgs.min(8.0) // overlapped injection
            + msgs * bytes as f64 / (self.bandwidth_gbps * 1e3)
    }
}

/// Communication share of an iteration: `comm / (comm + compute)`.
pub fn communication_fraction(comm_us: f64, compute_us: f64) -> f64 {
    comm_us / (comm_us + compute_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transports() -> (MpiTransport, MpiTransport) {
        (
            MpiTransport::gs1280(&Gs1280::builder().cpus(16).build()),
            MpiTransport::sc45(&Sc45::new(16)),
        )
    }

    #[test]
    fn gs1280_mpi_latency_is_far_lower() {
        let (g, s) = transports();
        assert!(g.latency_us < 1.5, "{}", g.latency_us);
        assert!(s.latency_us > 3.0, "{}", s.latency_us);
        assert!(s.p2p_us(0) > 2.0 * g.p2p_us(0));
    }

    #[test]
    fn bandwidth_gap_appears_on_large_messages() {
        let (g, s) = transports();
        // 1 MB message: bandwidth dominated.
        let big = 1 << 20;
        let ratio = s.p2p_us(big) / g.p2p_us(big);
        assert!(ratio > 5.0, "large-message ratio {ratio}");
    }

    #[test]
    fn halo_exchange_is_cheap_on_the_torus() {
        // A class-C SP face is ~100 KB; the compute per iteration is
        // milliseconds — on the GS1280 communication is a rounding error,
        // which is §5.2's "IP link utilization is low in many MPI
        // applications".
        let (g, s) = transports();
        let halo = g.halo2d_us(100 * 1024);
        let frac_g = communication_fraction(halo, 5_000.0);
        let frac_s = communication_fraction(s.halo2d_us(100 * 1024), 5_000.0);
        assert!(frac_g < 0.05, "GS1280 comm share {frac_g}");
        assert!(frac_s > 2.0 * frac_g, "cluster pays more: {frac_s}");
    }

    #[test]
    fn collectives_scale_logarithmically() {
        let (g, _) = transports();
        let r16 = g.allreduce_us(16, 4096);
        let r64 = g.allreduce_us(64, 4096);
        assert!((r64 / r16 - 6.0 / 4.0).abs() < 0.01, "{r16} {r64}");
    }

    #[test]
    fn alltoall_grows_linearly_in_ranks() {
        let (g, _) = transports();
        let a8 = g.alltoall_us(8, 1 << 16);
        let a16 = g.alltoall_us(16, 1 << 16);
        assert!(a16 > 1.8 * a8, "{a8} {a16}");
    }
}
