//! The McCalpin STREAM kernels (paper §3.2, Figs. 6–7).
//!
//! STREAM measures sustainable memory bandwidth over four vector kernels.
//! The figure-level bandwidth *model* lives in the machine crates (it is a
//! property of controllers and MSHRs); this module provides the kernels
//! themselves — actual arithmetic over actual arrays, verified like the real
//! benchmark — plus their address traces, which tests replay against the
//! Zbox model to validate its open-page behaviour.

use alphasim_cache::Addr;
use serde::{Deserialize, Serialize};

/// One of the four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]` (the paper reports Triad)
    Triad,
}

impl StreamKernel {
    /// Bytes *counted* by STREAM per iteration (loads + stores of f64).
    pub fn counted_bytes(self) -> u64 {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// Bytes actually *moved* per iteration on a write-allocate machine
    /// (the stored line is first read): one extra 8-byte share per store.
    pub fn moved_bytes(self) -> u64 {
        self.counted_bytes() + 8
    }
}

/// An executable STREAM instance over three `f64` arrays.
///
/// # Examples
///
/// ```
/// use alphasim_workloads::{Stream, StreamKernel};
/// let mut s = Stream::new(1024);
/// s.run(StreamKernel::Triad);
/// s.verify(&[StreamKernel::Triad]).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Stream {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    scalar: f64,
}

impl Stream {
    /// Arrays of `n` elements, initialised as the reference benchmark does
    /// (a=1, b=2, c=0).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one element");
        Stream {
            a: vec![1.0; n],
            b: vec![2.0; n],
            c: vec![0.0; n],
            scalar: 3.0,
        }
    }

    /// Number of elements per array.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the arrays are empty (never true; see [`Stream::new`]).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Execute one kernel over the whole arrays.
    pub fn run(&mut self, kernel: StreamKernel) {
        let n = self.len();
        match kernel {
            StreamKernel::Copy => {
                for i in 0..n {
                    self.c[i] = self.a[i];
                }
            }
            StreamKernel::Scale => {
                for i in 0..n {
                    self.b[i] = self.scalar * self.c[i];
                }
            }
            StreamKernel::Add => {
                for i in 0..n {
                    self.c[i] = self.a[i] + self.b[i];
                }
            }
            StreamKernel::Triad => {
                for i in 0..n {
                    self.a[i] = self.b[i] + self.scalar * self.c[i];
                }
            }
        }
    }

    /// Check array contents against a replay of the executed kernel
    /// sequence, as the reference benchmark's `checkSTREAMresults` does.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching array and index.
    pub fn verify(&self, executed: &[StreamKernel]) -> Result<(), String> {
        let (mut ea, mut eb, mut ec) = (1.0f64, 2.0f64, 0.0f64);
        for k in executed {
            match k {
                StreamKernel::Copy => ec = ea,
                StreamKernel::Scale => eb = self.scalar * ec,
                StreamKernel::Add => ec = ea + eb,
                StreamKernel::Triad => ea = eb + self.scalar * ec,
            }
        }
        for (name, arr, expect) in [("a", &self.a, ea), ("b", &self.b, eb), ("c", &self.c, ec)] {
            if let Some(i) = arr.iter().position(|&x| (x - expect).abs() > 1e-9) {
                return Err(format!("array {name}[{i}] = {} != {expect}", arr[i]));
            }
        }
        Ok(())
    }

    /// The line-granularity address trace of one kernel execution: the
    /// sequence of 64-byte lines touched, for replay against cache/Zbox
    /// models. Arrays are laid out back to back from `base`.
    pub fn trace(&self, kernel: StreamKernel, base: u64) -> Vec<Addr> {
        let n = self.len() as u64;
        let array_bytes = n * 8;
        let a0 = base;
        let b0 = base + array_bytes;
        let c0 = base + 2 * array_bytes;
        let mut out = Vec::new();
        let mut push_stream = |start: u64| {
            for line in 0..array_bytes.div_ceil(64) {
                out.push(Addr::new(start + line * 64));
            }
        };
        match kernel {
            StreamKernel::Copy => {
                push_stream(a0);
                push_stream(c0);
            }
            StreamKernel::Scale => {
                push_stream(c0);
                push_stream(b0);
            }
            StreamKernel::Add | StreamKernel::Triad => {
                push_stream(a0);
                push_stream(b0);
                push_stream(c0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_kernel::SimTime;
    use alphasim_mem::{Zbox, ZboxConfig};

    #[test]
    fn kernels_compute_correctly() {
        let mut s = Stream::new(100);
        let seq = [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ];
        for k in seq {
            s.run(k);
        }
        s.verify(&seq).unwrap();
    }

    #[test]
    fn verify_catches_corruption() {
        let mut s = Stream::new(10);
        s.run(StreamKernel::Copy);
        s.c[3] = 99.0;
        assert!(s.verify(&[StreamKernel::Copy]).is_err());
    }

    #[test]
    fn counted_vs_moved_bytes() {
        assert_eq!(StreamKernel::Triad.counted_bytes(), 24);
        assert_eq!(StreamKernel::Triad.moved_bytes(), 32);
        assert_eq!(StreamKernel::Copy.counted_bytes(), 16);
    }

    #[test]
    fn trace_covers_all_arrays() {
        let s = Stream::new(64); // 512 B per array = 8 lines
        let t = s.trace(StreamKernel::Triad, 0);
        assert_eq!(t.len(), 24);
        assert!(t.contains(&Addr::new(0)));
        assert!(t.contains(&Addr::new(512)));
        assert!(t.contains(&Addr::new(1024)));
    }

    #[test]
    fn stream_trace_is_open_page_friendly() {
        // Sequential array sweeps hit open RDRAM pages almost always —
        // this is why STREAM sees the 83 ns (not 130 ns) latency class.
        let s = Stream::new(32 * 1024);
        let mut z = Zbox::new(ZboxConfig::ev7());
        let mut now = SimTime::ZERO;
        for addr in s.trace(StreamKernel::Triad, 0) {
            now = z.access(now, addr, 64).completed;
        }
        assert!(z.page_hit_ratio() > 0.9, "{}", z.page_hit_ratio());
    }
}
