//! The measurement workloads of the paper, reconstructed:
//!
//! * [`PointerChase`] — lmbench-style dependent loads (Figs. 4–5);
//! * [`Stream`] — the McCalpin kernels, executable and verifiable
//!   (Figs. 6–7);
//! * [`Gups`] — random table updates stressing inter-processor bandwidth
//!   (Figs. 23–24);
//! * [`spec`] — synthetic SPEC CPU2000 profiles with a mechanistic IPC and
//!   utilization model (Figs. 1, 8–11, 25);
//! * [`apps`] — the §5 application classes: Fluent (CPU-bound) and NAS SP
//!   (bandwidth-bound MPI) (Figs. 19–22);
//! * [`sharing`] — data-sharing microbenchmarks (ping-pong, migratory,
//!   producer/consumers) over the trace-driven coherent machine, probing
//!   the read-dirty path the paper credits for parallel-workload wins.
//!
//! Workloads are machine-independent generators plus models parameterised
//! by machine properties; the machines themselves live in
//! `alphasim-system`, and the per-figure experiment drivers in `alphasim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod apps;
pub mod gups;
pub mod mpi;
pub mod nas;
mod pointer_chase;
pub mod sharing;
pub mod spec;
mod stream;
pub mod trace;

pub use gups::{Gups, GupsConfig};
pub use pointer_chase::PointerChase;
pub use stream::{Stream, StreamKernel};
