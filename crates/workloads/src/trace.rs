//! Memory traces: recorded or generated per-CPU access streams that replay
//! against the trace-driven coherent machine.
//!
//! This is the general-purpose front door for a downstream user: build a
//! [`MemoryTrace`] (programmatically, or with the generators here), replay
//! it with [`MemoryTrace::replay`], and read back latency and service-class
//! breakdowns. The paper's own workloads are special cases — GUPS is a
//! random-update trace, STREAM a sequential one.

use alphasim_cache::Addr;
use alphasim_kernel::DetRng;
use alphasim_system::{CoherentMachine, CoherentStats, ServiceClass};
use serde::{Deserialize, Serialize};

/// One access of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceAccess {
    /// Issuing CPU.
    pub cpu: usize,
    /// Byte address.
    pub addr: Addr,
    /// Store (`true`) or load (`false`).
    pub write: bool,
}

/// Summary of one trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplaySummary {
    /// Accesses replayed.
    pub accesses: u64,
    /// Mean latency in ns.
    pub mean_latency_ns: f64,
    /// Machine statistics after the replay.
    pub stats: CoherentStats,
}

/// An ordered, machine-independent memory trace.
///
/// # Examples
///
/// ```
/// use alphasim_workloads::trace::MemoryTrace;
/// use alphasim_system::{CoherentMachine, Gs1280};
///
/// let trace = MemoryTrace::sequential(0, 0, 64 * 128, 64, false);
/// let mut machine = CoherentMachine::new(Gs1280::builder().cpus(4).build());
/// let summary = trace.replay(&mut machine);
/// assert_eq!(summary.accesses, 128);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryTrace {
    accesses: Vec<TraceAccess>,
}

impl MemoryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        MemoryTrace::default()
    }

    /// Append one access.
    pub fn push(&mut self, cpu: usize, addr: Addr, write: bool) {
        self.accesses.push(TraceAccess { cpu, addr, write });
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[TraceAccess] {
        &self.accesses
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// A sequential sweep by one CPU: `bytes / stride` accesses from `base`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn sequential(cpu: usize, base: u64, bytes: u64, stride: u64, write: bool) -> Self {
        assert!(stride > 0, "stride must be positive");
        let mut t = MemoryTrace::new();
        let mut a = base;
        while a < base + bytes {
            t.push(cpu, Addr::new(a), write);
            a += stride;
        }
        t
    }

    /// A uniform-random trace over `[base, base+span)` lines, round-robin
    /// across `cpus`, with the given store fraction.
    ///
    /// # Panics
    ///
    /// Panics if `cpus == 0`, `span < 64`, or `store_fraction` is outside
    /// `[0, 1]`.
    pub fn random(
        cpus: usize,
        base: u64,
        span: u64,
        accesses: usize,
        store_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        assert!(span >= 64, "span must hold at least one line");
        assert!(
            (0.0..=1.0).contains(&store_fraction),
            "store fraction out of range"
        );
        let mut rng = DetRng::seeded(seed);
        let lines = span / 64;
        let mut t = MemoryTrace::new();
        for i in 0..accesses {
            let line = rng.bits() % lines;
            let write = rng.chance(store_fraction);
            t.push(i % cpus, Addr::new(base + line * 64), write);
        }
        t
    }

    /// Interleave several traces round-robin (models concurrent CPUs whose
    /// accesses arrive interleaved at the coherence layer).
    pub fn interleave(traces: &[MemoryTrace]) -> Self {
        let mut t = MemoryTrace::new();
        let longest = traces.iter().map(MemoryTrace::len).max().unwrap_or(0);
        for i in 0..longest {
            for tr in traces {
                if let Some(&a) = tr.accesses.get(i) {
                    t.accesses.push(a);
                }
            }
        }
        t
    }

    /// Replay against a coherent machine, returning the summary.
    pub fn replay(&self, machine: &mut CoherentMachine) -> ReplaySummary {
        let before = machine.stats();
        let mut total_ns = 0.0;
        for a in &self.accesses {
            total_ns += machine.access(a.cpu, a.addr, a.write).latency.as_ns();
        }
        let after = machine.stats();
        ReplaySummary {
            accesses: self.len() as u64,
            mean_latency_ns: if self.is_empty() {
                0.0
            } else {
                total_ns / self.len() as f64
            },
            stats: CoherentStats {
                l1: after.l1 - before.l1,
                l2: after.l2 - before.l2,
                local: after.local - before.local,
                remote_clean: after.remote_clean - before.remote_clean,
                remote_dirty: after.remote_dirty - before.remote_dirty,
                invalidations: after.invalidations - before.invalidations,
                fabric_bytes: after.fabric_bytes - before.fabric_bytes,
                writebacks: after.writebacks - before.writebacks,
            },
        }
    }

    /// Replay and return per-service-class counts as fractions.
    pub fn replay_breakdown(&self, machine: &mut CoherentMachine) -> Vec<(ServiceClass, f64)> {
        let s = self.replay(machine).stats;
        let total = s.total().max(1) as f64;
        vec![
            (ServiceClass::L1, s.l1 as f64 / total),
            (ServiceClass::L2, s.l2 as f64 / total),
            (ServiceClass::LocalMemory, s.local as f64 / total),
            (ServiceClass::RemoteClean, s.remote_clean as f64 / total),
            (ServiceClass::RemoteDirty, s.remote_dirty as f64 / total),
        ]
    }
}

impl FromIterator<TraceAccess> for MemoryTrace {
    fn from_iter<I: IntoIterator<Item = TraceAccess>>(iter: I) -> Self {
        MemoryTrace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceAccess> for MemoryTrace {
    fn extend<I: IntoIterator<Item = TraceAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_system::Gs1280;

    fn machine(cpus: usize) -> CoherentMachine {
        CoherentMachine::new(Gs1280::builder().cpus(cpus).mem_per_cpu(1 << 22).build())
    }

    #[test]
    fn sequential_generator_shape() {
        let t = MemoryTrace::sequential(2, 4096, 64 * 10, 64, true);
        assert_eq!(t.len(), 10);
        assert!(t.accesses().iter().all(|a| a.cpu == 2 && a.write));
        assert_eq!(t.accesses()[0].addr, Addr::new(4096));
        assert_eq!(t.accesses()[9].addr, Addr::new(4096 + 9 * 64));
    }

    #[test]
    fn local_sequential_replay_is_local() {
        let t = MemoryTrace::sequential(0, 0, 64 * 256, 64, false);
        let mut m = machine(4);
        let s = t.replay(&mut m);
        assert_eq!(s.accesses, 256);
        assert_eq!(s.stats.remote_clean + s.stats.remote_dirty, 0);
        assert_eq!(s.stats.local, 256, "cold local misses");
    }

    #[test]
    fn second_replay_hits_cache() {
        let t = MemoryTrace::sequential(0, 0, 64 * 256, 64, false);
        let mut m = machine(4);
        t.replay(&mut m);
        let again = t.replay(&mut m);
        assert_eq!(again.stats.l1 + again.stats.l2, 256);
        assert!(again.mean_latency_ns < 5.0);
    }

    #[test]
    fn random_trace_spans_machine_memory() {
        // Random over all 4 CPUs' memory: ~3/4 of cold misses are remote.
        let t = MemoryTrace::random(4, 0, 4 << 22, 2000, 0.0, 9);
        let mut m = machine(4);
        let s = t.replay(&mut m);
        let remote = s.stats.remote_clean + s.stats.remote_dirty;
        let miss = remote + s.stats.local;
        assert!(miss > 0);
        let frac = remote as f64 / miss as f64;
        assert!((0.6..0.9).contains(&frac), "remote fraction {frac}");
    }

    #[test]
    fn store_fraction_drives_invalidations() {
        let reads = MemoryTrace::random(4, 0, 1 << 20, 3000, 0.0, 1);
        let mixed = MemoryTrace::random(4, 0, 1 << 20, 3000, 0.5, 1);
        let mut m1 = machine(4);
        let mut m2 = machine(4);
        let r = reads.replay(&mut m1);
        let w = mixed.replay(&mut m2);
        assert_eq!(r.stats.invalidations, 0, "pure loads never invalidate");
        assert!(w.stats.invalidations > 0);
        assert!(w.stats.remote_dirty > r.stats.remote_dirty);
    }

    #[test]
    fn interleave_preserves_all_accesses() {
        let a = MemoryTrace::sequential(0, 0, 64 * 5, 64, false);
        let b = MemoryTrace::sequential(1, 1 << 22, 64 * 3, 64, true);
        let t = MemoryTrace::interleave(&[a.clone(), b.clone()]);
        assert_eq!(t.len(), 8);
        assert_eq!(t.accesses()[0].cpu, 0);
        assert_eq!(t.accesses()[1].cpu, 1);
        assert_eq!(t.accesses()[7].cpu, 0); // b exhausted after 3 rounds
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let t = MemoryTrace::random(4, 0, 1 << 20, 1000, 0.3, 5);
        let mut m = machine(4);
        let b = t.replay_breakdown(&mut m);
        let sum: f64 = b.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: MemoryTrace = (0..4)
            .map(|i| TraceAccess {
                cpu: i,
                addr: Addr::new(i as u64 * 64),
                write: false,
            })
            .collect();
        t.extend([TraceAccess {
            cpu: 0,
            addr: Addr::new(0),
            write: true,
        }]);
        assert_eq!(t.len(), 5);
    }
}
