//! Synthetic SPEC CPU2000 benchmark profiles (paper §3.3, Figs. 8–11;
//! rate runs in Figs. 1 and 25).
//!
//! The paper's own binaries and inputs are not reproducible here, but its
//! analysis reduces each benchmark to a small set of properties: how much
//! core-level ILP it has, how often it reaches past the caches, how big its
//! working set is (the paper calls out facerec's 8 MB set explicitly), and
//! how much memory-level parallelism it exposes. This module encodes those
//! properties per benchmark — calibrated against the paper's published IPC
//! bars and Zbox-utilization histograms — and derives machine-dependent IPC
//! and utilization from a mechanistic model:
//!
//! ```text
//! spill        = max(0, 1 - L2_size / working_set)
//! per_ref      = (1 - spill)·L2_latency + spill·memory_latency
//! effective    = per_ref / (1 + (machine_MLP - 1)·overlap)
//! cycles/kinst = 1000/base_ipc + refs_per_kinst · effective · clock
//! ```
//!
//! The *differences between machines* — the thing Figs. 8–9 measure — then
//! follow from cache sizes and memory latencies alone, which is exactly the
//! paper's explanation of them.

use alphasim_system::{Calibration, MachineKind};
use serde::{Deserialize, Serialize};

/// Which SPEC CPU2000 suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint2000.
    Int,
    /// SPECfp2000.
    Fp,
}

/// Shape of a benchmark's memory-traffic time series (Figs. 10–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhasePattern {
    /// Steady traffic for the whole run (swim).
    Flat,
    /// Periodic solver sweeps (mgrid, applu).
    Oscillate {
        /// Number of full periods over the run.
        periods: f64,
    },
    /// Traffic grows as data structures build up (mcf).
    Ramp,
    /// Irregular bursts (gcc, art).
    Bursty,
    /// Front-loaded initialisation then quieter compute.
    Decline,
}

impl PhasePattern {
    /// Relative traffic at normalised time `t ∈ [0,1]`; averages ≈ 1.
    pub fn factor(self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match self {
            PhasePattern::Flat => 1.0,
            PhasePattern::Oscillate { periods } => {
                1.0 + 0.45 * (t * periods * std::f64::consts::TAU).sin()
            }
            PhasePattern::Ramp => 0.4 + 1.2 * t,
            PhasePattern::Bursty => {
                // Deterministic burst train.
                let phase = (t * 9.0).fract();
                if phase < 0.35 {
                    1.7
                } else {
                    0.62
                }
            }
            PhasePattern::Decline => 1.6 - 1.2 * t,
        }
    }
}

/// Machine parameters consumed by the SPEC model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePerf {
    /// Display name.
    pub name: String,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// L2 (or B-cache) capacity in bytes.
    pub l2_bytes: u64,
    /// L2 load-to-use latency, ns.
    pub l2_latency_ns: f64,
    /// Local memory load-to-use latency, ns.
    pub memory_latency_ns: f64,
    /// Memory-level parallelism the machine can sustain (integrated
    /// controller + 16 victim buffers on EV7; less on the bus machines).
    pub mlp_capacity: f64,
    /// Zbox peak bandwidth, GB/s (used for utilization percentages).
    pub zbox_peak_gbps: f64,
    /// Sustained memory bandwidth per sharing group, GB/s.
    pub sustained_gbps: f64,
    /// CPUs sharing one memory system (rate-run contention).
    pub cpus_per_mem_site: usize,
}

impl MachinePerf {
    /// Build from a machine calibration plus its local latency.
    pub fn from_calibration(calib: &Calibration, local_latency_ns: f64) -> Self {
        let mlp_capacity = match calib.kind {
            MachineKind::Gs1280 => 8.0,
            MachineKind::Es45 | MachineKind::Sc45 => 5.0,
            MachineKind::Gs320 => 4.0,
        };
        MachinePerf {
            name: calib.kind.to_string(),
            clock_ghz: calib.clock.ghz(),
            l2_bytes: calib.hierarchy.l2.size_bytes(),
            l2_latency_ns: calib.hierarchy.l2_latency.as_ns(),
            memory_latency_ns: local_latency_ns,
            mlp_capacity,
            zbox_peak_gbps: calib.zbox.bandwidth_gbps * 2.0,
            sustained_gbps: calib.sustained_mem_gbps,
            cpus_per_mem_site: calib.cpus_per_mem_site,
        }
    }

    /// The GS1280 (83 ns local memory).
    pub fn gs1280() -> Self {
        Self::from_calibration(&Calibration::gs1280(), 83.0)
    }

    /// The GS1280 with memory striping: half of each CPU's lines live on
    /// its module partner, raising the average "local" latency to ~111 ns
    /// (§6; drives Fig. 25).
    pub fn gs1280_striped() -> Self {
        let mut m = Self::from_calibration(&Calibration::gs1280(), (83.0 + 139.0) / 2.0);
        m.name = "GS1280 (striped)".into();
        // Half of every stream crosses the module pair link (3.1 GB/s per
        // direction, ~80% payload), capping sustainable memory bandwidth
        // below the Zbox limit — the "additional burden on the IP links"
        // of §6.
        m.sustained_gbps = m.sustained_gbps.min(3.1 * 0.8 / 0.5);
        m
    }

    /// The ES45 (185 ns memory).
    pub fn es45() -> Self {
        Self::from_calibration(&Calibration::es45(), 185.0)
    }

    /// The GS320 (330 ns memory).
    pub fn gs320() -> Self {
        Self::from_calibration(&Calibration::gs320(), 330.0)
    }
}

/// One benchmark's profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecProfile {
    /// Benchmark name (SPEC's short name).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Core-limited IPC with a perfect memory system.
    pub base_ipc: f64,
    /// References per 1000 instructions that miss the L1.
    pub refs_per_kinst: f64,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Fraction of the machine's MLP this benchmark can exploit (1 =
    /// perfectly streamable, ~0 = dependent pointer chains).
    pub overlap: f64,
    /// Memory-traffic phase shape.
    pub phase: PhasePattern,
}

impl SpecProfile {
    /// Fraction of L1-missing references that also miss a cache of
    /// `cache_bytes`.
    pub fn spill(&self, cache_bytes: u64) -> f64 {
        if self.working_set <= cache_bytes {
            0.0
        } else {
            1.0 - cache_bytes as f64 / self.working_set as f64
        }
    }

    /// Modelled IPC on machine `m`.
    pub fn ipc(&self, m: &MachinePerf) -> f64 {
        let spill = self.spill(m.l2_bytes);
        let per_ref = (1.0 - spill) * m.l2_latency_ns + spill * m.memory_latency_ns;
        let effective = per_ref / (1.0 + (m.mlp_capacity - 1.0) * self.overlap);
        let cycles_per_kinst =
            1000.0 / self.base_ipc + self.refs_per_kinst * effective * m.clock_ghz;
        1000.0 / cycles_per_kinst
    }

    /// Memory bandwidth this benchmark pulls on machine `m`, GB/s (a 64 B
    /// fill plus an eventual 64 B write-back per memory reference).
    pub fn bandwidth_demand_gbps(&self, m: &MachinePerf) -> f64 {
        let spill = self.spill(m.l2_bytes);
        let misses_per_sec = self.refs_per_kinst / 1000.0 * self.ipc(m) * m.clock_ghz * 1e9 * spill;
        misses_per_sec * 128.0 / 1e9
    }

    /// Mean memory-controller utilization on machine `m` (0..=1), as the
    /// EV7 counters report it in Figs. 10–11.
    pub fn zbox_utilization(&self, m: &MachinePerf) -> f64 {
        (self.bandwidth_demand_gbps(m) / m.zbox_peak_gbps).min(1.0)
    }

    /// The Figs. 10–11 time series: `samples` utilization percentages over
    /// the benchmark's run.
    pub fn utilization_series(&self, m: &MachinePerf, samples: usize) -> Vec<f64> {
        let base = self.zbox_utilization(m) * 100.0;
        (0..samples)
            .map(|i| {
                let t = (i as f64 + 0.5) / samples as f64;
                (base * self.phase.factor(t)).clamp(0.0, 100.0)
            })
            .collect()
    }

    /// SPEC-rate throughput score shape with `n` copies (arbitrary units):
    /// per-copy speed derated by contention for each shared memory system.
    pub fn rate(&self, m: &MachinePerf, n: usize) -> f64 {
        assert!(n >= 1, "need at least one copy");
        let demand = self.bandwidth_demand_gbps(m);
        let group = m.cpus_per_mem_site.max(1);
        // Copies fill sharing groups; each group of g copies delivers
        // min(g·demand, sustained) worth of progress.
        let full_groups = n / group;
        let rem = n % group;
        let speed_of = |copies: usize| -> f64 {
            if copies == 0 || demand == 0.0 {
                return copies as f64;
            }
            let wanted = copies as f64 * demand;
            let got = wanted.min(m.sustained_gbps);
            copies as f64 * (got / wanted)
        };
        (full_groups as f64 * speed_of(group) + speed_of(rem)) * self.ipc(m) * m.clock_ghz
    }
}

/// The 14 SPECfp2000 benchmarks, in the paper's Fig. 8 order.
pub fn fp2000() -> Vec<SpecProfile> {
    use PhasePattern::*;
    use Suite::Fp;
    const MB: u64 = 1024 * 1024;
    vec![
        SpecProfile {
            name: "wupwise",
            suite: Fp,
            base_ipc: 1.5,
            refs_per_kinst: 10.0,
            working_set: 176 * MB,
            overlap: 0.75,
            phase: Oscillate { periods: 3.0 },
        },
        SpecProfile {
            name: "swim",
            suite: Fp,
            base_ipc: 1.6,
            refs_per_kinst: 60.0,
            working_set: 190 * MB,
            overlap: 1.0,
            phase: Flat,
        },
        SpecProfile {
            name: "mgrid",
            suite: Fp,
            base_ipc: 1.4,
            refs_per_kinst: 22.0,
            working_set: 56 * MB,
            overlap: 0.9,
            phase: Oscillate { periods: 6.0 },
        },
        SpecProfile {
            name: "applu",
            suite: Fp,
            base_ipc: 1.3,
            refs_per_kinst: 30.0,
            working_set: 180 * MB,
            overlap: 0.85,
            phase: Oscillate { periods: 4.0 },
        },
        SpecProfile {
            name: "mesa",
            suite: Fp,
            base_ipc: 1.6,
            refs_per_kinst: 2.0,
            working_set: 2 * MB,
            overlap: 0.5,
            phase: Flat,
        },
        SpecProfile {
            name: "galgel",
            suite: Fp,
            base_ipc: 1.6,
            refs_per_kinst: 10.0,
            working_set: 30 * MB,
            overlap: 0.6,
            phase: Oscillate { periods: 8.0 },
        },
        SpecProfile {
            name: "art",
            suite: Fp,
            base_ipc: 0.9,
            refs_per_kinst: 35.0,
            working_set: 3_700_000,
            overlap: 0.5,
            phase: Bursty,
        },
        SpecProfile {
            name: "equake",
            suite: Fp,
            base_ipc: 1.0,
            refs_per_kinst: 25.0,
            working_set: 49 * MB,
            overlap: 0.7,
            phase: Decline,
        },
        SpecProfile {
            name: "facerec",
            suite: Fp,
            base_ipc: 1.3,
            refs_per_kinst: 9.0,
            working_set: 8 * MB,
            overlap: 0.65,
            phase: Flat,
        },
        SpecProfile {
            name: "ammp",
            suite: Fp,
            base_ipc: 0.9,
            refs_per_kinst: 12.0,
            working_set: 10 * MB,
            overlap: 0.3,
            phase: Decline,
        },
        SpecProfile {
            name: "lucas",
            suite: Fp,
            base_ipc: 1.2,
            refs_per_kinst: 28.0,
            working_set: 140 * MB,
            overlap: 0.8,
            phase: Flat,
        },
        SpecProfile {
            name: "fma3d",
            suite: Fp,
            base_ipc: 1.1,
            refs_per_kinst: 14.0,
            working_set: 100 * MB,
            overlap: 0.6,
            phase: Ramp,
        },
        SpecProfile {
            name: "sixtrack",
            suite: Fp,
            base_ipc: 1.1,
            refs_per_kinst: 8.0,
            working_set: MB,
            overlap: 0.4,
            phase: Flat,
        },
        SpecProfile {
            name: "apsi",
            suite: Fp,
            base_ipc: 1.2,
            refs_per_kinst: 6.0,
            working_set: 190 * MB,
            overlap: 0.5,
            phase: Oscillate { periods: 5.0 },
        },
    ]
}

/// The 12 SPECint2000 benchmarks, in the paper's Fig. 9 order.
pub fn int2000() -> Vec<SpecProfile> {
    use PhasePattern::*;
    use Suite::Int;
    const MB: u64 = 1024 * 1024;
    vec![
        SpecProfile {
            name: "gzip",
            suite: Int,
            base_ipc: 1.4,
            refs_per_kinst: 3.0,
            working_set: 180 * MB,
            overlap: 0.6,
            phase: Bursty,
        },
        SpecProfile {
            name: "vpr",
            suite: Int,
            base_ipc: 1.0,
            refs_per_kinst: 5.0,
            working_set: 2 * MB,
            overlap: 0.3,
            phase: Flat,
        },
        SpecProfile {
            name: "cc1",
            suite: Int,
            base_ipc: 1.2,
            refs_per_kinst: 9.0,
            working_set: 22 * MB,
            overlap: 0.4,
            phase: Bursty,
        },
        SpecProfile {
            name: "mcf",
            suite: Int,
            base_ipc: 0.9,
            refs_per_kinst: 55.0,
            working_set: 100 * MB,
            overlap: 0.15,
            phase: Ramp,
        },
        SpecProfile {
            name: "crafty",
            suite: Int,
            base_ipc: 1.2,
            refs_per_kinst: 1.0,
            working_set: MB,
            overlap: 0.4,
            phase: Flat,
        },
        SpecProfile {
            name: "parser",
            suite: Int,
            base_ipc: 1.1,
            refs_per_kinst: 12.0,
            working_set: 30 * MB,
            overlap: 0.3,
            phase: Flat,
        },
        SpecProfile {
            name: "eon",
            suite: Int,
            base_ipc: 1.4,
            refs_per_kinst: 0.5,
            working_set: MB / 2,
            overlap: 0.4,
            phase: Flat,
        },
        SpecProfile {
            name: "gap",
            suite: Int,
            base_ipc: 1.1,
            refs_per_kinst: 15.0,
            working_set: 190 * MB,
            overlap: 0.5,
            phase: Oscillate { periods: 3.0 },
        },
        SpecProfile {
            name: "perlbmk",
            suite: Int,
            base_ipc: 1.3,
            refs_per_kinst: 4.0,
            working_set: 60 * MB,
            overlap: 0.4,
            phase: Bursty,
        },
        SpecProfile {
            name: "vortex",
            suite: Int,
            base_ipc: 1.3,
            refs_per_kinst: 6.0,
            working_set: 70 * MB,
            overlap: 0.45,
            phase: Flat,
        },
        SpecProfile {
            name: "bzip2",
            suite: Int,
            base_ipc: 1.3,
            refs_per_kinst: 8.0,
            working_set: 180 * MB,
            overlap: 0.55,
            phase: Bursty,
        },
        SpecProfile {
            name: "twolf",
            suite: Int,
            base_ipc: 1.0,
            refs_per_kinst: 7.0,
            working_set: MB,
            overlap: 0.3,
            phase: Flat,
        },
    ]
}

/// All 26 profiles.
pub fn all2000() -> Vec<SpecProfile> {
    let mut v = fp2000();
    v.extend(int2000());
    v
}

/// Look a profile up by name.
pub fn by_name(name: &str) -> Option<SpecProfile> {
    all2000().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(name: &str) -> SpecProfile {
        by_name(name).unwrap()
    }

    #[test]
    fn swim_ratios_match_paper() {
        // §3.3: "swim shows 2.3 times advantage on GS1280 vs ES45 and 4
        // times advantage vs GS320".
        let swim = get("swim");
        let g = swim.ipc(&MachinePerf::gs1280());
        let e = swim.ipc(&MachinePerf::es45());
        let q = swim.ipc(&MachinePerf::gs320());
        let vs_es45 = g / e;
        let vs_gs320 = g / q;
        assert!((1.8..=3.0).contains(&vs_es45), "vs ES45 {vs_es45}");
        assert!((3.0..=5.5).contains(&vs_gs320), "vs GS320 {vs_gs320}");
    }

    #[test]
    fn facerec_and_ammp_lose_on_gs1280() {
        // §3.3/§8: these fit the 16 MB off-chip cache but not the 1.75 MB
        // on-chip cache, so GS320/ES45 win.
        for name in ["facerec", "ammp"] {
            let p = get(name);
            let g = p.ipc(&MachinePerf::gs1280());
            assert!(p.ipc(&MachinePerf::es45()) > g, "{name} vs ES45");
            assert!(p.ipc(&MachinePerf::gs320()) > g, "{name} vs GS320");
        }
    }

    #[test]
    fn integer_benchmarks_are_comparable_across_machines() {
        // §7: "the exceptions are the small integer benchmarks that fit
        // well in the on-chip caches". Cache-resident int codes land within
        // ~25% across machines.
        for name in ["crafty", "eon", "twolf", "vpr"] {
            let p = get(name);
            let g = p.ipc(&MachinePerf::gs1280());
            let e = p.ipc(&MachinePerf::es45());
            let q = p.ipc(&MachinePerf::gs320());
            for (m, v) in [("es45", e), ("gs320", q)] {
                let ratio = g / v;
                assert!((0.75..=1.35).contains(&ratio), "{name} vs {m}: {ratio}");
            }
        }
    }

    #[test]
    fn fp_suite_favors_gs1280_on_average() {
        let (mut g, mut e, mut q) = (0.0, 0.0, 0.0);
        for p in fp2000() {
            g += p.ipc(&MachinePerf::gs1280());
            e += p.ipc(&MachinePerf::es45());
            q += p.ipc(&MachinePerf::gs320());
        }
        assert!(g > e && e > q, "fp averages: {g} {e} {q}");
    }

    #[test]
    fn swim_utilization_near_53_percent() {
        // Fig. 10's headline: swim at 53% Zbox utilization.
        let u = get("swim").zbox_utilization(&MachinePerf::gs1280()) * 100.0;
        assert!((45.0..=60.0).contains(&u), "swim util {u}%");
    }

    #[test]
    fn utilization_ordering_matches_fig10() {
        // swim > {applu, lucas, equake, mgrid} > {fma3d, art, wupwise,
        // galgel} > facerec ≈ 8%.
        let m = MachinePerf::gs1280();
        let u = |n: &str| get(n).zbox_utilization(&m) * 100.0;
        let swim = u("swim");
        for mid in ["applu", "lucas", "equake", "mgrid"] {
            let v = u(mid);
            assert!(v < swim && v > 15.0, "{mid} {v}");
        }
        for low in ["fma3d", "art", "wupwise", "galgel"] {
            let v = u(low);
            assert!((7.0..33.0).contains(&v), "{low} {v}");
        }
        let f = u("facerec");
        assert!((4.0..14.0).contains(&f), "facerec {f}");
    }

    #[test]
    fn utilization_series_respects_phase() {
        let m = MachinePerf::gs1280();
        let flat = get("swim").utilization_series(&m, 60);
        let spread = flat.iter().cloned().fold(0.0f64, f64::max)
            - flat.iter().cloned().fold(100.0f64, f64::min);
        assert!(spread < 1e-9, "swim is flat");
        let osc = get("mgrid").utilization_series(&m, 60);
        let spread_osc = osc.iter().cloned().fold(0.0f64, f64::max)
            - osc.iter().cloned().fold(100.0f64, f64::min);
        assert!(spread_osc > 5.0, "mgrid oscillates: {spread_osc}");
    }

    #[test]
    fn striping_degrades_memory_bound_fp_10_to_30_percent() {
        // Fig. 25's envelope.
        let plain = MachinePerf::gs1280();
        let striped = MachinePerf::gs1280_striped();
        let mut worst: f64 = 0.0;
        for p in fp2000() {
            let d = 1.0 - p.ipc(&striped) / p.ipc(&plain);
            assert!(d >= -1e-9, "{}: striping can only hurt IPC: {d}", p.name);
            assert!(d < 0.40, "{}: degradation {d}", p.name);
            worst = worst.max(d);
        }
        assert!(worst > 0.10, "heaviest benchmark should lose >10%: {worst}");
        // Cache-resident codes barely notice.
        let mesa = get("mesa");
        assert!(1.0 - mesa.ipc(&striped) / mesa.ipc(&plain) < 0.05);
    }

    #[test]
    fn rate_scales_linearly_on_gs1280_and_saturates_on_gs320() {
        let swim = get("swim");
        let g = MachinePerf::gs1280();
        let q = MachinePerf::gs320();
        let lin = swim.rate(&g, 16) / swim.rate(&g, 1);
        assert!((lin - 16.0).abs() < 0.5, "GS1280 rate scaling {lin}");
        let sat = swim.rate(&q, 4) / swim.rate(&q, 1);
        assert!(sat < 2.5, "GS320 in-QBB rate scaling {sat}");
        // Across QBBs it scales again.
        let eight = swim.rate(&q, 8) / swim.rate(&q, 4);
        assert!((eight - 2.0).abs() < 0.01);
    }

    #[test]
    fn phase_factors_average_near_one() {
        for phase in [
            PhasePattern::Flat,
            PhasePattern::Oscillate { periods: 4.0 },
            PhasePattern::Ramp,
            PhasePattern::Bursty,
            PhasePattern::Decline,
        ] {
            let mean: f64 = (0..1000)
                .map(|i| phase.factor(i as f64 / 1000.0))
                .sum::<f64>()
                / 1000.0;
            assert!((0.85..=1.15).contains(&mean), "{phase:?} mean {mean}");
        }
    }

    #[test]
    fn suites_have_the_right_sizes_and_names() {
        assert_eq!(fp2000().len(), 14);
        assert_eq!(int2000().len(), 12);
        assert_eq!(all2000().len(), 26);
        assert!(by_name("swim").is_some());
        assert!(by_name("nosuch").is_none());
        assert!(fp2000().iter().all(|p| p.suite == Suite::Fp));
        assert!(int2000().iter().all(|p| p.suite == Suite::Int));
    }
}
