//! `perfsight` — the time-resolved performance report.
//!
//! ```text
//! perfsight [--window-us N] [--wall] [--json PATH]
//! ```
//!
//! Runs the observed timeline campaigns (the same fixtures behind
//! `reproduce --timeline`) and prints, per section:
//!
//! * the windowed table — injections, completions, retries, poisons,
//!   delivered throughput, outstanding depth, and exact p50/p99 latency
//!   per window of simulated time, with the saturation knee marked;
//! * topology heatmaps — messages delivered per node, outgoing-link
//!   occupancy per router, and reads served per home Zbox, as P×Q ASCII
//!   grids;
//! * the epoch-parallel engine profile — per-shard busy event counts,
//!   the critical shard, and the load-imbalance ratio.
//!
//! `--window-us N` re-windows at N µs (the committed artifact width is
//! 2 µs). `--wall` additionally measures per-shard wall-clock busy time —
//! a measurement of the host, printed but never part of the JSON, so sim
//! results are byte-identical either way. `--json PATH` writes the report
//! JSON (identical to `results/timeline.json` only at the default width).

use alphasim::experiments::timeline::{timeline_report_with, WINDOW_PS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let window_ps = match flag_value("--window-us") {
        Some(n) => {
            let us: u64 = n
                .parse()
                .unwrap_or_else(|_| panic!("--window-us wants a number, got {n:?}"));
            assert!(us > 0, "--window-us must be positive");
            us * 1_000_000
        }
        None => WINDOW_PS,
    };
    let wall = args.iter().any(|a| a == "--wall");
    let json_path = flag_value("--json");

    eprintln!(
        "perfsight: observing timeline campaigns ({} µs windows{}) ...",
        window_ps / 1_000_000,
        if wall { ", wall-clock profiling" } else { "" },
    );
    let report = timeline_report_with(window_ps, false, wall);
    print!("{}", report.to_text());

    for s in &report.sections {
        println!("{}: outgoing-link occupancy ps per router (P×Q):", s.id);
        for line in s.observability.link_busy.to_ascii().lines() {
            println!("  {line}");
        }
        println!("{}: reads served per home Zbox (P×Q):", s.id);
        for line in s.observability.zbox_reads.to_ascii().lines() {
            println!("  {line}");
        }
        let peak = s.observability.node_delivered.peak_cell();
        let cols = s.observability.node_delivered.cols();
        println!(
            "{}: hottest node {} at ({}, {}) with {} deliveries\n",
            s.id,
            peak,
            peak % cols,
            peak / cols,
            s.observability.node_delivered.peak(),
        );
    }

    if let Some(path) = &json_path {
        let body = serde_json::to_string_pretty(&report.to_json()).expect("report serialises");
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("perfsight: report JSON -> {path}");
    }
}
