//! Chaos campaign driver: fuzz, replay the reproducer corpus, or prove a
//! seeded recovery-path mutation is caught and shrunk.
//!
//! ```text
//! chaos run    [--trials N] [--seed S] [--threads N]   fuzz the intact machine
//! chaos replay <dir-or-file> ...                       re-run committed reproducers
//! chaos mutate <mutation-id> [--write DIR] [--threads N]  catch + shrink a seeded bug
//! ```
//!
//! `--threads N` drives each trial's epoch-parallel closed loop with N pool
//! threads (`ALPHASIM_THREADS` is the environment equivalent; `--threads 0`
//! means all available cores). Results are byte-identical at any value —
//! threads only change which core advances each torus region.
//!
//! `run` draws N seeded random fault schedules (every fault kind: cuts,
//! repairs, degradations, transient corruption, drains, brownouts, RDRAM
//! channel churn), runs each under the always-on invariant monitors, and
//! exits 1 if any monitor fires — printing the automatically shrunk
//! minimal reproducer for each violation.
//!
//! `replay` loads reproducer JSON files (sorted, so output order is
//! stable) and re-runs each exactly as recorded: a reproducer must
//! violate again (the monitors still catch the bug it documents), and a
//! mutated reproducer's schedule must additionally come back clean on the
//! intact machine (the bug lives in the broken recovery path, not the
//! schedule). Exit 1 on any mismatch.
//!
//! `mutate` deliberately breaks one recovery path (`ignore-timeouts`,
//! `leak-poison`, `skip-window-refill`, `off-by-one-retry`), fuzzes until
//! the monitors catch it, shrinks the offending schedule, and with
//! `--write DIR` commits the reproducer to the corpus. Exit 1 if the
//! mutation is never caught — the monitors would have lost their teeth.

use std::process::ExitCode;

use alphasim::coherence::RetryPolicy;
use alphasim::kernel::SimDuration;
use alphasim::system::chaos::{replay, replay_healthy, run_chaos, ChaosOptions, Reproducer};
use alphasim::system::RecoveryMutation;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or_die(value: Option<String>, flag: &str, default: u64) -> u64 {
    match value {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{flag} wants a number, got {v:?}")),
    }
}

/// Resolve `--threads`: absent → 0 (defer to `ALPHASIM_THREADS`, then 1);
/// `--threads 0` → all available cores; otherwise the given count.
fn threads_arg(args: &[String]) -> usize {
    match flag_value(args, "--threads") {
        None => 0,
        Some(v) => {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("--threads wants a number, got {v:?}"));
            if n == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            } else {
                n
            }
        }
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let opts = ChaosOptions {
        trials: parse_or_die(flag_value(args, "--trials"), "--trials", 50) as usize,
        base_seed: parse_or_die(flag_value(args, "--seed"), "--seed", 0xC405),
        threads: threads_arg(args),
        ..ChaosOptions::default()
    };
    eprintln!(
        "chaos: {} trials from seed {:#x} on {}P ...",
        opts.trials, opts.base_seed, opts.cpus
    );
    let report = run_chaos(&opts);
    let struck = report.kinds_struck();
    let faults: usize = report.trials.iter().map(|t| t.faults_applied.len()).sum();
    println!(
        "{} trials, {} faults struck, {} fault kinds seen: {:?}",
        report.trials.len(),
        faults,
        struck.len(),
        struck
    );
    if report.reproducers.is_empty() {
        println!("all invariant monitors clean");
        return ExitCode::SUCCESS;
    }
    for rep in &report.reproducers {
        println!(
            "VIOLATION {}: monitors {:?}, shrunk to {} fault(s):",
            rep.name,
            rep.violations,
            rep.plan.len()
        );
        print!("{}", rep.to_json());
    }
    ExitCode::FAILURE
}

fn corpus_files(paths: &[String]) -> Vec<String> {
    let mut files = Vec::new();
    for path in paths {
        let meta = std::fs::metadata(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        if meta.is_dir() {
            let mut entries: Vec<String> = std::fs::read_dir(path)
                .unwrap_or_else(|e| panic!("{path}: {e}"))
                .map(|e| e.expect("read dir entry").path().display().to_string())
                .filter(|p| p.ends_with(".json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.clone());
        }
    }
    files
}

fn cmd_replay(paths: &[String]) -> ExitCode {
    let files = corpus_files(paths);
    if files.is_empty() {
        eprintln!("replay: no reproducer files found in {paths:?}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("{file}: {e}"));
        let rep = Reproducer::from_json(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        let (_, mutated) = replay(&rep).unwrap_or_else(|e| panic!("{file}: {e}"));
        if mutated.is_clean() {
            println!("{file}: FAILED — reproducer no longer violates");
            failures += 1;
            continue;
        }
        let monitors: std::collections::BTreeSet<&str> = mutated
            .violations
            .iter()
            .map(|v| v.monitor.as_str())
            .collect();
        if rep.mutation.is_some() {
            let (_, healthy) = replay_healthy(&rep).unwrap_or_else(|e| panic!("{file}: {e}"));
            if !healthy.is_clean() {
                println!("{file}: FAILED — schedule violates even without the mutation");
                failures += 1;
                continue;
            }
        }
        println!(
            "{file}: reproduces ({} fault(s), monitors {monitors:?})",
            rep.plan.len()
        );
    }
    if failures > 0 {
        println!("{failures}/{} reproducer(s) failed", files.len());
        return ExitCode::FAILURE;
    }
    println!("all {} reproducer(s) replay as recorded", files.len());
    ExitCode::SUCCESS
}

fn cmd_mutate(args: &[String]) -> ExitCode {
    let id = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            panic!(
                "mutate wants a mutation id: {:?}",
                RecoveryMutation::ALL.map(RecoveryMutation::id)
            )
        });
    let mutation = RecoveryMutation::from_id(id).unwrap_or_else(|| {
        panic!(
            "unknown mutation {id:?}; known: {:?}",
            RecoveryMutation::ALL.map(RecoveryMutation::id)
        )
    });
    let write_dir = flag_value(args, "--write");
    // The default 50 us timeout never exhausts its retries inside a ~7 us
    // run, so the off-by-one poison threshold is dead code under it. Hunt
    // that mutation with a hair-trigger policy: congestion from any fault
    // reads as loss, retries exhaust, and the extra attempt shows.
    let retry = if mutation == RecoveryMutation::OffByOneRetry {
        RetryPolicy {
            timeout: SimDuration::from_us(1.0),
            backoff_base: SimDuration::from_ns(250.0),
            backoff_cap: SimDuration::from_us(1.0),
            max_retries: 2,
        }
    } else {
        ChaosOptions::default().retry
    };
    // Scan seed batches until the broken path is exercised: a mutation
    // only shows when a random schedule drives traffic down that path.
    for batch in 0u64..8 {
        let opts = ChaosOptions {
            trials: 12,
            base_seed: 0xC405 + batch * 12,
            retry,
            mutation: Some(mutation),
            threads: threads_arg(args),
            ..ChaosOptions::default()
        };
        eprintln!("mutate {id}: batch {batch} (seeds {:#x}..)", opts.base_seed);
        let report = run_chaos(&opts);
        let Some(rep) = report.reproducers.first() else {
            continue;
        };
        println!(
            "caught by {:?}, shrunk to {} fault(s):",
            rep.violations,
            rep.plan.len()
        );
        print!("{}", rep.to_json());
        if rep.plan.len() > 3 {
            println!("FAILED: reproducer did not shrink to <= 3 faults");
            return ExitCode::FAILURE;
        }
        if let Some(dir) = write_dir {
            std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{dir}: {e}"));
            let path = format!("{dir}/{}.json", rep.name);
            std::fs::write(&path, rep.to_json()).unwrap_or_else(|e| panic!("{path}: {e}"));
            println!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }
    println!("FAILED: mutation {id} was never caught — monitors have lost their teeth");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("mutate") => cmd_mutate(&args[1..]),
        _ => {
            eprintln!("usage: chaos run [--trials N] [--seed S] [--threads N]");
            eprintln!("       chaos replay <dir-or-file> ...");
            eprintln!("       chaos mutate <mutation-id> [--write DIR] [--threads N]");
            ExitCode::FAILURE
        }
    }
}
