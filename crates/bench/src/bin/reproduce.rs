//! Regenerate every figure and table of the paper.
//!
//! ```text
//! reproduce [--quick] [--json DIR] [fig15 fig28 ...]
//! ```
//!
//! With no figure arguments, everything is regenerated in paper order and
//! printed as text; `--json DIR` additionally writes one JSON file per
//! artifact (EXPERIMENTS.md is generated from these).

use std::io::Write;

use alphasim_bench::{run_all, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != json_dir.as_deref())
        .collect();

    let effort = if quick { Effort::Quick } else { Effort::Full };
    eprintln!("regenerating all experiments ({effort:?}) ...");
    let artifacts = run_all(effort);

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    let mut stdout = std::io::stdout().lock();
    for a in &artifacts {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == a.id()) {
            continue;
        }
        writeln!(stdout, "{}", a.to_text()).expect("write stdout");
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", a.id());
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&a.to_json()).expect("serialise"),
            )
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        }
    }
    eprintln!("done: {} artifacts", artifacts.len());
}
