//! Regenerate every figure and table of the paper.
//!
//! ```text
//! reproduce [--quick] [--jobs N | --sequential] [--json DIR] [fig15 fig28 ...]
//! ```
//!
//! With no figure arguments, everything is regenerated in paper order and
//! printed as text; `--json DIR` additionally writes one JSON file per
//! artifact (EXPERIMENTS.md is generated from these) plus a
//! `BENCH_sweep.json` timing record (wall-clock per artifact, total, worker
//! count, peak event-queue depth). The sweep fans out across all cores by
//! default; `--jobs N` pins the worker count and `--sequential` is shorthand
//! for `--jobs 1`. The artifact outputs are byte-identical either way — only
//! `BENCH_sweep.json`, which records measured times, varies between runs.

use std::io::Write;
use std::time::Instant;

use alphasim_bench::{jobs, run_all_timed, set_jobs, take_peak_event_depth, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--sequential") {
        set_jobs(1);
    }
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(n) = flag_value("--jobs") {
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| panic!("--jobs wants a number, got {n:?}"));
        set_jobs(n.max(1));
    }
    let json_dir = flag_value("--json");
    let mut skip_values: Vec<&str> = Vec::new();
    for flag in ["--json", "--jobs"] {
        if let Some(i) = args.iter().position(|a| a == flag) {
            if let Some(v) = args.get(i + 1) {
                skip_values.push(v.as_str());
            }
        }
    }
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !skip_values.contains(&a.as_str()))
        .collect();

    let effort = if quick { Effort::Quick } else { Effort::Full };
    let workers = jobs();
    eprintln!("regenerating all experiments ({effort:?}, {workers} worker(s)) ...");
    take_peak_event_depth(); // start the gauge fresh for this sweep
    let wall = Instant::now(); // lint-allow: wall-clock (harness self-timing)
    let timed = run_all_timed(effort);
    let total_secs = wall.elapsed().as_secs_f64();
    let peak_depth = take_peak_event_depth();

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    let mut stdout = std::io::stdout().lock();
    for (a, _) in &timed {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == a.id()) {
            continue;
        }
        writeln!(stdout, "{}", a.to_text()).expect("write stdout");
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{}.json", a.id());
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&a.to_json()).expect("serialise"),
            )
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        }
    }
    if let Some(dir) = &json_dir {
        let artifacts_json: Vec<serde_json::Value> = timed
            .iter()
            .map(|(a, secs)| {
                serde_json::json!({
                    "id": a.id(),
                    "wall_clock_s": secs,
                })
            })
            .collect();
        let sweep = serde_json::json!({
            "effort": format!("{effort:?}"),
            "jobs": workers as u64,
            "total_wall_clock_s": total_secs,
            "peak_event_queue_depth": peak_depth,
            "artifacts": artifacts_json,
        });
        let path = format!("{dir}/BENCH_sweep.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&sweep).expect("serialise sweep"),
        )
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    eprintln!(
        "done: {} artifacts in {total_secs:.1}s ({workers} worker(s), peak event-queue depth {peak_depth})",
        timed.len()
    );
}
