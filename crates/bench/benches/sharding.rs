//! Single-queue vs region-sharded stepping: the cost and the payoff.
//!
//! Two families of measurements:
//!
//! * **Production path** — the `NetworkSim` event loop with its queue
//!   partitioned into torus row-band shards. The order is identical at any
//!   shard count (shared insertion sequence, global-min pop), so this
//!   isolates the pure per-step overhead of sharding on the two workload
//!   shapes that dominate the committed sweep: a fig05-shaped hotspot
//!   (every node hammering node 0) and a resilience-shaped faulty run
//!   (bisection mirror traffic over a wounded fabric).
//!
//! * **Epoch engine crossover** — the conservative [`EpochExecutor`]
//!   against plain single-queue stepping on the same synthetic workload,
//!   with a per-event compute knob. At zero compute the barrier/channel
//!   overhead dominates and the single queue wins; as per-event work grows
//!   the threaded epochs cross over. The `cost` parameter in the bench name
//!   is the spin count — compare `single_queue` against
//!   `epochs_4shards_4threads` at each cost to locate the crossover point
//!   on the host at hand. The `1thread` rows isolate the pure epoch
//!   machinery (they track `single_queue` within a few percent); the
//!   `4threads` rows additionally carry the pool's channel round-trips, so
//!   on a single-core host they can only lose — run this bench on a
//!   multi-core machine to see the crossover (with 4 cores it sits between
//!   `cost64` and `cost512` for this workload shape).
//!
//! * **Closed-loop crossover** — the real thing: a resilience-shaped
//!   [`FaultCampaignConfig`] (bisection traffic, mid-run link cuts, retry
//!   machinery live) on the epoch engine at threads × shards combinations.
//!   `1threads_1shard` is the committed sweep's configuration;
//!   `1threads_4shards` isolates epoch-batched stepping on one core; the
//!   multi-thread rows locate the closed loop's crossover on the host.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use alphasim::kernel::shard::{EpochExecutor, Outbox, ShardWorker};
use alphasim::kernel::{DetRng, EventQueue, FaultKind, FaultPlan, SimDuration, SimTime};
use alphasim::net::{LinkTiming, MessageClass, NetworkSim};
use alphasim::system::{gs1280_fault_campaign, CampaignPattern, FaultCampaignConfig, Gs1280};
use alphasim::topology::{NodeId, Torus2D};

/// Drain an 8x8 torus with every node sending `per_node` requests to node 0
/// (the fig05/fig27 hotspot shape) at the given shard count.
fn hotspot_run(shards: usize, per_node: u64) -> u64 {
    let mut net = NetworkSim::new(Torus2D::new(8, 8), LinkTiming::ev7_torus());
    net.set_shards(shards);
    for round in 0..per_node {
        for src in 1..64usize {
            net.send(
                SimTime::from_ps(round * 5_000),
                NodeId::new(src),
                NodeId::new(0),
                MessageClass::Request,
                64,
                round * 64 + src as u64,
            );
        }
    }
    net.drain();
    net.delivered_count()
}

/// Same-row mirror traffic over an 8x8 torus with two bisection links cut
/// mid-run (the resilience campaign's shape) at the given shard count.
fn faulty_run(shards: usize, rounds: u64) -> u64 {
    let mut net = NetworkSim::new(Torus2D::new(8, 8), LinkTiming::ev7_torus());
    net.set_shards(shards);
    for round in 0..rounds {
        for row in 0..8usize {
            for col in 0..4usize {
                let west = NodeId::new(row * 8 + col);
                let east = NodeId::new(row * 8 + col + 4);
                let at = SimTime::from_ps(round * 20_000);
                net.send(at, west, east, MessageClass::Request, 64, round * 64);
                net.send(
                    at,
                    east,
                    west,
                    MessageClass::BlockResponse,
                    64,
                    round * 64 + 1,
                );
            }
        }
        if round == rounds / 3 {
            net.fail_link(NodeId::new(3), NodeId::new(4)).unwrap();
            net.fail_link(NodeId::new(11), NodeId::new(12)).unwrap();
        }
    }
    net.drain();
    net.delivered_count()
}

fn bench_network_sharding(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding");
    // 63 senders x 8 rounds of hotspot traffic.
    g.throughput(Throughput::Elements(63 * 8));
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(format!("hotspot_fig05_shape_{shards}shards"), |b| {
            b.iter(|| black_box(hotspot_run(shards, 8)))
        });
    }
    // 64 mirror messages x 12 rounds over the wounded fabric.
    g.throughput(Throughput::Elements(64 * 12));
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("faulty_resilience_shape_{shards}shards"), |b| {
            b.iter(|| black_box(faulty_run(shards, 12)))
        });
    }
    g.finish();
}

const NODES: u32 = 64;
const HOP: u64 = 500; // intra-region follow-up delay, ps
const LOOKAHEAD: u64 = 20_500; // cross-region horizon, ps (a board hop)

/// Deterministic per-event compute: `cost` xorshift rounds.
fn spin(seed: u64, cost: u32) -> u64 {
    let mut x = seed | 1;
    for _ in 0..cost {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// The synthetic event: (node, remaining hops, message id).
type Hop = (u32, u32, u64);

/// Advance a hop: burn `cost` compute, then forward the message seven nodes
/// on (mod the fabric) until its hop budget is spent. Returns the follow-up
/// event and the absolute time it must fire at, given the emitting region's
/// shard count (cross-region sends wait out the lookahead horizon).
fn next_hop(
    at: SimTime,
    ev: Hop,
    cost: u32,
    shards: u32,
    acc: &mut u64,
) -> Option<(usize, SimTime, u64, Hop)> {
    let (node, remaining, msg) = ev;
    *acc ^= spin(msg.wrapping_add(u64::from(node)), cost);
    if remaining == 0 {
        return None;
    }
    let next = (node + 7) % NODES;
    let (home, dest) = (node * shards / NODES, next * shards / NODES);
    let delay = if home == dest { HOP } else { LOOKAHEAD };
    let tiebreak = msg * 1_000 + u64::from(remaining);
    Some((
        dest as usize,
        at + SimDuration::from_ps(delay),
        tiebreak,
        (next, remaining - 1, msg),
    ))
}

struct RegionWorker {
    shards: u32,
    cost: u32,
    acc: u64,
}

impl ShardWorker for RegionWorker {
    type Event = Hop;

    fn handle(&mut self, at: SimTime, ev: Hop, out: &mut Outbox<Hop>) {
        if let Some((dest, when, tiebreak, next)) =
            next_hop(at, ev, self.cost, self.shards, &mut self.acc)
        {
            out.emit(dest, when, tiebreak, next);
        }
    }
}

/// The same workload through one flat [`EventQueue`], stepped inline.
fn single_queue_run(msgs: u64, hops: u32, cost: u32) -> u64 {
    let mut q = EventQueue::new();
    let mut rng = DetRng::seeded(9);
    for m in 0..msgs {
        let node = rng.index(NODES as usize) as u32;
        q.schedule(SimTime::from_ps(m * 11), (node, hops, m));
    }
    let mut acc = 0u64;
    while let Some((at, ev)) = q.pop() {
        if let Some((_, when, _, next)) = next_hop(at, ev, cost, 1, &mut acc) {
            q.schedule(when, next);
        }
    }
    acc
}

/// The same workload through the conservative epoch engine.
fn epoch_run(msgs: u64, hops: u32, cost: u32, shards: u32, threads: usize) -> u64 {
    let workers = (0..shards)
        .map(|_| RegionWorker {
            shards,
            cost,
            acc: 0,
        })
        .collect();
    let mut exec = EpochExecutor::new(workers, SimDuration::from_ps(LOOKAHEAD), threads);
    let mut rng = DetRng::seeded(9);
    for m in 0..msgs {
        let node = rng.index(NODES as usize) as u32;
        exec.seed(
            (node * shards / NODES) as usize,
            SimTime::from_ps(m * 11),
            m,
            (node, hops, m),
        );
    }
    exec.run_until_idle();
    exec.into_workers().iter().fold(0, |a, w| a ^ w.acc)
}

/// One real closed-loop resilience-shaped campaign on the epoch engine:
/// bisection mirror traffic on an 8x8 GS1280 torus, two bisection links cut
/// mid-run, the full retry/watchdog machinery live. This is the production
/// path the `resilience` and `chaos` artifacts run on, so this bench — not
/// the synthetic crossover above — is where the closed loop's threads ×
/// shards speedup (or single-core overhead) is tracked.
fn campaign_run(threads: usize, shards: usize, requests: usize) -> u64 {
    let machine = Gs1280::builder().cpus(64).build();
    let campaign = gs1280_fault_campaign(&machine);
    let mut plan = FaultPlan::new();
    plan.push(
        SimTime::ZERO + SimDuration::from_ns(400.0),
        FaultKind::LinkDown { a: 3, b: 4 },
    );
    plan.push(
        SimTime::ZERO + SimDuration::from_ns(800.0),
        FaultKind::LinkDown { a: 11, b: 12 },
    );
    let cfg = FaultCampaignConfig {
        outstanding: 2,
        requests_per_cpu: requests,
        pattern: CampaignPattern::Bisection,
        plan,
        shards,
        threads,
        ..FaultCampaignConfig::default()
    };
    campaign.run(&cfg).completed
}

fn bench_closed_loop_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding");
    let requests = 25usize;
    g.throughput(Throughput::Elements(64 * requests as u64));
    for (threads, shards) in [(1usize, 1usize), (1, 4), (2, 4), (4, 4)] {
        g.bench_function(
            format!("closed_loop_resilience_{threads}threads_{shards}shards"),
            |b| b.iter(|| black_box(campaign_run(threads, shards, requests))),
        );
    }
    g.finish();
}

fn bench_epoch_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding");
    let (msgs, hops) = (64u64, 40u32);
    g.throughput(Throughput::Elements(msgs * u64::from(hops + 1)));
    // cost 0: pure stepping overhead. cost 4096: multi-µs events, the
    // regime where threaded epochs pay off.
    for cost in [0u32, 64, 512, 4096] {
        g.bench_function(format!("single_queue_cost{cost}"), |b| {
            b.iter(|| black_box(single_queue_run(msgs, hops, cost)))
        });
        g.bench_function(format!("epochs_4shards_1thread_cost{cost}"), |b| {
            b.iter(|| black_box(epoch_run(msgs, hops, cost, 4, 1)))
        });
        g.bench_function(format!("epochs_4shards_4threads_cost{cost}"), |b| {
            b.iter(|| black_box(epoch_run(msgs, hops, cost, 4, 4)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_network_sharding,
    bench_epoch_crossover,
    bench_closed_loop_crossover
);
criterion_main!(benches);
