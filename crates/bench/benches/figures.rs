//! Criterion benchmarks: one benchmark per reproduced table/figure, plus
//! ablation benches for the design choices DESIGN.md calls out.
//!
//! Each benchmark's measured value is the time to *regenerate* the
//! artifact; its printed output (via `--nocapture`-style eprintln once per
//! bench) reports the headline numbers the paper's version of the artifact
//! carries, so `cargo bench` doubles as the reproduction run.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alphasim::experiments::{apps, latency, memory, network, spec, stream, summary};
use alphasim::system::loadtest::{gs1280_load_test, LoadTestConfig, TrafficPattern};
use alphasim::system::Gs1280;
use alphasim::topology::route::RoutePolicy;
use alphasim::workloads::spec::Suite;

fn quick_sizes() -> Vec<u64> {
    (12..=24).map(|p| 1u64 << p).collect()
}

fn quick_windows() -> Vec<usize> {
    vec![1, 4, 12, 30]
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig01_specfp_rate", |b| b.iter(|| black_box(spec::fig01())));
    g.bench_function("fig04_dependent_load", |b| {
        b.iter(|| black_box(memory::fig04(&quick_sizes(), 4_000)))
    });
    g.bench_function("fig05_stride_surface", |b| {
        b.iter(|| {
            black_box(memory::fig05(
                &quick_sizes(),
                &memory::fig05_strides(),
                2_000,
            ))
        })
    });
    g.bench_function("fig06_stream_scaling", |b| {
        b.iter(|| black_box(stream::fig06()))
    });
    g.bench_function("fig07_stream_1v4", |b| {
        b.iter(|| black_box(stream::fig07()))
    });
    g.bench_function("fig08_ipc_fp", |b| {
        b.iter(|| black_box(spec::ipc_figure(Suite::Fp)))
    });
    g.bench_function("fig09_ipc_int", |b| {
        b.iter(|| black_box(spec::ipc_figure(Suite::Int)))
    });
    g.bench_function("fig10_util_fp", |b| {
        b.iter(|| black_box(spec::utilization_figure(Suite::Fp, 60)))
    });
    g.bench_function("fig11_util_int", |b| {
        b.iter(|| black_box(spec::utilization_figure(Suite::Int, 60)))
    });
    g.bench_function("fig12_remote_16p", |b| {
        b.iter(|| black_box(latency::fig12()))
    });
    g.bench_function("fig13_latency_map", |b| {
        b.iter(|| black_box(latency::fig13()))
    });
    g.bench_function("fig14_latency_scaling", |b| {
        b.iter(|| black_box(latency::fig14()))
    });
    g.bench_function("fig15_load_test", |b| {
        b.iter(|| black_box(network::fig15(&quick_windows(), 40)))
    });
    g.bench_function("table1_shuffle_gains", |b| {
        b.iter(|| black_box(summary::table1()))
    });
    g.bench_function("fig18_shuffle_load", |b| {
        b.iter(|| black_box(network::fig18(&quick_windows(), 40)))
    });
    g.bench_function("fig19_fluent", |b| b.iter(|| black_box(apps::fig19())));
    g.bench_function("fig20_fluent_util", |b| {
        b.iter(|| black_box(apps::fig20(60)))
    });
    g.bench_function("fig21_sp", |b| b.iter(|| black_box(apps::fig21())));
    g.bench_function("fig22_sp_util", |b| b.iter(|| black_box(apps::fig22(60))));
    g.bench_function("fig23_gups", |b| b.iter(|| black_box(apps::fig23(40))));
    g.bench_function("fig24_gups_util", |b| b.iter(|| black_box(apps::fig24(40))));
    g.bench_function("fig25_striping_degradation", |b| {
        b.iter(|| black_box(spec::fig25()))
    });
    g.bench_function("fig26_hotspot_striping", |b| {
        b.iter(|| black_box(network::fig26(&quick_windows(), 40)))
    });
    g.bench_function("fig27_xmesh", |b| b.iter(|| black_box(network::fig27(40))));
    g.bench_function("fig28_summary", |b| {
        b.iter(|| black_box(summary::fig28(40)))
    });
    g.finish();
}

/// Ablations over the design choices DESIGN.md calls out: adaptive vs
/// deterministic routing, shuffle routing policies, striping on hot spots.
fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Routing policy on the 8-CPU machine under identical load.
    for (name, policy) in [
        ("torus_minimal", None),
        ("shuffle_1hop", Some(RoutePolicy::ShuffleFirstHop)),
        ("shuffle_2hop", Some(RoutePolicy::ShuffleFirstTwoHops)),
        ("shuffle_free", Some(RoutePolicy::Minimal)),
    ] {
        g.bench_function(format!("loadtest_8p_{name}"), |b| {
            b.iter(|| {
                let mut builder = Gs1280::builder().cpus(8);
                if let Some(p) = policy {
                    builder = builder.shuffle(p);
                }
                let m = builder.build();
                let r = gs1280_load_test(&m).run(&LoadTestConfig {
                    outstanding: 12,
                    requests_per_cpu: 40,
                    ..Default::default()
                });
                black_box(r.delivered_gbps)
            })
        });
    }

    // Hot-spot traffic with and without striping.
    for (name, pattern) in [
        ("hotspot_plain", TrafficPattern::HotSpot(0)),
        ("hotspot_striped", TrafficPattern::StripedHotSpot(0, 4)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let m = Gs1280::builder().cpus(16).build();
                let r = gs1280_load_test(&m).run(&LoadTestConfig {
                    outstanding: 12,
                    requests_per_cpu: 40,
                    pattern,
                    ..Default::default()
                });
                black_box(r.delivered_gbps)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures, bench_ablations);
criterion_main!(benches);
