//! Performance benchmarks of the simulator substrates themselves: event
//! throughput, cache access rate, routing table construction, network
//! events per second. These are about the *simulator's* speed — what an
//! adopter sizing a bigger study cares about.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

use alphasim::cache::{Addr, CacheGeometry, SetAssocCache};
use alphasim::coherence::{AccessKind, Directory};
use alphasim::kernel::{DetRng, EventQueue, SimTime};
use alphasim::mem::{Zbox, ZboxConfig};
use alphasim::net::{LinkTiming, MessageClass, NetworkSim};
use alphasim::topology::route::{RoutePolicy, Routes};
use alphasim::topology::{NodeId, Torus2D};

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = DetRng::seeded(1);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ps(rng.bits() % 1_000_000_000), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });

    // Reference point for the 4-ary EventQueue: the same workload through
    // std's binary heap, which the queue used before. Lets a single-core run
    // quantify the kernel-level speedup directly.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_queue_10k_binary_heap_reference", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
            let mut rng = DetRng::seeded(1);
            for i in 0..10_000u64 {
                q.push(Reverse((
                    SimTime::from_ps(rng.bits() % 1_000_000_000),
                    i,
                    i,
                )));
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });

    // Steady-state churn: a ~1k-deep queue with one schedule per pop, the
    // shape the network simulator actually produces.
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("event_queue_100k_sliding_window", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1_024);
            let mut rng = DetRng::seeded(6);
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_ps(rng.bits() % 1_000), i);
            }
            let mut count = 0u64;
            for i in 0..100_000u64 {
                let (t, _) = q.pop().expect("window stays populated");
                q.schedule(SimTime::from_ps(t.as_ps() + 1 + rng.bits() % 1_000), i);
                count += 1;
            }
            black_box((count, q.len()))
        })
    });

    g.throughput(Throughput::Elements(100_000));
    g.bench_function(
        "event_queue_100k_sliding_window_binary_heap_reference",
        |b| {
            b.iter(|| {
                let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
                let mut rng = DetRng::seeded(6);
                for i in 0..1_000u64 {
                    q.push(Reverse((SimTime::from_ps(rng.bits() % 1_000), i, i)));
                }
                let mut count = 0u64;
                for i in 0..100_000u64 {
                    let Reverse((t, _, _)) = q.pop().expect("window stays populated");
                    q.push(Reverse((
                        SimTime::from_ps(t.as_ps() + 1 + rng.bits() % 1_000),
                        i,
                        i,
                    )));
                    count += 1;
                }
                black_box((count, q.len()))
            })
        },
    );

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l2_cache_10k_accesses", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(CacheGeometry::ev7_l2());
            let mut rng = DetRng::seeded(2);
            for _ in 0..10_000 {
                cache.access(Addr::new(rng.bits() % (8 << 20)));
            }
            black_box(cache.misses())
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("zbox_10k_accesses", |b| {
        b.iter(|| {
            let mut z = Zbox::new(ZboxConfig::ev7());
            let mut now = SimTime::ZERO;
            let mut rng = DetRng::seeded(3);
            for _ in 0..10_000 {
                now = z
                    .access(now, Addr::new(rng.bits() % (1 << 30)), 64)
                    .completed;
            }
            black_box(z.accesses())
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("directory_10k_random_ops", |b| {
        b.iter(|| {
            let mut dir = Directory::new();
            let mut rng = DetRng::seeded(4);
            for _ in 0..10_000 {
                let cpu = rng.index(64);
                let line = rng.bits() % 4096;
                let kind = if rng.chance(0.3) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                dir.access((line % 64) as usize, cpu, line, kind);
            }
            black_box(dir.stats().writes)
        })
    });

    g.bench_function("routes_8x8_minimal", |b| {
        b.iter(|| black_box(Routes::compute(&Torus2D::new(8, 8), RoutePolicy::Minimal)))
    });

    g.throughput(Throughput::Elements(1_000));
    g.bench_function("network_1k_messages_8x8", |b| {
        b.iter(|| {
            let mut net = NetworkSim::new(Torus2D::new(8, 8), LinkTiming::ev7_torus());
            let mut rng = DetRng::seeded(5);
            for i in 0..1_000u64 {
                let src = rng.index(64);
                let dst = rng.index_excluding(64, src);
                net.send(
                    SimTime::ZERO,
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    80,
                    i,
                );
            }
            net.drain();
            black_box(net.delivered_count())
        })
    });

    // Wave traffic with drains between waves: exercises the message free
    // list (slot table stays one wave deep instead of growing 20×).
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("network_20_waves_of_100_messages_8x8", |b| {
        b.iter(|| {
            let mut net = NetworkSim::new(Torus2D::new(8, 8), LinkTiming::ev7_torus());
            let mut rng = DetRng::seeded(7);
            for wave in 0..20u64 {
                for i in 0..100u64 {
                    let src = rng.index(64);
                    let dst = rng.index_excluding(64, src);
                    net.send(
                        net.now(),
                        NodeId::new(src),
                        NodeId::new(dst),
                        MessageClass::Request,
                        80,
                        wave * 100 + i,
                    );
                }
                net.drain();
            }
            black_box((net.delivered_count(), net.msg_slot_count()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
